//! # Opportunity Map — "Finding Actionable Knowledge via Automated Comparison"
//!
//! A production-quality Rust reproduction of Zhang, Liu, Benkler & Zhou,
//! *Finding Actionable Knowledge via Automated Comparison* (ICDE 2009):
//! the Motorola **Opportunity Map** diagnostic data-mining system — rule
//! cubes, OLAP exploration, general impressions — plus the paper's
//! contribution, the **automated sub-population comparator**.
//!
//! ## Quickstart
//!
//! ```
//! use opportunity_map::engine::{EngineConfig, OpportunityMap};
//! use opportunity_map::synth::paper_scenario;
//!
//! // Synthetic cellular call logs with a planted cause: phone 2 drops
//! // calls dramatically more often in the morning.
//! let (dataset, truth) = paper_scenario(20_000, 42);
//!
//! // Discretize, build every 2-D and 3-D rule cube, and compare.
//! let om = OpportunityMap::build(dataset, EngineConfig::default()).unwrap();
//! let result = om
//!     .run_compare_by_name("PhoneModel", "ph1", "ph2", "dropped", om.exec_ctx(None))
//!     .unwrap();
//!
//! // The comparator surfaces the planted cause at rank 1.
//! assert_eq!(result.top().unwrap().attr_name, truth.expected_top_attr);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | paper section |
//! |---|---|---|
//! | [`data`] | `om-data` | the classification datasets of Sec. I |
//! | [`stats`] | `om-stats` | Table I, Sec. IV-B statistics |
//! | [`discretize`] | `om-discretize` | the discretizer of Sec. V-A |
//! | [`car`] | `om-car` | class association rules, Sec. III-A |
//! | [`cube`] | `om-cube` | rule cubes + OLAP, Sec. III-B |
//! | [`gi`] | `om-gi` | general impressions, Sec. III-B |
//! | [`compare`] | `om-compare` | **the contribution**, Sec. III-C & IV |
//! | [`viz`] | `om-viz` | the visualizer, Sec. V-A/B (Figs. 5–8) |
//! | [`synth`] | `om-synth` | synthetic stand-in for the Motorola logs |
//! | [`engine`] | `om-engine` | the assembled system of Sec. V-A |

pub use om_car as car;
pub use om_compare as compare;
pub use om_cube as cube;
pub use om_data as data;
pub use om_discretize as discretize;
pub use om_engine as engine;
pub use om_gi as gi;
pub use om_stats as stats;
pub use om_synth as synth;
pub use om_viz as viz;
