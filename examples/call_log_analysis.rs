//! The full Section V-B case study: overall view (Fig. 5), detailed view
//! (Fig. 6), automated comparison (Fig. 7), property attribute (Fig. 8),
//! general impressions, rule mining, and an SVG export of the Fig. 7
//! chart.
//!
//! Run with: `cargo run --release --example call_log_analysis`

use opportunity_map::compare::report;
use opportunity_map::engine::{EngineConfig, OpportunityMap, Session};
use opportunity_map::gi::Trend;
use opportunity_map::viz::compare_view::{render_property_view, CompareViewOptions};
use opportunity_map::viz::overall::OverallOptions;
use opportunity_map::viz::svg::{grouped_bar_chart, ChartOptions, Series};

fn main() {
    // The case study's data set "contains 41 attributes" — generate a
    // comparable synthetic log (5 core + 30 extra + hardware + 2
    // continuous + class ≈ 39 analysis attributes).
    let (dataset, truth) = paper_scenario_with_width();
    let mut session = Session::new(dataset.clone());

    let om = OpportunityMap::build(dataset, EngineConfig::default()).expect("engine builds");

    // --- Fig. 5: overall visualization -----------------------------------
    println!("=== Overall visualization (Fig. 5) ===");
    println!("{}", om.overall_view(&OverallOptions::default()));

    // Trends summary (the colored arrows).
    let gi = om.run_general_impressions(om.exec_ctx(None)).expect("unlimited budget never trips");
    let strong: Vec<_> = gi
        .trends
        .iter()
        .filter(|t| matches!(t.trend, Trend::Increasing | Trend::Decreasing))
        .collect();
    println!("strong unit trends: {}", strong.len());
    for t in strong.iter().take(5) {
        println!(
            "  {} / {}: {:?} (slope {:+.4}, r2 {:.2})",
            t.attr_name, t.class_label, t.trend, t.slope, t.r_squared
        );
    }

    // --- Fig. 6: detailed visualization of the phone model ---------------
    println!("\n=== Detailed visualization of PhoneModel (Fig. 6) ===");
    println!(
        "{}",
        om.detailed_view("PhoneModel", &Default::default())
            .expect("attribute exists")
    );

    // --- Fig. 7: the comparison -------------------------------------------
    println!("=== Automated comparison: ph1 vs ph2 on 'dropped' (Fig. 7) ===");
    let result = om
        .run_compare_by_name("PhoneModel", "ph1", "ph2", "dropped", om.exec_ctx(None))
        .expect("comparison runs");
    println!("{}", report::render(&result, 6));
    println!("{}", om.comparison_view(&result));
    session.note(format!(
        "compared ph1 vs ph2 on dropped; top attribute {}",
        result.top().map(|t| t.attr_name.as_str()).unwrap_or("-")
    ));

    // --- Fig. 8: the property attribute ------------------------------------
    println!("=== Property attribute (Fig. 8) ===");
    for p in &result.property_attrs {
        println!(
            "{}",
            render_property_view(&result, p, &CompareViewOptions::default())
        );
    }

    // --- exceptions and influence (general impressions) --------------------
    println!("=== General impressions ===");
    println!("top exceptions:");
    for e in gi.exceptions.iter().take(5) {
        println!(
            "  {}={} on {}: {:.2}% vs rest {:.2}% (z = {:+.1})",
            e.attr_name,
            e.value_label,
            e.class_label,
            e.confidence * 100.0,
            e.rest_confidence * 100.0,
            e.z
        );
    }
    println!("most influential attributes (chi-square):");
    for i in gi.influence.iter().take(5) {
        println!("  {:<20} chi2 = {:>10.1}  info gain = {:.4}", i.attr_name, i.chi2, i.info_gain);
    }

    // --- restricted rule mining (Section III-B) ----------------------------
    let phone = om.attr_index("PhoneModel").unwrap();
    let ph2 = om.value_id(phone, "ph2").unwrap();
    let rules = om
        .mine_restricted(
            &[opportunity_map::car::Condition::new(phone, ph2)],
            &opportunity_map::car::MinerConfig {
                min_support: 0.0005,
                min_confidence: 0.05,
                max_conditions: 3,
                attrs: None,
            },
        )
        .expect("restricted mining runs");
    println!("\n=== Restricted mining: rules extending PhoneModel=ph2 ===");
    for r in rules.iter().filter(|r| r.class == om.class_id("dropped").unwrap()).take(5) {
        println!("  {}", r.display(om.dataset().schema()));
    }

    // --- SVG export of the Fig. 7 chart -------------------------------------
    if let Some(top) = result.top() {
        let labels: Vec<String> = top.contributions.iter().map(|c| c.label.clone()).collect();
        let series = vec![
            Series {
                name: format!("{} (good)", result.value_1_label),
                values: top.contributions.iter().map(|c| c.cf1.unwrap_or(0.0)).collect(),
                margins: Some(
                    top.contributions
                        .iter()
                        .map(|c| (c.rcf1 - c.cf1.unwrap_or(0.0)).abs())
                        .collect(),
                ),
                color: "#4472c4".into(),
            },
            Series {
                name: format!("{} (bad)", result.value_2_label),
                values: top.contributions.iter().map(|c| c.cf2.unwrap_or(0.0)).collect(),
                margins: Some(
                    top.contributions
                        .iter()
                        .map(|c| (c.cf2.unwrap_or(0.0) - c.rcf2).abs())
                        .collect(),
                ),
                color: "#ed7d31".into(),
            },
        ];
        let svg = grouped_bar_chart(
            &labels,
            &series,
            &ChartOptions {
                title: format!(
                    "Drop rate by {} — {} vs {} (Fig. 7)",
                    top.attr_name, result.value_1_label, result.value_2_label
                ),
                ..Default::default()
            },
        );
        let path = std::env::temp_dir().join("om_fig7.svg");
        std::fs::write(&path, svg).expect("svg written");
        println!("\nFig. 7 chart written to {}", path.display());
    }

    // --- session persistence -------------------------------------------------
    let path = std::env::temp_dir().join("om-case-study.omss");
    session.save(&path).expect("session saved");
    println!("session saved to {}", path.display());

    println!(
        "\nground truth: top attribute {} / value {}; property attrs {:?}",
        truth.expected_top_attr, truth.expected_top_value, truth.property_attrs
    );
}

fn paper_scenario_with_width() -> (opportunity_map::data::Dataset, opportunity_map::synth::GroundTruth) {
    // paper_scenario with a wider attribute set (the case study's 41).
    use opportunity_map::synth::{generate_call_log, CallLogConfig, Effect, GroundTruth};
    let config = CallLogConfig {
        n_records: 150_000,
        n_extra_attrs: 30,
        seed: 42,
        effects: vec![
            Effect::value("PhoneModel", "ph2", "dropped", 0.35),
            Effect::interaction("PhoneModel", "ph2", "TimeOfCall", "morning", "dropped", 2.2),
            Effect::value("NetworkLoad", "high", "dropped", 0.8),
        ],
        ..CallLogConfig::default()
    };
    let ds = generate_call_log(&config);
    let truth = GroundTruth {
        compare_attr: "PhoneModel".into(),
        baseline_value: "ph1".into(),
        target_value: "ph2".into(),
        target_class: "dropped".into(),
        expected_top_attr: "TimeOfCall".into(),
        expected_top_value: "morning".into(),
        uninformative_attrs: vec!["NetworkLoad".into()],
        property_attrs: vec!["PhoneHardwareVersion".into()],
    };
    (ds, truth)
}
