//! Manufacturing quality: the paper's generality claim in a third domain.
//!
//! "Comparing behaviors or performances of different products is useful
//! in any engineering or manufacturing domain because it enables the
//! engineers to pinpoint the specific weaknesses (or strengths) of a
//! product in comparison with its competitors" (Section III-C).
//!
//! Here two production lines differ in defect rate; the excess traces to
//! one component supplier used disproportionately by line 2, while the
//! night shift hurts *all* lines equally and must not be blamed.
//!
//! Run with: `cargo run --release --example manufacturing_quality`

use opportunity_map::compare::report;
use opportunity_map::engine::{EngineConfig, OpportunityMap};
use opportunity_map::synth::domains::manufacturing_quality;

fn main() {
    let (dataset, truth) = manufacturing_quality(120_000, 13);
    println!(
        "generated {} unit inspection records; classes {:?}",
        dataset.n_rows(),
        dataset.schema().class().domain().labels()
    );

    let om = OpportunityMap::build(dataset, EngineConfig::default()).expect("engine builds");

    println!(
        "{}",
        om.detailed_view("Line", &Default::default())
            .expect("attribute exists")
    );

    let result = om
        .run_compare_by_name(&truth.compare_attr,
            &truth.baseline_value,
            &truth.target_value,
            &truth.target_class, om.exec_ctx(None))
        .expect("comparison runs");
    println!("{}", report::render(&result, 5));
    println!("{}", om.comparison_view(&result));

    let top = result.top().expect("ranked attributes");
    println!(
        "planted cause: {}; recovered at rank 1: {}",
        truth.expected_top_attr,
        if top.attr_name == truth.expected_top_attr {
            "YES"
        } else {
            "NO"
        }
    );
    for u in &truth.uninformative_attrs {
        println!(
            "  common-cause attribute {u}: rank {:?} (must not be 0)",
            result.rank_of(u)
        );
    }

    // The general-impressions view still flags the night shift as an
    // exception *overall* — the two tools answer different questions.
    let gi = om.run_general_impressions(om.exec_ctx(None)).expect("unlimited budget never trips");
    if let Some(e) = gi
        .exceptions
        .iter()
        .find(|e| e.attr_name == "Shift" && e.class_label == "defect")
    {
        println!(
            "GI exception (overall view): {}={} defect rate {:.2}% vs rest {:.2}%",
            e.attr_name,
            e.value_label,
            e.confidence * 100.0,
            e.rest_confidence * 100.0
        );
    }
}
