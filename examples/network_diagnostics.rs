//! Network diagnostics: comparing *time periods* instead of products.
//!
//! Section III-C closes with exactly this use case: "we may find that in
//! general calls in the morning tend to drop much more frequently than in
//! the afternoon. Then, it is interesting to know what cause this poor
//! performance in the morning. It may be discovered that the network
//! equipment is not stable in the morning due to high call volumes."
//!
//! Run with: `cargo run --release --example network_diagnostics`

use opportunity_map::compare::report;
use opportunity_map::engine::{EngineConfig, OpportunityMap};
use opportunity_map::synth::domains::network_diagnostics;

fn main() {
    let (dataset, truth) = network_diagnostics(120_000, 7);
    println!(
        "generated {} network status records; classes {:?}",
        dataset.n_rows(),
        dataset.schema().class().domain().labels()
    );

    let om = OpportunityMap::build(dataset, EngineConfig::default()).expect("engine builds");

    // The analyst first sees morning congestion is far worse (Fig. 6 style).
    println!(
        "{}",
        om.detailed_view("TimeOfDay", &Default::default())
            .expect("attribute exists")
    );

    // Then asks: what distinguishes morning from afternoon w.r.t.
    // congestion?
    let result = om
        .run_compare_by_name(&truth.compare_attr,
            &truth.baseline_value,
            &truth.target_value,
            &truth.target_class, om.exec_ctx(None))
        .expect("comparison runs");
    println!("{}", report::render(&result, 5));
    println!("{}", om.comparison_view(&result));

    let top = result.top().expect("ranked attributes");
    println!(
        "planted cause: {}; recovered at rank 1: {}",
        truth.expected_top_attr,
        if top.attr_name == truth.expected_top_attr {
            "YES"
        } else {
            "NO"
        }
    );
    // Vendor/backhaul/region shift both periods equally and must not win.
    for u in &truth.uninformative_attrs {
        let rank = result.rank_of(u);
        println!("  uninformative {u}: rank {rank:?} (must not be 0)");
    }
}
