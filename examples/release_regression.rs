//! Month-over-month regression detection.
//!
//! The paper's data arrives monthly; a natural recurring analysis is
//! "this month's drop rate is worse than last month's — what changed?".
//! Treating the batch id as just another attribute turns that into the
//! comparator's own question: compare `Month = may` vs `Month = june` on
//! class `dropped`, and the ranked attributes localize the regression.
//!
//! Here June ships a firmware change that hurts calls while driving;
//! the comparator should surface `MovementSpeed` with top value
//! `driving`. The example also demonstrates incremental cube builds:
//! per-month stores merged with `CubeStore::merge` instead of recounting.
//!
//! Run with: `cargo run --release --example release_regression`

use opportunity_map::compare::report;
use opportunity_map::cube::{CubeStore, StoreBuildOptions};
use opportunity_map::data::{Attribute, Column, Dataset, Domain, Schema};
use opportunity_map::engine::{EngineConfig, OpportunityMap};
use opportunity_map::synth::{generate_call_log, CallLogConfig, Effect};

/// Stack two monthly batches into one dataset with a `Month` attribute.
fn stack_months(may: &Dataset, june: &Dataset) -> Dataset {
    let schema = may.schema();
    let mut attributes: Vec<Attribute> = schema.attributes().to_vec();
    let month_idx = attributes.len() - 1; // insert before the class
    attributes.insert(
        month_idx,
        Attribute::categorical("Month", Domain::from_labels(["may", "june"])),
    );
    let class_idx = attributes.len() - 1;
    let stacked_schema = Schema::new(attributes, class_idx).expect("valid schema");

    let mut columns: Vec<Column> = Vec::new();
    for i in 0..schema.n_attributes() {
        let mut col = may.column(i).clone();
        col.extend_from(june.column(i));
        columns.push(col);
    }
    let month_col: Vec<u32> = std::iter::repeat_n(0u32, may.n_rows())
        .chain(std::iter::repeat_n(1u32, june.n_rows()))
        .collect();
    columns.insert(month_idx, Column::Categorical(month_col));
    Dataset::from_columns(stacked_schema, columns).expect("stacked dataset valid")
}

fn main() {
    // May: the known-good baseline.
    let may = generate_call_log(&CallLogConfig {
        n_records: 80_000,
        seed: 501,
        effects: vec![],
        ..CallLogConfig::default()
    });
    // June: same traffic, but the new firmware regresses driving calls.
    let june = generate_call_log(&CallLogConfig {
        n_records: 80_000,
        seed: 502,
        effects: vec![Effect::value("MovementSpeed", "driving", "dropped", 1.8)],
        ..CallLogConfig::default()
    });

    // Incremental cube builds: per-month stores, then one merge — no
    // recount of May when June lands.
    let attrs: Vec<usize> = may
        .schema()
        .non_class_indices()
        .into_iter()
        .filter(|&i| may.schema().attribute(i).is_categorical())
        .collect();
    let opts = StoreBuildOptions {
        attrs: Some(attrs),
        n_threads: 0,
        ..Default::default()
    };
    let may_store = CubeStore::build(&may, &opts).expect("may cubes");
    let june_store = CubeStore::build(&june, &opts).expect("june cubes");
    let merged = may_store.merge(&june_store).expect("stores merge");
    println!(
        "incremental build: merged {} + {} records into {} pair cubes",
        may_store.total_records(),
        june_store.total_records(),
        merged.n_pair_cubes()
    );

    // The cross-month comparison runs on the stacked dataset with Month
    // as an ordinary attribute.
    let stacked = stack_months(&may, &june);
    let om = OpportunityMap::build(stacked, EngineConfig::default()).expect("engine builds");
    println!(
        "\n{}",
        om.detailed_view("Month", &Default::default()).expect("month view")
    );

    let result = om
        .run_compare_by_name("Month", "may", "june", "dropped", om.exec_ctx(None))
        .expect("comparison runs");
    println!("{}", report::render(&result, 6));
    println!("{}", om.comparison_view(&result));

    let top = result.top().expect("ranked attributes");
    println!(
        "regression localized to: {} = {} ({}); expected MovementSpeed = driving",
        top.attr_name,
        top.top_values()[0].label,
        if top.attr_name == "MovementSpeed" {
            "CORRECT"
        } else {
            "UNEXPECTED"
        }
    );
}
