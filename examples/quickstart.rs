//! Quickstart: the paper's running example, end to end.
//!
//! Generates synthetic cellular call logs in which phone 2 drops calls
//! far more often than phone 1 — but only in the morning — then builds
//! the Opportunity Map system and asks the comparator *why* phone 2 is
//! worse.
//!
//! Run with: `cargo run --release --example quickstart`

use opportunity_map::compare::report;
use opportunity_map::engine::{EngineConfig, OpportunityMap};
use opportunity_map::synth::paper_scenario;

fn main() {
    // 1. Data: a stand-in for the Motorola call logs (Section I of the
    //    paper), with a known planted cause.
    let (dataset, truth) = paper_scenario(100_000, 42);
    println!(
        "generated {} call records, {} attributes, classes {:?}",
        dataset.n_rows(),
        dataset.schema().n_attributes(),
        dataset.schema().class().domain().labels()
    );

    // 2. Build the system: discretize continuous attributes, then build
    //    every 2-D and 3-D rule cube (the paper's offline step).
    let om = OpportunityMap::build(dataset, EngineConfig::default()).expect("engine builds");
    println!(
        "built {} pair cubes over {} attributes ({} KiB of cube tensors)\n",
        om.store().n_pair_cubes(),
        om.store().attrs().len(),
        om.store().memory_bytes() / 1024
    );

    // 3. The user notices the two phones differ (Fig. 6) and asks the
    //    comparator which attribute explains the difference (Fig. 7).
    let result = om
        .run_compare_by_name("PhoneModel", "ph1", "ph2", "dropped", om.exec_ctx(None))
        .expect("comparison runs");

    println!("{}", report::render(&result, 8));
    println!("{}", om.comparison_view(&result));

    let top = result.top().expect("ranked attributes");
    println!(
        "planted cause: {} (value {}); recovered at rank 1: {}",
        truth.expected_top_attr,
        truth.expected_top_value,
        if top.attr_name == truth.expected_top_attr {
            "YES"
        } else {
            "NO"
        }
    );
}
