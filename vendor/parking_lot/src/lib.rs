//! Workspace-local stand-in for `parking_lot`.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors `Mutex`, `RwLock`, and `Condvar` as thin wrappers over
//! `std::sync` with `parking_lot`'s ergonomics: no `Result` on lock
//! acquisition (poisoning is swallowed — a panicked writer's data is
//! returned as-is, matching `parking_lot`'s no-poisoning semantics).

use std::sync::{self, Condvar as StdCondvar, MutexGuard as StdMutexGuard};
use std::time::Duration;

/// `std::sync::Mutex` with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard of [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can move it
/// out and back without unsafe code; it is `None` only transiently
/// inside a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, blocking. Never errors: a poisoned lock is entered anyway.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// `std::sync::RwLock` with `parking_lot`'s panic-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared guard of [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive guard of [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquire exclusive, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// A fresh condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    /// Block until notified, atomically releasing the guard.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(sync::PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses; returns `true` on timeout.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let g = guard.inner.take().expect("guard present outside wait");
        let (g, r) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(g);
        r.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || l.read().iter().sum::<i32>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
        // Timeout path.
        let timed_out = cv.wait_for(&mut done, Duration::from_millis(10));
        assert!(timed_out);
    }

    #[test]
    fn no_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicked holder");
    }
}
