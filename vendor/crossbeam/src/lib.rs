//! Workspace-local stand-in for `crossbeam`.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the one facility it uses: [`channel`] — a multi-producer
//! **multi-consumer** FIFO channel (std's `mpsc` receiver cannot be
//! cloned, which the cube-store worker pool and the HTTP server's
//! connection queue both require). Built on a `Mutex<VecDeque>` plus a
//! `Condvar`; unbounded and bounded flavors.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        capacity: Option<usize>,
    }

    /// Error of [`Sender::send`]: all receivers are gone; the value is
    /// returned to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error of [`Receiver::recv`]: channel empty and all senders gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error of [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// Error of [`Sender::try_send`]: the value is returned to the
    /// caller in both cases.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// An unbounded FIFO channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded FIFO channel; `send` blocks at `cap` queued messages.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            capacity,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe EOF.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake blocked senders so they observe EOF.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue, blocking while a bounded channel is full.
        ///
        /// # Errors
        /// Returns the value if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = self
                            .shared
                            .not_full
                            .wait(q)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking enqueue: fails immediately instead of waiting
        /// when a bounded channel is full (the load-shedding primitive).
        ///
        /// # Errors
        /// [`TrySendError::Full`] at capacity, `Disconnected` when every
        /// receiver is gone; the value is returned either way.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.capacity {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking until a message arrives or all senders drop.
        ///
        /// # Errors
        /// [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .not_empty
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue with a deadline.
        ///
        /// # Errors
        /// `Timeout` when nothing arrived in time, `Disconnected` on EOF.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Non-blocking dequeue.
        ///
        /// # Errors
        /// `Empty` when nothing is queued, `Disconnected` on EOF.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                drop(q);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Owning blocking iterator.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::collections::HashSet;
    use std::time::Duration;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn multi_consumer_work_queue() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        let mut all = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(all.insert(v), "value {v} delivered twice");
            }
        }
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn iterator_drains_until_disconnect() {
        let (tx, rx) = channel::unbounded();
        std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(channel::SendError(5)));
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = channel::bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(channel::TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4)));
    }

    #[test]
    fn try_send_unbounded_never_full() {
        let (tx, _rx) = channel::unbounded::<u8>();
        for i in 0..100 {
            tx.try_send(i).unwrap();
        }
    }

    #[test]
    fn timeout_and_try_recv() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees
            "sent"
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }
}
