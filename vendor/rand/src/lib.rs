//! Workspace-local stand-in for the `rand` crate (0.8-era API).
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the slice of `rand` that the synthetic-data generators and
//! tests actually use: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every caller in this
//! workspace only relies on determinism-for-a-seed and statistical
//! quality, not on specific values.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution for the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the type's standard distribution (`f64` in `[0,1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random rearrangement and selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(1.0..100.0);
            assert!((1.0..100.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
        assert!([1u8].choose(&mut rng).is_some());
        assert!(([] as [u8; 0]).choose(&mut rng).is_none());
    }
}
