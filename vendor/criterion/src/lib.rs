//! Workspace-local stand-in for `criterion`.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the benchmarking API its `harness = false` benches use:
//! [`Criterion`], [`BenchmarkId`], groups with `sample_size`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`]/
//! [`criterion_main!`] macros. Measurement is straightforward wall-clock
//! sampling with mean/median/min reporting — no outlier analysis, HTML
//! reports, or statistical regression testing.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher {
    samples: usize,
    /// Per-sample wall-clock times of the most recent `iter` call.
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `samples` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.times.clear();
        self.times.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

fn report(id: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = times.to_vec();
    sorted.sort();
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    println!(
        "{id:<48} mean {:>12} median {:>12} min {:>12} ({} samples)",
        fmt_dur(mean),
        fmt_dur(median),
        fmt_dur(min),
        sorted.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        report(id, &b.times);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.times);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.times);
        self
    }

    /// Close the group (upstream flushes reports here; ours are printed
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut calls = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.bench_function(BenchmarkId::from_parameter(3), |b| {
            b.iter(|| black_box(3));
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_dur(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_dur(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(2)).ends_with(" s"));
    }
}
