//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the small slice of the `bytes` API that the persistence layers
//! actually use: [`Bytes`] (a cheaply cloneable, sliceable byte buffer),
//! [`BytesMut`] (a growable builder), and the [`Buf`]/[`BufMut`] cursor
//! traits with little-endian accessors.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer with an advancing read
/// cursor (the [`Buf`] impl consumes from the front).
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Wrap a static byte slice (copies; the real crate borrows, but the
    /// observable behavior is identical for our callers).
    #[must_use]
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// Length of the unread remainder.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no unread bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-range of the unread remainder, sharing the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(range.start <= range.end, "slice range inverted");
        assert!(range.end <= self.len(), "slice out of bounds");
        Self {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the unread remainder into a fresh vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read cursor over a byte source.
///
/// All `get_*` methods panic when fewer bytes remain than requested,
/// matching the upstream crate; callers guard with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Copy the next `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice out of bounds: want {}, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes out of bounds");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_f64_le(1.5);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert!((r.get_f64_le() - 1.5).abs() < 1e-12);
        let mut rest = [0u8; 3];
        r.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u8(), 3);
    }
}
