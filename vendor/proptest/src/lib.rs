//! Workspace-local stand-in for `proptest`.
//!
//! The build environment has no route to crates.io, so the workspace
//! vendors the slice of `proptest` its property tests use: the
//! [`proptest!`] macro, numeric range strategies, tuple strategies,
//! [`collection::vec`], [`option::of`], [`prop_oneof!`],
//! [`Strategy::prop_map`], and the [`prop_assert!`]/[`prop_assert_eq!`]
//! assertions.
//!
//! [`option::of`]: option::of
//! [`Strategy::prop_map`]: strategy::Strategy::prop_map
//!
//! Differences from upstream, deliberate for a test-only shim:
//! * inputs are drawn from a deterministic per-case seed (no `PROPTEST_`
//!   environment handling), so failures reproduce exactly on re-run;
//! * there is **no shrinking** — a failing case reports the panic from
//!   the test body directly;
//! * only the strategy combinators this workspace uses are provided.

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast while
            // still exercising the properties broadly.
            Self { cases: 64 }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// Weighted choice between strategies with a common value type
    /// (upstream `Union`); built by the [`prop_oneof!`] macro.
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct OneOf<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u32,
    }

    impl<T> OneOf<T> {
        /// Build from `(weight, strategy)` arms; weights need not sum
        /// to anything in particular but must not all be zero.
        #[must_use]
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one non-zero weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (weight, strat) in &self.arms {
                if pick < *weight {
                    return strat.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("pick < total by construction")
        }
    }

    /// Box one `prop_oneof!` arm (macro plumbing: gives the coercion a
    /// concrete target type).
    pub fn one_of_arm<T>(
        weight: u32,
        strat: impl Strategy<Value = T> + 'static,
    ) -> (u32, Box<dyn Strategy<Value = T>>) {
        (weight, Box::new(strat))
    }

    /// A fixed value (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specifications accepted by [`vec`]: an exact `usize`, a
    /// half-open range, or an inclusive range.
    pub trait IntoSizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    #[must_use]
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` one case in four, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Macro runtime support; not part of the public API surface.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Choose between strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::one_of_arm($weight, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs its body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                // Deterministic per-case seed: failures reproduce on
                // re-run without any persisted state.
                let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    0xC0FF_EE00_u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // The body runs in a `Result`-returning closure so
                // upstream-style early exits (`return Ok(())`) compile;
                // failed assertions panic rather than returning `Err`.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("property case {case} rejected: {msg}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Assert inside a property body (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..50, 1u32..10).prop_map(|(a, b)| (a * b, b))
    }

    proptest! {
        #[test]
        fn ranges_respected(x in 3u64..17, f in -2.0f64..2.0, k in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(k <= 4);
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u8..5, 2..6), w in collection::vec(0u8..3, 3)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn mapped_strategy(p in arb_pair()) {
            let (prod, b) = p;
            prop_assert_eq!(prod % b, 0);
        }

        #[test]
        fn oneof_honors_arms(x in prop_oneof![Just(1u8), Just(2u8)], y in prop_oneof![5 => 0u8..3, 1 => Just(9u8)]) {
            prop_assert!(x == 1 || x == 2);
            prop_assert!(y < 3 || y == 9);
        }

        #[test]
        fn option_of_yields_both(o in crate::option::of(0u32..10)) {
            if let Some(x) = o {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn nested_vec(rows in collection::vec(collection::vec(0u64..9, 2..4), 1..4)) {
            prop_assert!(!rows.is_empty());
            for r in rows {
                prop_assert!((2..4).contains(&r.len()));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_form_compiles(x in 0u8..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let s = crate::collection::vec(0u32..1000, 5..9);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(11);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(11);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
