//! Ablation: cost of the confidence-interval adjustment (Section IV-B).
//!
//! The adjustment is a per-cell sqrt + a few multiplications; the paper's
//! interactivity claim (Fig. 9) must survive it. Compares None (raw
//! confidences), the paper's Wald, and the Wilson extension.

use criterion::{criterion_group, criterion_main, Criterion};
use om_bench::{build_store, scaleup_dataset, scaleup_spec};
use om_compare::{CompareConfig, Comparator, IntervalMethod};

fn bench_ci_ablation(c: &mut Criterion) {
    let ds = scaleup_dataset(60, 20_000, 13);
    let store = build_store(&ds, 0);
    let spec = scaleup_spec(&ds);

    let mut group = c.benchmark_group("ablation_interval_method");
    group.sample_size(20);
    for (name, method) in [
        ("none", IntervalMethod::None),
        ("wald_0.95", IntervalMethod::Wald(0.95)),
        ("wilson_0.95", IntervalMethod::Wilson(0.95)),
    ] {
        group.bench_function(name, |b| {
            let comparator = Comparator::with_config(
                &store,
                CompareConfig {
                    interval: method,
                    ..CompareConfig::default()
                },
            );
            b.iter(|| comparator.compare(&spec).expect("comparison runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ci_ablation);
criterion_main!(benches);
