//! Ranker cost comparison: the paper's measure vs the baseline rankers on
//! the same comparison spec (the quality comparison is exp_recovery; this
//! measures cost).

use criterion::{criterion_group, criterion_main, Criterion};
use om_bench::{build_store, scaleup_dataset, scaleup_spec};
use om_compare::baselines::all_rankers;

fn bench_rankers(c: &mut Criterion) {
    let ds = scaleup_dataset(60, 20_000, 16);
    let store = build_store(&ds, 0);
    let spec = scaleup_spec(&ds);

    let mut group = c.benchmark_group("ranker_cost");
    group.sample_size(20);
    for ranker in all_rankers() {
        group.bench_function(ranker.name(), |b| {
            b.iter(|| ranker.rank(&store, &spec).expect("ranks"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rankers);
criterion_main!(benches);
