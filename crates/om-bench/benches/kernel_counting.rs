//! kernel_counting: the columnar bitmap kernel vs the record-walk
//! baseline on the drill-level workload.
//!
//! The workload is a full drill level: condition the population on each
//! value of an attribute and rank every candidate attribute for the
//! canonical comparison. The baseline is the pre-kernel path — copy the
//! sub-population out of the dataset (`Dataset::sub_population`) and
//! rebuild an eager cube store over it per condition. The kernel path is
//! one bitmap AND (`PopulationSelector::narrow`) plus one masked scan
//! anchored on the compared attribute per condition; the `ColumnIndex`
//! is built once outside the loop, as an engine builds it once per store
//! generation. Ranked output must be byte-identical, and on a
//! ≥200-attribute dataset the kernel must be at least 3× faster. The
//! speedup floor is only enforced on ≥8-core machines outside
//! `OM_BENCH_SMOKE=1` mode (matching `rank_parallel`), because the
//! baseline's eager rebuild is itself parallel.

use std::sync::Arc;

use om_bench::{scaleup_dataset, scaleup_spec, time_median};
use om_compare::{candidate_attrs, CompareConfig, Comparator};
use om_cube::{ColumnIndex, CubeStore, StoreBuildOptions};

const COND_ATTR: usize = 1;

fn main() {
    let smoke = std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (n_attrs, n_records, reps) = if smoke {
        (24usize, 4_000usize, 3usize)
    } else {
        (200, 20_000, 5)
    };
    println!("building {n_attrs}-attribute dataset ({n_records} records)…");
    let ds = scaleup_dataset(n_attrs, n_records, 11);
    let spec = scaleup_spec(&ds);
    let config = CompareConfig::default();
    let attrs = candidate_attrs(&ds, spec.attr, &[COND_ATTR]);
    let n_values = ds.schema().attribute(COND_ATTR).cardinality();

    let (walk, walk_time) = time_median(reps, || {
        (0..n_values)
            .map(|v| {
                let sub = ds
                    .sub_population(COND_ATTR, u32::try_from(v).expect("small domain"))
                    .expect("in-domain value");
                let store = CubeStore::build(
                    &sub,
                    &StoreBuildOptions {
                        attrs: Some(attrs.clone()),
                        n_threads: 0,
                        index: false,
                    },
                )
                .expect("record-walk store");
                Comparator::with_config(&store, config.clone())
                    .compare(&spec)
                    .expect("record-walk rank")
            })
            .collect::<Vec<_>>()
    });

    let index = Arc::new(ColumnIndex::build(&ds).expect("column index"));
    let (kernel, kernel_time) = time_median(reps, || {
        (0..n_values)
            .map(|v| {
                let sel = index
                    .selector()
                    .narrow(COND_ATTR, u32::try_from(v).expect("small domain"))
                    .expect("in-domain value");
                let store = sel
                    .build_store_anchored(Some(attrs.clone()), spec.attr)
                    .expect("kernel store");
                Comparator::with_config(&store, config.clone())
                    .compare(&spec)
                    .expect("kernel rank")
            })
            .collect::<Vec<_>>()
    });

    assert_eq!(walk.len(), kernel.len());
    for (w, k) in walk.iter().zip(&kernel) {
        assert_eq!(
            om_compare::json::to_json(w),
            om_compare::json::to_json(k),
            "kernel counting must be byte-identical to the record walk"
        );
    }

    let speedup = walk_time.as_secs_f64() / kernel_time.as_secs_f64();
    println!(
        "kernel_counting/record-walk {:>10.2} ms ({n_values} conditions)",
        walk_time.as_secs_f64() * 1e3
    );
    println!(
        "kernel_counting/kernel      {:>10.2} ms ({n_values} conditions)",
        kernel_time.as_secs_f64() * 1e3
    );
    println!("kernel_counting/speedup     {speedup:>10.2}x (byte-identical output)");

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if !smoke && cores >= 8 {
        assert!(
            speedup >= 3.0,
            "kernel counting speedup {speedup:.2}x below the 3x floor on {cores} cores"
        );
    } else {
        println!(
            "kernel_counting/note        speedup floor not enforced (smoke={smoke}, cores={cores})"
        );
    }
}
