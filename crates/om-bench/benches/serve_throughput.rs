//! om-server throughput: loopback clients hammering a live daemon.
//!
//! Three measurements:
//! 1. cold — every request recomputes the comparison (cache disabled);
//! 2. hot — the same request served from the LRU cache;
//! 3. concurrent — 8 client threads against the cached server.
//!
//! The hot/cold ratio is the headline: the cache turns an engine-bound
//! query into a hash lookup, so it should be well over 10×.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use om_engine::{EngineConfig, OpportunityMap};
use om_server::{Server, ServerConfig};
use om_synth::paper_scenario;

/// The benched query is `/drill`: each cold run rebuilds conditioned
/// cube stores level by level, so it is genuinely engine-bound (tens of
/// milliseconds), while a cache hit is a hash lookup plus loopback TCP.
/// `/compare` alone reads pre-built cubes in ~300µs — too close to the
/// ~90µs connection overhead for the cache to show its real effect.
const TARGET: &str = "/drill?attr=PhoneModel&v1=ph1&v2=ph2&class=dropped&depth=2";
const COMPARE: &str = "/compare?attr=PhoneModel&v1=ph1&v2=ph2&class=dropped";

fn get(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(
        response.starts_with("HTTP/1.1 200 "),
        "unexpected response: {}",
        response.lines().next().unwrap_or("<empty>")
    );
    response
}

/// Mean per-request wall time of `n` serial requests.
fn time_serial(addr: SocketAddr, n: u32) -> Duration {
    let start = Instant::now();
    for _ in 0..n {
        let _ = get(addr, TARGET);
    }
    start.elapsed() / n
}

fn start(engine: &Arc<OpportunityMap>, cache_capacity: usize) -> Server {
    Server::start(
        Arc::clone(engine),
        ServerConfig {
            cache_capacity,
            n_workers: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn main() {
    println!("building engine (50k records)…");
    let (ds, _) = paper_scenario(50_000, 9);
    let engine = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).expect("build"));

    // Cold: cache disabled, every request runs the comparator.
    let cold_server = start(&engine, 0);
    let cold_addr = cold_server.local_addr();
    let _ = get(cold_addr, TARGET); // connection warm-up
    let cold = time_serial(cold_addr, 10);
    cold_server.shutdown();

    // Hot: cache enabled and primed.
    let hot_server = start(&engine, 256);
    let hot_addr = hot_server.local_addr();
    let _ = get(hot_addr, TARGET); // prime the cache
    let hot = time_serial(hot_addr, 200);

    let speedup = cold.as_secs_f64() / hot.as_secs_f64();
    println!("serve_throughput/cold      {:>10.1} µs/req", cold.as_secs_f64() * 1e6);
    println!("serve_throughput/cache-hit {:>10.1} µs/req", hot.as_secs_f64() * 1e6);
    println!("serve_throughput/speedup   {speedup:>10.1}x (cache hit vs cold)");

    // Concurrent: 8 clients, mixed hit/miss traffic, on the hot server.
    let n_threads = 8u32;
    let per_thread = 100u32;
    let start_all = Instant::now();
    let handles: Vec<_> = (0..n_threads)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    // Mix cheap reads, cached drills, and slices so the
                    // cache and the engine path both see concurrency.
                    match (t + i) % 8 {
                        0 => drop(get(hot_addr, "/cube/slice?attr=PhoneModel")),
                        1..=3 => drop(get(hot_addr, COMPARE)),
                        _ => drop(get(hot_addr, TARGET)),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let elapsed = start_all.elapsed();
    let total = u64::from(n_threads * per_thread);
    println!(
        "serve_throughput/concurrent {total} reqs × 8 threads in {:.2?} ({:.0} req/s)",
        elapsed,
        total as f64 / elapsed.as_secs_f64()
    );
    let metrics = hot_server.metrics();
    println!(
        "serve_throughput/metrics   {} hit(s), {} miss(es), {} error(s)",
        metrics.cache_hits(),
        metrics.cache_misses(),
        metrics.errors()
    );
    hot_server.shutdown();

    assert!(
        speedup >= 10.0,
        "cache-hit speedup {speedup:.1}x below the 10x floor"
    );
    assert_eq!(metrics.errors(), 0, "errors during concurrent run");
}
