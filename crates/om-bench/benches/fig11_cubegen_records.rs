//! Fig. 11: rule-cube generation time vs number of records.
//!
//! Paper: "linear as the number of records increases" (2–8 M by
//! duplicating the data set; all 160 attributes). The bench duplicates a
//! base dataset 1–4× at a reduced attribute count; the exp_fig11 binary
//! runs the paper-scale version.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::{build_store, scaleup_dataset};
use om_data::sample::duplicate;

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_cubegen_vs_records");
    group.sample_size(10);
    let base = scaleup_dataset(20, 25_000, 11);
    for factor in 1usize..=4 {
        let ds = duplicate(&base, factor).expect("duplication");
        group.bench_with_input(
            BenchmarkId::from_parameter(ds.n_rows()),
            &factor,
            |b, _| b.iter(|| build_store(&ds, 0)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
