//! General-impressions miner benchmarks: trends, exceptions, influence
//! over the full cube store ("GI miner is called when requested based on
//! the sub-cube shown on screen" — it must feel interactive too).

use criterion::{criterion_group, criterion_main, Criterion};
use om_bench::{build_store, scaleup_dataset};
use om_gi::{mine_exceptions, mine_influence, mine_trends, ExceptionConfig, TrendConfig};

fn bench_gi(c: &mut Criterion) {
    let ds = scaleup_dataset(80, 50_000, 15);
    let store = build_store(&ds, 0);

    let mut group = c.benchmark_group("gi_mining");
    group.sample_size(20);
    group.bench_function("trends", |b| {
        b.iter(|| mine_trends(&store, &TrendConfig::default()));
    });
    group.bench_function("exceptions", |b| {
        b.iter(|| mine_exceptions(&store, &ExceptionConfig::default()));
    });
    group.bench_function("influence", |b| {
        b.iter(|| mine_influence(&store));
    });
    group.finish();
}

criterion_group!(benches, bench_gi);
criterion_main!(benches);
