//! Cluster loopback throughput: a merging coordinator over N in-process
//! shard servers, hammered with the mixed /v1 workload.
//!
//! Measures the distributed-merge overhead the coordinator adds on top
//! of a single node: every request fans out over loopback TCP, pins one
//! store generation per shard, merges the partials, and runs the
//! single-node engine over the merged store.
//!
//! Reported per topology (1 shard = the no-fan-out baseline):
//! throughput (req/s), latency p50/p95/p99, and response bytes.
//!
//! `OM_BENCH_SMOKE=1` shrinks the workload for CI smoke runs.
//! `OM_BENCH_OUT=<file>` additionally writes the machine-readable
//! results JSON (the committed `BENCH_6.json`).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use om_cluster::{partition_dataset, ClusterConfig, Coordinator, ShardClient};
use om_engine::{EngineConfig, OpportunityMap};
use om_server::{Server, ServerConfig};
use om_synth::paper_scenario;

const TOPOLOGIES: &[usize] = &[1, 2, 4];

fn server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        engine_budget: None,
        n_workers: 4,
        ..ServerConfig::default()
    }
}

/// The benched mix: mostly cheap compares, some engine-bound drills, a
/// slice and a batch — the same shape `opmap cluster` drives.
fn request_for(i: usize) -> (&'static str, String) {
    let compare = |v1: &str, v2: &str| om_api::CompareRequest {
        attr: "PhoneModel".into(),
        v1: v1.into(),
        v2: v2.into(),
        class: "dropped".into(),
    };
    match i % 8 {
        0 => ("/v1/compare", compare("ph1", "ph2").encode()),
        1 => ("/v1/compare", compare("ph1", "ph3").encode()),
        2 => ("/v1/compare", compare("ph3", "ph4").encode()),
        3 => ("/v1/compare", compare("ph2", "ph4").encode()),
        4 => (
            "/v1/drill",
            om_api::DrillRequest {
                attr: "PhoneModel".into(),
                v1: "ph1".into(),
                v2: "ph2".into(),
                class: "dropped".into(),
                depth: Some(2),
                min_score: None,
                path: Vec::new(),
            }
            .encode(),
        ),
        5 => ("/v1/gi", om_api::GiRequest { top: Some(5) }.encode()),
        6 => (
            "/v1/cube/slice",
            om_api::SliceRequest {
                attr: "PhoneModel".into(),
                by: Some("TimeOfCall".into()),
            }
            .encode(),
        ),
        _ => (
            "/v1/compare/batch",
            om_api::BatchRequest {
                items: vec![
                    om_api::BatchItemRequest::Compare {
                        req: compare("ph1", "ph2"),
                        budget_ms: None,
                    },
                    om_api::BatchItemRequest::Compare {
                        req: compare("ph2", "ph1"),
                        budget_ms: None,
                    },
                ],
            }
            .encode(),
        ),
    }
}

struct Run {
    shards: usize,
    throughput: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    bytes: u64,
}

fn percentile(sorted_us: &[u128], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

fn bench_topology(union: &Arc<OpportunityMap>, n_shards: usize, requests: usize) -> Run {
    // Shards: in-process servers over hash-routed partitions (1 shard
    // degenerates to the whole dataset — the fan-out-free baseline).
    let parts = partition_dataset(union.dataset(), n_shards).expect("partition");
    let shard_servers: Vec<Server> = parts
        .into_iter()
        .map(|p| {
            let om = Arc::new(OpportunityMap::build(p, EngineConfig::default()).expect("build"));
            Server::start(om, server_config()).expect("start shard")
        })
        .collect();
    let coordinator = Coordinator::connect(ClusterConfig {
        shard_addrs: shard_servers
            .iter()
            .map(|s| s.local_addr().to_string())
            .collect(),
        ..ClusterConfig::default()
    })
    .expect("connect");
    let coord = Server::start_custom(Arc::new(coordinator), server_config()).expect("start coord");
    let client = ShardClient::new(coord.local_addr().to_string(), Duration::from_secs(60));

    // Warm the merged store + caches once, then measure.
    let (path, body) = request_for(0);
    let (status, response) = client.post(path, &body).expect("warm-up");
    assert_eq!(status, 200, "warm-up failed: {response}");

    let mut latencies: Vec<u128> = Vec::with_capacity(requests);
    let mut bytes = 0u64;
    let started = Instant::now();
    for i in 0..requests {
        let (path, body) = request_for(i);
        let t = Instant::now();
        let (status, response) = client.post(path, &body).expect("request");
        latencies.push(t.elapsed().as_micros());
        assert_eq!(status, 200, "{path} failed: {response}");
        bytes += response.len() as u64;
    }
    let elapsed = started.elapsed();

    coord.shutdown();
    for s in shard_servers {
        s.shutdown();
    }
    latencies.sort_unstable();
    Run {
        shards: n_shards,
        throughput: requests as f64 / elapsed.as_secs_f64(),
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        bytes,
    }
}

fn main() {
    let smoke = std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (records, requests) = if smoke { (6_000, 160) } else { (50_000, 4_000) };

    println!("building union engine ({records} records)…");
    let (ds, _) = paper_scenario(records, 9);
    let union = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).expect("build"));

    let mut runs = Vec::new();
    for &n in TOPOLOGIES {
        println!("topology: {n} shard(s), {requests} mixed requests…");
        let run = bench_topology(&union, n, requests);
        println!(
            "  {:>6.0} req/s   p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms   {} bytes",
            run.throughput, run.p50_ms, run.p95_ms, run.p99_ms, run.bytes
        );
        runs.push(run);
    }

    // The headline: coordinator-over-1-shard vs 4 shards shows the pure
    // fan-out + merge cost; both serve byte-identical responses.
    if let (Some(base), Some(wide)) = (runs.first(), runs.last()) {
        println!(
            "fan-out cost: p50 {:.2}ms (1 shard) -> {:.2}ms ({} shards)",
            base.p50_ms, wide.p50_ms, wide.shards
        );
    }

    if let Ok(out) = std::env::var("OM_BENCH_OUT") {
        let mut json = format!(
            "{{\"bench\":\"cluster_loopback\",\"records\":{records},\"requests\":{requests},\
             \"smoke\":{smoke},\"topologies\":["
        );
        for (i, r) in runs.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{{\"shards\":{},\"throughput_rps\":{:.2},\"latency_ms\":{{\"p50\":{:.3},\
                 \"p95\":{:.3},\"p99\":{:.3}}},\"bytes_total\":{}}}",
                r.shards, r.throughput, r.p50_ms, r.p95_ms, r.p99_ms, r.bytes
            );
        }
        json.push_str("]}\n");
        std::fs::write(&out, json).expect("write OM_BENCH_OUT");
        println!("results written to {out}");
    }
}
