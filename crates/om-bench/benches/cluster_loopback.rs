//! Cluster loopback throughput: a merging coordinator over N in-process
//! shard servers, hammered with the mixed /v1 workload.
//!
//! Measures the distributed-merge overhead the coordinator adds on top
//! of a single node: every request fans out over loopback TCP, pins one
//! store generation per partition, merges the partials, and runs the
//! single-node engine over the merged store.
//!
//! Reported per topology (1 shard = the no-fan-out baseline): throughput
//! (req/s), latency p50/p95/p99, and response bytes. The replicated
//! topologies additionally measure the fault-tolerance tax: `2x2`
//! replicates every partition, and `2x2 degraded` runs the same load
//! with the preferred replica of *every* partition shut down — the
//! steady-state cost of answering entirely through breaker-guided
//! failover.
//!
//! `OM_BENCH_SMOKE=1` shrinks the workload for CI smoke runs.
//! `OM_BENCH_OUT=<file>` additionally writes the machine-readable
//! results JSON (the committed `BENCH_7.json`).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use om_cluster::{partition_dataset, replica_set, ClusterConfig, Coordinator, ShardClient};
use om_engine::{EngineConfig, OpportunityMap};
use om_server::{Server, ServerConfig};
use om_synth::paper_scenario;

/// `(partitions, replicas, degraded)` per benched topology.
const TOPOLOGIES: &[(usize, usize, bool)] = &[
    (1, 1, false),
    (2, 1, false),
    (4, 1, false),
    (2, 2, false),
    (2, 2, true),
];

fn server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        engine_budget: None,
        n_workers: 4,
        ..ServerConfig::default()
    }
}

/// The benched mix: mostly cheap compares, some engine-bound drills, a
/// slice and a batch — the same shape `opmap cluster` drives.
fn request_for(i: usize) -> (&'static str, String) {
    let compare = |v1: &str, v2: &str| om_api::CompareRequest {
        attr: "PhoneModel".into(),
        v1: v1.into(),
        v2: v2.into(),
        class: "dropped".into(),
        allow_partial: None,
    };
    match i % 8 {
        0 => ("/v1/compare", compare("ph1", "ph2").encode()),
        1 => ("/v1/compare", compare("ph1", "ph3").encode()),
        2 => ("/v1/compare", compare("ph3", "ph4").encode()),
        3 => ("/v1/compare", compare("ph2", "ph4").encode()),
        4 => (
            "/v1/drill",
            om_api::DrillRequest {
                attr: "PhoneModel".into(),
                v1: "ph1".into(),
                v2: "ph2".into(),
                class: "dropped".into(),
                depth: Some(2),
                min_score: None,
                path: Vec::new(),
            }
            .encode(),
        ),
        5 => (
            "/v1/gi",
            om_api::GiRequest {
                top: Some(5),
                allow_partial: None,
            }
            .encode(),
        ),
        6 => (
            "/v1/cube/slice",
            om_api::SliceRequest {
                attr: "PhoneModel".into(),
                by: Some("TimeOfCall".into()),
            }
            .encode(),
        ),
        _ => (
            "/v1/compare/batch",
            om_api::BatchRequest {
                items: vec![
                    om_api::BatchItemRequest::Compare {
                        req: compare("ph1", "ph2"),
                        budget_ms: None,
                    },
                    om_api::BatchItemRequest::Compare {
                        req: compare("ph2", "ph1"),
                        budget_ms: None,
                    },
                ],
            }
            .encode(),
        ),
    }
}

struct Run {
    partitions: usize,
    replicas: usize,
    degraded: bool,
    throughput: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    bytes: u64,
}

fn percentile(sorted_us: &[u128], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

fn bench_topology(
    union: &Arc<OpportunityMap>,
    partitions: usize,
    replicas: usize,
    degraded: bool,
    requests: usize,
) -> Run {
    // Shards: in-process servers over hash-routed partitions (1 shard
    // degenerates to the whole dataset — the fan-out-free baseline).
    // Replicas of a partition share the partition's engine.
    let parts = partition_dataset(union.dataset(), partitions).expect("partition");
    let mut shard_servers: Vec<Option<Server>> = Vec::with_capacity(partitions * replicas);
    for p in parts {
        let om = Arc::new(OpportunityMap::build(p, EngineConfig::default()).expect("build"));
        for _ in 0..replicas {
            shard_servers.push(Some(
                Server::start(Arc::clone(&om), server_config()).expect("start shard"),
            ));
        }
    }
    let coordinator = Coordinator::connect(ClusterConfig {
        shard_addrs: shard_servers
            .iter()
            .map(|s| s.as_ref().expect("live shard").local_addr().to_string())
            .collect(),
        replicas,
        // Dead replicas answer connection-refused instantly; a tight
        // backoff keeps the pre-breaker warm-up requests cheap.
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        ..ClusterConfig::default()
    })
    .expect("connect");
    let coord = Server::start_custom(Arc::new(coordinator), server_config()).expect("start coord");
    let client = ShardClient::new(coord.local_addr().to_string(), Duration::from_secs(60));

    // Warm the merged store + caches once, then measure.
    let (path, body) = request_for(0);
    let (status, response) = client.post(path, &body).expect("warm-up");
    assert_eq!(status, 200, "warm-up failed: {response}");

    if degraded {
        // The degraded steady state: the preferred replica of every
        // partition is gone, and enough warm-up load has run for the
        // breakers to open — measuring pure failover-path serving.
        for p in 0..partitions {
            let g = replica_set(p, partitions, replicas)[0];
            if let Some(server) = shard_servers[g].take() {
                server.shutdown();
            }
        }
        for i in 0..16 {
            let (path, body) = request_for(i);
            let (status, response) = client.post(path, &body).expect("degraded warm-up");
            assert_eq!(status, 200, "degraded warm-up failed: {response}");
        }
    }

    let mut latencies: Vec<u128> = Vec::with_capacity(requests);
    let mut bytes = 0u64;
    let started = Instant::now();
    for i in 0..requests {
        let (path, body) = request_for(i);
        let t = Instant::now();
        let (status, response) = client.post(path, &body).expect("request");
        latencies.push(t.elapsed().as_micros());
        assert_eq!(status, 200, "{path} failed: {response}");
        bytes += response.len() as u64;
    }
    let elapsed = started.elapsed();

    coord.shutdown();
    for s in shard_servers.into_iter().flatten() {
        s.shutdown();
    }
    latencies.sort_unstable();
    Run {
        partitions,
        replicas,
        degraded,
        throughput: requests as f64 / elapsed.as_secs_f64(),
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        bytes,
    }
}

fn main() {
    let smoke = std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (records, requests) = if smoke { (6_000, 160) } else { (50_000, 4_000) };

    println!("building union engine ({records} records)…");
    let (ds, _) = paper_scenario(records, 9);
    let union = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).expect("build"));

    let mut runs = Vec::new();
    for &(partitions, replicas, degraded) in TOPOLOGIES {
        println!(
            "topology: {partitions}x{replicas}{}, {requests} mixed requests…",
            if degraded { " degraded" } else { "" }
        );
        let run = bench_topology(&union, partitions, replicas, degraded, requests);
        println!(
            "  {:>6.0} req/s   p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms   {} bytes",
            run.throughput, run.p50_ms, run.p95_ms, run.p99_ms, run.bytes
        );
        runs.push(run);
    }

    // The headlines: coordinator-over-1-shard vs 4 partitions shows the
    // pure fan-out + merge cost; replicated-healthy vs degraded shows
    // the failover tax. All serve byte-identical responses.
    if let (Some(base), Some(wide)) = (runs.first(), runs.iter().find(|r| r.partitions == 4)) {
        println!(
            "fan-out cost: p50 {:.2}ms (1 shard) -> {:.2}ms ({} partitions)",
            base.p50_ms, wide.p50_ms, wide.partitions
        );
    }
    let healthy = runs.iter().find(|r| r.replicas > 1 && !r.degraded);
    let hurt = runs.iter().find(|r| r.replicas > 1 && r.degraded);
    if let (Some(h), Some(d)) = (healthy, hurt) {
        println!(
            "failover tax: p50 {:.2}ms ({}x{} healthy) -> {:.2}ms (preferred replicas down)",
            h.p50_ms, h.partitions, h.replicas, d.p50_ms
        );
    }

    if let Ok(out) = std::env::var("OM_BENCH_OUT") {
        let mut json = format!(
            "{{\"bench\":\"cluster_loopback\",\"records\":{records},\"requests\":{requests},\
             \"smoke\":{smoke},\"topologies\":["
        );
        for (i, r) in runs.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{{\"shards\":{},\"replicas\":{},\"degraded\":{},\"throughput_rps\":{:.2},\
                 \"latency_ms\":{{\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}},\"bytes_total\":{}}}",
                r.partitions, r.replicas, r.degraded, r.throughput, r.p50_ms, r.p95_ms, r.p99_ms,
                r.bytes
            );
        }
        json.push_str("]}\n");
        std::fs::write(&out, json).expect("write OM_BENCH_OUT");
        println!("results written to {out}");
    }
}
