//! batch_drill: one `/v1/compare/batch` request carrying 32 fixed-path
//! drill items versus 32 sequential `/v1/drill` requests.
//!
//! All 32 items drill one level below the same parent comparison, so the
//! batch plan computes the shared root ranking once and reuses it, while
//! the sequential client pays it 32 times (plus 32 TCP round-trips).
//! The batch must win even on one core — the saving is shared work, not
//! parallelism.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use om_bench::scaleup_dataset;
use om_engine::{EngineConfig, OpportunityMap};
use om_server::{Server, ServerConfig};

const N_ITEMS: usize = 32;

fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(
        response.starts_with("HTTP/1.1 200 "),
        "unexpected response: {}",
        response.lines().next().unwrap_or("<empty>")
    );
    response.split_once("\r\n\r\n").map_or(String::new(), |(_, b)| b.to_owned())
}

fn main() {
    let smoke = std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (n_attrs, n_records) = if smoke { (36usize, 4_000usize) } else { (40, 20_000) };
    println!("building {n_attrs}-attribute engine ({n_records} records)…");
    let ds = scaleup_dataset(n_attrs, n_records, 7);
    let om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).expect("build"));

    // The shared parent comparison: attribute 0, first two values, class 1
    // (om_bench::scaleup_spec by name).
    let schema = om.dataset().schema();
    let attr = schema.attribute(0).name().to_owned();
    let v1 = schema.attribute(0).domain().label(0).expect("value 0").to_owned();
    let v2 = schema.attribute(0).domain().label(1).expect("value 1").to_owned();
    let class = schema.class().domain().label(1).expect("class 1").to_owned();

    // 32 children of that parent: condition on the first value of 32
    // other attributes, one level each.
    let conditions: Vec<(String, String)> = (1..schema.n_attributes())
        .take(N_ITEMS)
        .map(|i| {
            let a = schema.attribute(i);
            (
                a.name().to_owned(),
                a.domain().label(0).expect("first value").to_owned(),
            )
        })
        .collect();
    assert_eq!(conditions.len(), N_ITEMS, "dataset too narrow for {N_ITEMS} children");

    let drill_body = |cond: &(String, String)| {
        format!(
            r#"{{"attr":"{attr}","v1":"{v1}","v2":"{v2}","class":"{class}","path":[{{"attr":"{}","value":"{}"}}]}}"#,
            cond.0, cond.1
        )
    };
    let batch_body = format!(
        r#"{{"items":[{}]}}"#,
        conditions
            .iter()
            .map(|c| {
                let d = drill_body(c);
                format!(r#"{{"kind":"drill",{}"#, &d[1..])
            })
            .collect::<Vec<_>>()
            .join(",")
    );

    let server = Server::start(
        Arc::clone(&om),
        ServerConfig {
            n_workers: 2,
            cache_capacity: 0,
            engine_budget: None,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    // Warm up connections and code paths once, untimed.
    let _ = post(addr, "/v1/drill", &drill_body(&conditions[0]));
    let _ = post(addr, "/v1/compare/batch", &batch_body);

    let start = Instant::now();
    for cond in &conditions {
        let _ = post(addr, "/v1/drill", &drill_body(cond));
    }
    let sequential = start.elapsed();

    let start = Instant::now();
    let reply = post(addr, "/v1/compare/batch", &batch_body);
    let batched = start.elapsed();
    server.shutdown();

    let parsed = om_api::BatchResponse::parse(&reply).expect("batch reply decodes");
    assert_eq!(parsed.items.len(), N_ITEMS);
    assert!(
        parsed
            .items
            .iter()
            .all(|i| matches!(i, om_api::BatchItemResult::Drill(_))),
        "every batch item should come back as a drill result"
    );

    let speedup = sequential.as_secs_f64() / batched.as_secs_f64();
    println!(
        "batch_drill/sequential  {:>10.1} ms ({N_ITEMS} × POST /v1/drill)",
        sequential.as_secs_f64() * 1e3
    );
    println!(
        "batch_drill/batched     {:>10.1} ms (1 × POST /v1/compare/batch)",
        batched.as_secs_f64() * 1e3
    );
    println!("batch_drill/speedup     {speedup:>10.2}x");
    assert!(
        batched < sequential,
        "batched {N_ITEMS}-drill request ({batched:?}) should beat {N_ITEMS} sequential \
         drills ({sequential:?})"
    );
}
