//! CAR generator benchmarks: full mining across support thresholds, and
//! restricted mining (the Section III-B path for longer rules).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::scaleup_dataset;
use om_car::{mine, mine_restricted, Condition, MinerConfig};

fn bench_mining(c: &mut Criterion) {
    let ds = scaleup_dataset(15, 30_000, 12);
    let mut group = c.benchmark_group("car_mining");
    group.sample_size(10);
    for &min_sup in &[0.05f64, 0.01, 0.001] {
        group.bench_with_input(
            BenchmarkId::new("two_condition", format!("{min_sup}")),
            &min_sup,
            |b, &min_sup| {
                let config = MinerConfig {
                    min_support: min_sup,
                    min_confidence: 0.0,
                    max_conditions: 2,
                    attrs: None,
                };
                b.iter(|| mine(&ds, &config).expect("mines"));
            },
        );
    }
    group.bench_function("restricted_three_condition", |b| {
        let config = MinerConfig {
            min_support: 0.001,
            min_confidence: 0.0,
            max_conditions: 3,
            attrs: None,
        };
        let fixed = [Condition::new(0, 0)];
        b.iter(|| mine_restricted(&ds, &fixed, &config).expect("mines"));
    });
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
