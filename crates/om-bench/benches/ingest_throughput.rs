//! Live-ingestion throughput: sustained append rate under concurrent
//! query load, plus snapshot (generation) swap latency.
//!
//! Three measurements:
//! 1. sustained — rows/s appended through the WAL + delta-cube pipeline
//!    while 4 reader threads continuously query the shared store;
//! 2. swap — wall time from "rows appended" to "new generation
//!    published and visible to queries" (seal + merge + publish);
//! 3. consistency — every reader asserts each query it ran saw one
//!    internally-consistent store generation.
//!
//! `OM_BENCH_SMOKE=1` shrinks the workload for CI smoke runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use om_engine::{EngineConfig, IngestConfig, OpportunityMap};
use om_synth::paper_scenario;

fn main() {
    let smoke = std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (base_rows, ingest_rows, swap_rounds) = if smoke {
        (5_000, 10_000, 5)
    } else {
        (50_000, 200_000, 20)
    };

    println!("building engine ({base_rows} base records)…");
    let (ds, _) = paper_scenario(base_rows, 9);
    let om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).expect("build"));

    let wal_dir = std::env::temp_dir().join(format!("om-bench-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let handle = om
        .start_ingest(&IngestConfig {
            seal_rows: 4096,
            sync_writes: false,
            ..IngestConfig::new(&wal_dir)
        })
        .expect("start ingest");

    // Pre-encode the append workload: the base dataset's own rows,
    // cycled — already discretized, so appends exercise only the
    // WAL/seal/merge path, not parsing.
    let dataset = om.dataset();
    let n_attrs = dataset.schema().n_attributes();
    let cols: Vec<&[_]> = (0..n_attrs)
        .map(|i| dataset.column(i).as_categorical().expect("categorical"))
        .collect();
    let pool: Vec<Vec<_>> = (0..dataset.n_rows().min(4096))
        .map(|r| cols.iter().map(|c| c[r]).collect())
        .collect();

    // Readers: hammer the published snapshot for the whole run; each
    // query pins one generation and checks it is internally consistent.
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let om = Arc::clone(&om);
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut generations_seen = 0u64;
                let mut last_generation = u64::MAX;
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = om.store();
                    let total: u64 = snapshot.class_counts().iter().sum();
                    assert_eq!(
                        total,
                        snapshot.total_records(),
                        "torn store: class counts disagree with total"
                    );
                    if snapshot.generation() != last_generation {
                        last_generation = snapshot.generation();
                        generations_seen += 1;
                    }
                    queries.fetch_add(1, Ordering::Relaxed);
                }
                generations_seen
            })
        })
        .collect();

    // Sustained append rate under that query load.
    let start = Instant::now();
    let mut appended = 0usize;
    while appended < ingest_rows {
        let n = pool.len().min(ingest_rows - appended);
        let batch: Vec<Vec<_>> = pool[..n].to_vec();
        handle.append_rows(batch).expect("append");
        appended += n;
    }
    handle.flush().expect("flush");
    let elapsed = start.elapsed();
    let rate = appended as f64 / elapsed.as_secs_f64();
    println!(
        "ingest_throughput/sustained {appended} rows in {elapsed:.2?} ({rate:.0} rows/s) \
         under 4 query threads"
    );

    // Generation-swap latency: append one segment's worth, then time
    // seal → merge → publish until queries can see the new generation.
    let mut swap_total = Duration::ZERO;
    let mut swap_max = Duration::ZERO;
    for _ in 0..swap_rounds {
        let batch: Vec<Vec<_>> = pool[..pool.len().min(1024)].to_vec();
        handle.append_rows(batch).expect("append");
        let before = om.store_generation();
        let t = Instant::now();
        handle.flush().expect("flush");
        let dt = t.elapsed();
        assert!(om.store_generation() > before, "flush did not publish");
        swap_total += dt;
        swap_max = swap_max.max(dt);
    }
    println!(
        "ingest_throughput/swap      {:.2?} mean, {:.2?} max (seal+merge+publish, {swap_rounds} rounds)",
        swap_total / swap_rounds,
        swap_max
    );

    stop.store(true, Ordering::Relaxed);
    let generations: u64 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
    let stats = handle.stats();
    println!(
        "ingest_throughput/readers   {} queries, {generations} generation observations, 0 torn reads",
        queries.load(Ordering::Relaxed)
    );
    println!(
        "ingest_throughput/stats     rows={} sealed={} compactions={} generation={} wal_bytes={}",
        stats.rows_total,
        stats.segments_sealed_total,
        stats.compactions_total,
        stats.store_generation,
        stats.wal_bytes
    );

    assert_eq!(stats.rows_total as usize, ingest_rows + swap_rounds as usize * 1024.min(pool.len()));
    assert_eq!(
        om.store().total_records(),
        base_rows as u64 + stats.rows_total,
        "published store must account for every appended row"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
}
