//! explore_throughput: one memoized `explore_compare` call versus k
//! independent drill-downs over the same comparison.
//!
//! `explore_compare` anchors the comparison once, then builds both
//! sides' candidate pools in one shared scan (each pair cube fetched
//! once, sliced twice) before the greedy picks k summaries. The naive
//! route to k summaries — k separate drill-down calls — re-ranks the
//! anchoring comparison every time, so the memoized form must win even
//! on one core: the saving is shared work, not parallelism.
//!
//! `OM_BENCH_SMOKE=1` shrinks the workload for CI smoke runs.
//! `OM_BENCH_OUT=<file>` additionally writes the machine-readable
//! results JSON (the committed `BENCH_8.json`).

use std::fmt::Write as _;
use std::time::Instant;

use om_compare::DrillConfig;
use om_engine::{CompareNames, EngineConfig, ExploreQuery, OpportunityMap};
use om_synth::paper_scenario;

fn main() {
    let smoke = std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (records, k, rounds) = if smoke { (8_000, 6, 3) } else { (50_000, 8, 10) };

    println!("building engine ({records} records)…");
    let (ds, _) = paper_scenario(records, 9);
    let om = OpportunityMap::build(ds, EngineConfig::default()).expect("build");

    let query = ExploreQuery {
        slice: Vec::new(),
        k,
        max_conditions: None,
        compare: Some(CompareNames {
            attr: "PhoneModel".into(),
            value_1: "ph1".into(),
            value_2: "ph2".into(),
            class: "dropped".into(),
        }),
    };
    let drill_config = DrillConfig {
        max_depth: 1,
        ..DrillConfig::default()
    };

    // Warm both code paths once, untimed.
    let report = om.run_explore(&query, om.exec_ctx(None)).expect("explore");
    assert!(!report.truncated && !report.summaries.is_empty());
    let _ = om
        .run_drill_down_by_name("PhoneModel", "ph1", "ph2", "dropped", &drill_config, om.exec_ctx(None))
        .expect("drill");

    let start = Instant::now();
    for _ in 0..rounds {
        let r = om.run_explore(&query, om.exec_ctx(None)).expect("explore");
        assert_eq!(r.summaries.len(), report.summaries.len());
    }
    let memoized = start.elapsed();

    let start = Instant::now();
    for _ in 0..rounds {
        for _ in 0..k {
            let levels = om
                .run_drill_down_by_name(
                    "PhoneModel",
                    "ph1",
                    "ph2",
                    "dropped",
                    &drill_config,
                    om.exec_ctx(None),
                )
                .expect("drill");
            assert!(!levels.is_empty());
        }
    }
    let independent = start.elapsed();

    let memoized_ms = memoized.as_secs_f64() * 1e3 / rounds as f64;
    let independent_ms = independent.as_secs_f64() * 1e3 / rounds as f64;
    let speedup = independent_ms / memoized_ms;
    println!("explore_throughput/explore_compare  {memoized_ms:>10.1} ms (1 call, k={k})");
    println!("explore_throughput/independent      {independent_ms:>10.1} ms ({k} × drill-down)");
    println!("explore_throughput/speedup          {speedup:>10.2}x");

    if let Ok(out) = std::env::var("OM_BENCH_OUT") {
        let mut json = format!(
            "{{\"bench\":\"explore_throughput\",\"records\":{records},\"k\":{k},\
             \"rounds\":{rounds},\"smoke\":{smoke},"
        );
        let _ = write!(
            json,
            "\"explore_compare_ms\":{memoized_ms:.3},\"independent_drills_ms\":{independent_ms:.3},\
             \"speedup\":{speedup:.3}}}"
        );
        json.push('\n');
        std::fs::write(&out, json).expect("write OM_BENCH_OUT");
        println!("results written to {out}");
    }

    assert!(
        memoized < independent,
        "memoized explore_compare ({memoized:?}) should beat {k} independent \
         drill-downs ({independent:?})"
    );
}
