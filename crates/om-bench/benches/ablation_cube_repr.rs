//! Ablation: dense count tensor (the paper's min-sup = 0, no-holes
//! representation) vs a sparse `HashMap` counter for pair-cube
//! construction. With min-sup = 0 every cell is materialized anyway, so
//! the hash layer buys nothing and costs hashing per record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::{hashmap_cube_count, scaleup_dataset};
use om_cube::build_cube;

fn bench_cube_repr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cube_representation");
    group.sample_size(20);
    for &n_records in &[10_000usize, 50_000, 200_000] {
        let ds = scaleup_dataset(4, n_records, 14);
        group.bench_with_input(
            BenchmarkId::new("dense_tensor", n_records),
            &n_records,
            |b, _| b.iter(|| build_cube(&ds, &[0, 1]).expect("builds")),
        );
        group.bench_with_input(
            BenchmarkId::new("hashmap", n_records),
            &n_records,
            |b, _| b.iter(|| hashmap_cube_count(&ds, 0, 1)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cube_repr);
criterion_main!(benches);
