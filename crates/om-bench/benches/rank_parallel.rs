//! rank_parallel: sharded attribute ranking vs the serial comparator.
//!
//! The sharded path must be byte-identical to serial (asserted here via
//! the canonical JSON encoding) and, on a ≥200-attribute dataset with 8
//! workers, at least 3× faster. The speedup floor is only enforced when
//! the machine actually has 8 cores to run the shards on and the bench
//! is not in `OM_BENCH_SMOKE=1` mode.

use std::sync::Arc;

use om_bench::{build_store, scaleup_dataset, scaleup_spec, time_median};
use om_compare::{CompareConfig, Comparator};
use om_engine::Budget;
use om_exec::{rank_parallel, ExecConfig, Executor};

fn main() {
    let smoke = std::env::var("OM_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (n_attrs, n_records, reps) = if smoke {
        (24usize, 4_000usize, 3usize)
    } else {
        (200, 20_000, 5)
    };
    println!("building {n_attrs}-attribute store ({n_records} records)…");
    let ds = scaleup_dataset(n_attrs, n_records, 11);
    let store = Arc::new(build_store(&ds, 0));
    let spec = scaleup_spec(&ds);
    let config = CompareConfig::default();
    let budget = Budget::unlimited();

    let comparator = Comparator::new(&store);
    let (serial, serial_time) =
        time_median(reps, || comparator.compare(&spec).expect("serial rank"));

    let pool = Executor::new(&ExecConfig { workers: 8 });
    let (parallel, parallel_time) = time_median(reps, || {
        rank_parallel(&pool, &store, &config, &spec, &budget).expect("parallel rank")
    });

    assert_eq!(
        om_compare::json::to_json(&serial),
        om_compare::json::to_json(&parallel),
        "sharded ranking must be byte-identical to serial"
    );

    let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
    println!(
        "rank_parallel/serial    {:>10.2} ms",
        serial_time.as_secs_f64() * 1e3
    );
    println!(
        "rank_parallel/8-shard   {:>10.2} ms",
        parallel_time.as_secs_f64() * 1e3
    );
    println!("rank_parallel/speedup   {speedup:>10.2}x (byte-identical output)");

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if !smoke && cores >= 8 {
        assert!(
            speedup >= 3.0,
            "8-shard ranking speedup {speedup:.2}x below the 3x floor on {cores} cores"
        );
    } else {
        println!(
            "rank_parallel/note      speedup floor not enforced (smoke={smoke}, cores={cores})"
        );
    }
}
