//! Overhead of cooperative deadline checking: the budgeted comparison
//! path against the plain one on the paper's largest scale-up setting.
//!
//! Budget checks are one relaxed atomic load plus (when a deadline is
//! armed) a clock read, paced to once per attribute and once per 1024
//! cells — the two variants should be indistinguishable.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use om_bench::{build_store, scaleup_dataset, scaleup_spec};
use om_compare::Comparator;
use om_engine::Budget;

fn bench_fault_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead_compare");
    group.sample_size(10);
    let ds = scaleup_dataset(160, 20_000, 9);
    let store = build_store(&ds, 0);
    let spec = scaleup_spec(&ds);

    group.bench_function("plain", |b| {
        let comparator = Comparator::new(&store);
        b.iter(|| comparator.compare(&spec).expect("comparison runs"));
    });
    group.bench_function("budgeted_unlimited", |b| {
        let comparator = Comparator::new(&store);
        let budget = Budget::unlimited();
        b.iter(|| {
            comparator
                .compare_budgeted(&spec, &budget)
                .expect("comparison runs")
        });
    });
    group.bench_function("budgeted_armed_deadline", |b| {
        let comparator = Comparator::new(&store);
        b.iter(|| {
            // A generous armed deadline pays the clock read on every
            // check without ever tripping.
            let budget = Budget::with_timeout(Duration::from_secs(600));
            comparator
                .compare_budgeted(&spec, &budget)
                .expect("comparison runs")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fault_overhead);
criterion_main!(benches);
