//! Ablation: the paper's two-condition-cube policy (Section III-B).
//!
//! "Clearly, this will result in a huge number of rules due to
//! combinatorial explosion. However, our experiences show that practical
//! applications seldom need long rules … Thus, we only store
//! two-condition rules. When longer rules … are needed, a restricted
//! mining can be carried out."
//!
//! This bench puts numbers on that policy: materializing *all*
//! three-attribute cubes vs answering one longer-rule question on demand
//! via restricted mining.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::scaleup_dataset;
use om_car::{mine_restricted, Condition, MinerConfig};
use om_cube::build_cube;

fn bench_restricted_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_two_condition_policy");
    group.sample_size(10);
    for &n_attrs in &[8usize, 12, 16] {
        let ds = scaleup_dataset(n_attrs, 20_000, 17);
        // Policy A (rejected by the paper): build every 3-attribute cube.
        group.bench_with_input(
            BenchmarkId::new("all_triple_cubes", n_attrs),
            &n_attrs,
            |b, &n| {
                b.iter(|| {
                    let mut total = 0u64;
                    for i in 0..n {
                        for j in (i + 1)..n {
                            for k in (j + 1)..n {
                                total += build_cube(&ds, &[i, j, k]).expect("builds").total();
                            }
                        }
                    }
                    total
                })
            },
        );
        // Policy B (the paper's): answer one longer-rule question on demand.
        group.bench_with_input(
            BenchmarkId::new("one_restricted_mining", n_attrs),
            &n_attrs,
            |b, _| {
                let config = MinerConfig {
                    min_support: 0.001,
                    min_confidence: 0.0,
                    max_conditions: 3,
                    attrs: None,
                };
                let fixed = [Condition::new(0, 0)];
                b.iter(|| mine_restricted(&ds, &fixed, &config).expect("mines"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_restricted_policy);
criterion_main!(benches);
