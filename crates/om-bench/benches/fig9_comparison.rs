//! Fig. 9: comparison computation time vs number of attributes.
//!
//! Paper: "as the number of attributes increases from 40 to 160, the
//! processing time goes up linearly … even with 160 attributes the system
//! is still highly interactive as it only takes 0.8 second". The
//! comparison reads only rule cubes, so the store is built once outside
//! the timed region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::{build_store, scaleup_dataset, scaleup_spec};
use om_compare::Comparator;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_comparison_vs_attrs");
    group.sample_size(10);
    for &n_attrs in &[40usize, 80, 120, 160] {
        // 20k records suffices: comparison cost is independent of records.
        let ds = scaleup_dataset(n_attrs, 20_000, 9);
        let store = build_store(&ds, 0);
        let spec = scaleup_spec(&ds);
        group.bench_with_input(
            BenchmarkId::from_parameter(n_attrs),
            &n_attrs,
            |b, _| {
                let comparator = Comparator::new(&store);
                b.iter(|| comparator.compare(&spec).expect("comparison runs"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
