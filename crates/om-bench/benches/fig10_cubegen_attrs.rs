//! Fig. 10: rule-cube generation time vs number of attributes.
//!
//! Paper: "a nonlinear growth, which is expected as the number of
//! attributes increases" — all `n·(n−1)/2` pair cubes are built, so the
//! cost is quadratic in attributes. Includes the serial-vs-parallel
//! ablation (the paper generates cubes offline; parallelism is this
//! reproduction's extension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use om_bench::{build_store, scaleup_dataset};

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_cubegen_vs_attrs");
    group.sample_size(10);
    // Criterion runs many iterations; keep the per-iteration cost modest
    // (the exp_fig10 binary runs the paper-scale sweep).
    for &n_attrs in &[10usize, 20, 30, 40] {
        let ds = scaleup_dataset(n_attrs, 20_000, 10);
        group.bench_with_input(
            BenchmarkId::new("serial", n_attrs),
            &n_attrs,
            |b, _| b.iter(|| build_store(&ds, 1)),
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", n_attrs),
            &n_attrs,
            |b, _| b.iter(|| build_store(&ds, 0)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
