//! Extension experiment — automated drill-down recovery.
//!
//! The deployed system required the analyst to manually chain restricted
//! analyses ("imagine in the application, many pairs of phones need to be
//! compared…"). The drill-down extension automates the chain. This
//! experiment plants a *nested* cause — ph2 is worse in the morning, and
//! within the morning the excess concentrates on highway driving — and
//! measures how often the two-level walk recovers both levels.
//!
//! Run with: `cargo run --release -p om-bench --bin exp_drill`

use om_bench::full_scale;
use om_compare::{drill_down, ComparisonSpec, DrillConfig};
use om_synth::{generate_call_log, CallLogConfig, Effect};

fn main() {
    let trials: u64 = if full_scale() { 20 } else { 10 };
    let n_records = 100_000;
    println!(
        "Drill-down recovery: planted TimeOfCall=morning, then LocationType=highway inside it"
    );
    println!("({trials} trials x {n_records} records)\n");

    let mut root_hits = 0u64;
    let mut nested_hits = 0u64;
    for trial in 0..trials {
        let ds = generate_call_log(&CallLogConfig {
            n_records,
            seed: 40_000 + trial,
            effects: vec![
                Effect::interaction("PhoneModel", "ph2", "TimeOfCall", "morning", "dropped", 1.2),
                Effect::conjunction(
                    [
                        ("PhoneModel", "ph2"),
                        ("TimeOfCall", "morning"),
                        ("LocationType", "highway"),
                    ],
                    "dropped",
                    2.5,
                ),
            ],
            ..CallLogConfig::default()
        });
        let s = ds.schema();
        let attr = s.attr_index("PhoneModel").unwrap();
        let spec = ComparisonSpec {
            attr,
            value_1: s.attribute(attr).domain().get("ph1").unwrap(),
            value_2: s.attribute(attr).domain().get("ph2").unwrap(),
            class: s.class().domain().get("dropped").unwrap(),
        };
        let levels = drill_down(&ds, &spec, &DrillConfig::default()).expect("root runs");
        let root_ok = levels
            .first()
            .and_then(|l| l.result.top())
            .is_some_and(|t| t.attr_name == "TimeOfCall");
        let nested_ok = levels.get(1).is_some_and(|l| {
            l.condition_labels == vec!["TimeOfCall=morning".to_string()]
                && l.result
                    .top()
                    .is_some_and(|t| t.attr_name == "LocationType")
        });
        root_hits += root_ok as u64;
        nested_hits += (root_ok && nested_ok) as u64;
    }

    println!(
        "root level   (TimeOfCall first):              {:>5.1}%",
        root_hits as f64 / trials as f64 * 100.0
    );
    println!(
        "nested level (LocationType inside morning):    {:>5.1}%",
        nested_hits as f64 / trials as f64 * 100.0
    );
    println!(
        "\nshape check: nested recovery {} (≥ 80%)",
        if nested_hits as f64 / trials as f64 >= 0.8 {
            "PASSED"
        } else {
            "FAILED"
        }
    );
}
