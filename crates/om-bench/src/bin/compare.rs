//! `om-bench compare` — significance-gated diff of two benchmark result
//! files (the committed `BENCH_*.json` artifacts).
//!
//! Walks both JSON trees in lockstep and classifies every numeric leaf:
//!
//! * **Throughput** (`throughput_rps`, `*_rps`): the two runs are modeled
//!   as Poisson request streams. Conditional on the combined request
//!   count, the split between the runs is binomial, so a normal
//!   approximation (om-stats' CDF) gives a p-value for "the new rate is
//!   genuinely lower". A regression needs both statistical significance
//!   (p < 0.01) and a practical drop (> 2%), so noise never gates CI and
//!   tiny-but-real regressions under the practical floor pass too.
//! * **Latency** (`p50`/`p95`/`p99`, `*_ms`, `*_us`): percentile points
//!   carry no sample counts, so the gate is purely practical — a tail
//!   regression is a relative increase above 10%.
//! * Everything else numeric is reported as informational.
//!
//! Exit status: 0 when no metric regressed, 1 on any regression, 2 on
//! malformed or structurally mismatched inputs.
//!
//! Run with: `cargo run -p om-bench --bin compare -- BASELINE.json NEW.json`

use std::process::ExitCode;

use om_api::Json;
use om_stats::normal_cdf;

/// Practical floor for a throughput drop to count as a regression.
const THROUGHPUT_DROP_FLOOR: f64 = 0.02;
/// Significance level for the throughput rate test.
const ALPHA: f64 = 0.01;
/// Practical floor for a latency-percentile increase.
const LATENCY_RISE_FLOOR: f64 = 0.10;

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Kind {
    Throughput,
    Latency,
    Info,
}

fn classify(path: &str) -> Kind {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.ends_with("_rps") || leaf.contains("throughput") {
        return Kind::Throughput;
    }
    if matches!(leaf, "p50" | "p95" | "p99") || leaf.ends_with("_ms") || leaf.ends_with("_us") {
        return Kind::Latency;
    }
    Kind::Info
}

struct Metric {
    path: String,
    kind: Kind,
    old: f64,
    new: f64,
}

/// Walk both values in lockstep, collecting numeric leaves under their
/// shared path. Arrays pair by index; objects pair by key. A key or
/// index present on only one side is a structural mismatch.
fn collect(path: &str, a: &Json, b: &Json, out: &mut Vec<Metric>) -> Result<(), String> {
    match (a, b) {
        (Json::Num(x), Json::Num(y)) => {
            out.push(Metric {
                path: path.to_owned(),
                kind: classify(path),
                old: *x,
                new: *y,
            });
            Ok(())
        }
        (Json::Obj(xs), Json::Obj(ys)) => {
            for (k, x) in xs {
                let Some((_, y)) = ys.iter().find(|(yk, _)| yk == k) else {
                    return Err(format!("{path}.{k} is missing from the new file"));
                };
                let sub = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                collect(&sub, x, y, out)?;
            }
            if let Some((k, _)) = ys.iter().find(|(k, _)| !xs.iter().any(|(xk, _)| xk == k)) {
                return Err(format!("{path}.{k} is missing from the baseline"));
            }
            Ok(())
        }
        (Json::Arr(xs), Json::Arr(ys)) => {
            if xs.len() != ys.len() {
                return Err(format!(
                    "{path} has {} entries in the baseline but {} in the new file",
                    xs.len(),
                    ys.len()
                ));
            }
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                collect(&format!("{path}[{i}]"), x, y, out)?;
            }
            Ok(())
        }
        // Non-numeric scalars (bench name, smoke flag, …) only need to
        // be the same shape, not the same value.
        (Json::Str(_) | Json::Bool(_) | Json::Null, Json::Str(_) | Json::Bool(_) | Json::Null) => {
            Ok(())
        }
        _ => Err(format!("{path} changed type between the files")),
    }
}

/// One-sided p-value that the new Poisson rate is lower, conditional on
/// the combined count: under H0 (equal rates over equal exposure) the
/// new run's share of `x_old + x_new` requests is Binomial(n, 1/2).
///
/// The files record rates, not raw counts; over the benchmarks' fixed
/// request counts the rate is proportional to the count per unit time,
/// so the rates themselves (scaled to whole requests) are the natural
/// event counts for the test.
fn rate_drop_p_value(old_rps: f64, new_rps: f64) -> f64 {
    let x_old = old_rps.round().max(0.0);
    let x_new = new_rps.round().max(0.0);
    let n = x_old + x_new;
    if n <= 0.0 {
        return 1.0;
    }
    let mean = n * 0.5;
    let sd = (n * 0.25).sqrt();
    // Continuity-corrected left tail for the new run's share.
    normal_cdf((x_new + 0.5 - mean) / sd)
}

fn verdict(m: &Metric) -> (&'static str, bool) {
    let rel = if m.old == 0.0 { 0.0 } else { (m.new - m.old) / m.old };
    match m.kind {
        Kind::Throughput => {
            if rel >= -THROUGHPUT_DROP_FLOOR {
                ("ok", false)
            } else if rate_drop_p_value(m.old, m.new) < ALPHA {
                ("REGRESSION", true)
            } else {
                ("ok (not significant)", false)
            }
        }
        Kind::Latency => {
            if rel > LATENCY_RISE_FLOOR {
                ("REGRESSION", true)
            } else {
                ("ok", false)
            }
        }
        Kind::Info => ("info", false),
    }
}

fn run(baseline_path: &str, new_path: &str) -> Result<bool, String> {
    let read = |p: &str| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))
    };
    let baseline = Json::parse(&read(baseline_path)?).map_err(|e| format!("{baseline_path}: {e}"))?;
    let fresh = Json::parse(&read(new_path)?).map_err(|e| format!("{new_path}: {e}"))?;
    let mut metrics = Vec::new();
    collect("", &baseline, &fresh, &mut metrics)?;
    if metrics.is_empty() {
        return Err("no numeric metrics in common".to_owned());
    }

    println!("{:<44} {:>12} {:>12} {:>8}  verdict", "metric", "baseline", "new", "delta");
    let mut regressed = false;
    for m in &metrics {
        let (label, bad) = verdict(m);
        let rel = if m.old == 0.0 { 0.0 } else { (m.new - m.old) / m.old * 100.0 };
        println!(
            "{:<44} {:>12.3} {:>12.3} {:>+7.1}%  {label}",
            m.path, m.old, m.new, rel
        );
        regressed |= bad;
    }
    println!();
    println!(
        "{}: {} metric(s) compared ({} baseline, {} new)",
        if regressed { "REGRESSED" } else { "OK" },
        metrics.len(),
        baseline_path,
        new_path
    );
    Ok(regressed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline, fresh] = args.as_slice() else {
        eprintln!("usage: compare <BASELINE.json> <NEW.json>");
        return ExitCode::from(2);
    };
    match run(baseline, fresh) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(e) => {
            eprintln!("compare: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(a: &str, b: &str) -> Result<Vec<Metric>, String> {
        let mut out = Vec::new();
        collect("", &Json::parse(a).unwrap(), &Json::parse(b).unwrap(), &mut out)?;
        Ok(out)
    }

    #[test]
    fn classifies_by_leaf_name() {
        assert_eq!(classify("topologies[0].throughput_rps"), Kind::Throughput);
        assert_eq!(classify("latency_ms.p95"), Kind::Latency);
        assert_eq!(classify("drill_ms"), Kind::Latency);
        assert_eq!(classify("bytes_total"), Kind::Info);
    }

    #[test]
    fn equal_runs_pass() {
        let a = r#"{"bench":"x","requests":100,"topologies":[{"throughput_rps":1000.0,"latency_ms":{"p95":1.0}}]}"#;
        let ms = metrics(a, a).unwrap();
        assert!(ms.iter().all(|m| !verdict(m).1));
    }

    #[test]
    fn big_significant_drop_regresses_but_noise_does_not() {
        let drop = Metric {
            path: "throughput_rps".into(),
            kind: Kind::Throughput,
            old: 2000.0,
            new: 1500.0,
        };
        assert!(verdict(&drop).1, "25% drop over thousands of requests");
        let noise = Metric {
            path: "throughput_rps".into(),
            kind: Kind::Throughput,
            old: 20.0,
            new: 17.0,
        };
        assert!(
            !verdict(&noise).1,
            "a 15% drop over tiny counts is not significant"
        );
        let gain = Metric {
            path: "throughput_rps".into(),
            kind: Kind::Throughput,
            old: 1500.0,
            new: 2000.0,
        };
        assert!(!verdict(&gain).1);
    }

    #[test]
    fn latency_tail_gate_is_practical() {
        let worse = Metric {
            path: "latency_ms.p99".into(),
            kind: Kind::Latency,
            old: 1.0,
            new: 1.2,
        };
        assert!(verdict(&worse).1);
        let fine = Metric {
            path: "latency_ms.p99".into(),
            kind: Kind::Latency,
            old: 1.0,
            new: 1.05,
        };
        assert!(!verdict(&fine).1);
    }

    #[test]
    fn structural_mismatch_is_an_error() {
        let a = r#"{"requests":100}"#;
        let b = r#"{"requests":100,"extra":1}"#;
        assert!(metrics(a, b).is_err());
        let c = r#"{"requests":"hundred"}"#;
        assert!(metrics(a, c).is_err());
    }
}
