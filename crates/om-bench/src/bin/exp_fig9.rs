//! Experiment F9 — Fig. 9: comparison computation time vs #attributes.
//!
//! Paper claims: (a) time grows *linearly* from 40 to 160 attributes;
//! (b) even at 160 attributes the comparison stays interactive (0.8 s on
//! 2006 hardware); (c) "since the comparison uses only rule cubes, the
//! computation time is not affected by the original data set size".
//!
//! Run with: `cargo run --release -p om-bench --bin exp_fig9`
//! (`OM_FULL=1` additionally verifies claim (c) against a 10× dataset.)

use om_bench::{build_store, linear_fit_r2, scaleup_dataset, scaleup_spec, time_median};
use om_compare::Comparator;

fn main() {
    println!("Fig. 9 — comparison time vs number of attributes");
    println!("{:>8} {:>14} {:>16}", "attrs", "time (ms)", "paper (s, 2006)");
    let paper_times = [0.2, 0.4, 0.6, 0.8]; // read off the paper's linear plot
    let attrs = om_bench::attr_sweep();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (&n_attrs, paper) in attrs.iter().zip(paper_times) {
        let ds = scaleup_dataset(n_attrs, 20_000, 9);
        let store = build_store(&ds, 0);
        let spec = scaleup_spec(&ds);
        let comparator = Comparator::new(&store);
        let (_, t) = time_median(5, || comparator.compare(&spec).expect("runs"));
        let ms = t.as_secs_f64() * 1e3;
        println!("{n_attrs:>8} {ms:>14.3} {paper:>16.1}");
        xs.push(n_attrs as f64);
        ys.push(ms);
    }
    let (slope, r2) = linear_fit_r2(&xs, &ys);
    println!("\nlinear fit: slope = {slope:.4} ms/attr, r² = {r2:.4}");
    let interactive = ys.last().copied().unwrap_or(f64::MAX) < 800.0;
    println!(
        "shape check: linear growth {} (r² ≥ 0.90), interactive at 160 attrs {} (< 0.8 s)",
        if r2 >= 0.90 { "PASSED" } else { "FAILED" },
        if interactive { "PASSED" } else { "FAILED" }
    );

    // Claim (c): comparison time independent of dataset size.
    let small = scaleup_dataset(40, 20_000, 9);
    let big = scaleup_dataset(40, 200_000, 9);
    let store_small = build_store(&small, 0);
    let store_big = build_store(&big, 0);
    let spec_s = scaleup_spec(&small);
    let spec_b = scaleup_spec(&big);
    let (_, t_small) = time_median(7, || {
        Comparator::new(&store_small).compare(&spec_s).expect("runs")
    });
    let (_, t_big) = time_median(7, || {
        Comparator::new(&store_big).compare(&spec_b).expect("runs")
    });
    let ratio = t_big.as_secs_f64() / t_small.as_secs_f64().max(1e-12);
    println!(
        "\ndata-size independence: 20k records {:.3} ms vs 200k records {:.3} ms (ratio {:.2}; paper: unaffected)",
        t_small.as_secs_f64() * 1e3,
        t_big.as_secs_f64() * 1e3,
        ratio
    );
    println!(
        "shape check: independence {}",
        if ratio < 2.5 { "PASSED" } else { "FAILED" }
    );
}
