//! Experiment F10 — Fig. 10: rule-cube generation time vs #attributes.
//!
//! Paper: 2 M records, attributes swept 40→160, "a nonlinear growth,
//! which is expected" — all n·(n−1)/2 pair cubes are built, so the cost
//! is quadratic in the attribute count. Generation is the offline step
//! ("done off-line, e.g., in the evening").
//!
//! Run with: `cargo run --release -p om-bench --bin exp_fig10`
//! (`OM_FULL=1` for the paper's 2 M records.)

use om_bench::{build_store, fig10_records, linear_fit_r2, scaleup_dataset, time_once};

fn main() {
    let n_records = fig10_records();
    println!("Fig. 10 — cube generation time vs number of attributes ({n_records} records)");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>16}",
        "attrs", "pair cubes", "serial (s)", "parallel (s)", "paper (min, 2006)"
    );
    let paper_minutes = [3.0, 13.0, 28.0, 50.0]; // read off the paper's plot
    let attrs = om_bench::attr_sweep();
    let mut xs = Vec::new();
    let mut serial_times = Vec::new();
    for (&n_attrs, paper) in attrs.iter().zip(paper_minutes) {
        let ds = scaleup_dataset(n_attrs, n_records, 10);
        let (store, t_serial) = time_once(|| build_store(&ds, 1));
        let n_pairs = store.n_pair_cubes();
        drop(store);
        let (_, t_parallel) = time_once(|| build_store(&ds, 0));
        println!(
            "{n_attrs:>8} {n_pairs:>12} {:>14.3} {:>14.3} {paper:>16.1}",
            t_serial.as_secs_f64(),
            t_parallel.as_secs_f64()
        );
        xs.push(n_attrs as f64);
        serial_times.push(t_serial.as_secs_f64());
    }

    // Shape check 1 — the quadratic model fits: total time must track the
    // pair-cube count (time ratio ≈ pair ratio across the sweep), since
    // each pair cube costs one pass over the records.
    let pairs: Vec<f64> = xs.iter().map(|&a| a * (a - 1.0) / 2.0).collect();
    let (_, r2_pairs) = linear_fit_r2(&pairs, &serial_times);
    let time_ratio = serial_times.last().unwrap() / serial_times.first().unwrap();
    let pair_ratio = pairs.last().unwrap() / pairs.first().unwrap();
    let tracks_pairs = (0.5..=2.0).contains(&(time_ratio / pair_ratio));
    // Shape check 2 — nonlinearity in attributes: 4× the attributes must
    // cost far more than 4× the time (the paper's "nonlinear growth").
    let attr_ratio = xs.last().unwrap() / xs.first().unwrap();
    let superlinear = time_ratio > 1.5 * attr_ratio;
    println!(
        "\ntime 40→160 grew {time_ratio:.1}x; pair cubes grew {pair_ratio:.1}x; linear fit vs pairs r² = {r2_pairs:.3}"
    );
    println!(
        "shape check: time tracks the quadratic pair count {} (ratio within 2x) ; superlinear growth in attrs {}",
        if tracks_pairs { "PASSED" } else { "FAILED" },
        if superlinear { "PASSED" } else { "FAILED" }
    );
}
