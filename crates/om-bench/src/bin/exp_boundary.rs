//! Experiment F2/F4 — the boundary situations of Figs. 2 and 4.
//!
//! Situation 1 (Fig. 2(A)/4(A)): ph2 is exactly twice as bad as ph1 for
//! every Time-of-Call value — completely expected, so M must be 0 (the
//! proven minimum). Situation 2 (Fig. 4(B)): all of ph2's drops occur in
//! one value at 100% confidence where ph1 is at its lowest — M must hit
//! the proven maximum cf2·|D2| (normalized score 1).
//!
//! Run with: `cargo run --release -p om-bench --bin exp_boundary`

use om_compare::{score_attribute, IntervalMethod, SubPopCounts};

fn labels() -> Vec<String> {
    vec!["morning".into(), "afternoon".into(), "evening".into()]
}

fn main() {
    println!("Figs. 2 & 4 — boundary situations of the interestingness measure\n");

    // Situation 1: proportional (2% vs 4% everywhere).
    let d1 = SubPopCounts::new(vec![10_000; 3], vec![200; 3]);
    let d2 = SubPopCounts::new(vec![10_000; 3], vec![400; 3]);
    let s1 = score_attribute(1, "TimeOfCall", &labels(), &d1, &d2, 0.02, 0.04, IntervalMethod::None);
    println!("Situation 1 (Fig. 2(A)/4(A), proportional — 'completely uninteresting'):");
    println!("  M = {:.6}   normalized = {:.6}   (paper: minimum, exactly 0)", s1.score, s1.normalized);
    assert_eq!(s1.score, 0.0);

    // Situation 2: concentrated maximum.
    // D2: 30k records, 1 200 drops all in 'evening' (100% drop rate there);
    // D1: evening is its lowest-rate value (0 drops).
    let d1 = SubPopCounts::new(vec![10_000; 3], vec![350, 250, 0]);
    let d2 = SubPopCounts::new(vec![14_400, 14_400, 1_200], vec![0, 0, 1_200]);
    let cf1 = 600.0 / 30_000.0;
    let cf2 = 1_200.0 / 30_000.0;
    let s2 = score_attribute(1, "TimeOfCall", &labels(), &d1, &d2, cf1, cf2, IntervalMethod::None);
    println!("\nSituation 2 (Fig. 4(B), concentrated — the maximum):");
    println!(
        "  M = {:.2}   theoretical max cf2*|D2| = {:.2}   normalized = {:.4}",
        s2.score,
        cf2 * 30_000.0,
        s2.normalized
    );
    assert!((s2.normalized - 1.0).abs() < 1e-9);

    // The interesting-but-not-extreme situation of Fig. 2(B).
    let d1 = SubPopCounts::new(vec![10_000; 3], vec![200, 200, 200]);
    let d2 = SubPopCounts::new(vec![10_000; 3], vec![1_000, 200, 200]);
    let cf2b = 1_400.0 / 30_000.0;
    let s3 = score_attribute(1, "TimeOfCall", &labels(), &d1, &d2, 0.02, cf2b, IntervalMethod::None);
    println!("\nSituation Fig. 2(B) (morning isolated — 'very interesting'):");
    println!("  M = {:.2}   normalized = {:.4}", s3.score, s3.normalized);
    for c in &s3.contributions {
        println!(
            "    {:<10} cf1 = {:.3}%  cf2 = {:.3}%  F_k = {:+.4}  W_k = {:.1}",
            c.label,
            c.cf1.unwrap_or(0.0) * 100.0,
            c.cf2.unwrap_or(0.0) * 100.0,
            c.f,
            c.w
        );
    }
    assert!(s3.score > 0.0 && s3.normalized < 1.0);
    let top = s3.top_values();
    assert_eq!(top[0].label, "morning");

    println!("\nreproduction PASSED: minimum = 0, maximum = cf2*|D2|, Fig. 2(B) isolates 'morning'");
}
