//! Experiment CS — the Section V-B case study made quantitative.
//!
//! The paper's evaluation of the comparator is a qualitative case study
//! ("the top ranked attribute is shown in Fig. 7 … this piece of
//! information is valuable"). With synthetic data the cause is *known*,
//! so we can measure: across many independently seeded call logs with a
//! planted phone×time interaction, how often does each ranker put the
//! planted attribute first?
//!
//! Run with: `cargo run --release -p om-bench --bin exp_recovery`
//! (`OM_FULL=1` for more trials.)

use om_bench::full_scale;
use om_compare::baselines::{all_rankers, AttributeRanker, OmRanker};
use om_compare::{CompareConfig, ComparisonSpec, IntervalMethod};
use om_cube::{CubeStore, StoreBuildOptions};
use om_synth::{generate_call_log, CallLogConfig, Effect};

fn scenario(seed: u64, n_records: usize) -> (om_data::Dataset, ComparisonSpec) {
    let ds = generate_call_log(&CallLogConfig {
        n_records,
        seed,
        effects: vec![
            Effect::value("PhoneModel", "ph2", "dropped", 0.35),
            Effect::interaction("PhoneModel", "ph2", "TimeOfCall", "morning", "dropped", 2.2),
            Effect::value("NetworkLoad", "high", "dropped", 0.8),
        ],
        ..CallLogConfig::default()
    });
    let s = ds.schema();
    let attr = s.attr_index("PhoneModel").unwrap();
    let spec = ComparisonSpec {
        attr,
        value_1: s.attribute(attr).domain().get("ph1").unwrap(),
        value_2: s.attribute(attr).domain().get("ph2").unwrap(),
        class: s.class().domain().get("dropped").unwrap(),
    };
    (ds, spec)
}

fn main() {
    let trials: u64 = if full_scale() { 50 } else { 20 };
    let n_records = 50_000;
    println!(
        "Case-study recovery: planted cause TimeOfCall (ph2 × morning), {trials} trials × {n_records} records"
    );

    // ranker name -> (top1 hits, sum of ranks)
    let mut rankers: Vec<Box<dyn AttributeRanker>> = all_rankers();
    let base = rankers.len();
    rankers.push(Box::new(OmRanker(CompareConfig {
        interval: IntervalMethod::None,
        ..CompareConfig::default()
    })));
    rankers.push(Box::new(OmRanker(CompareConfig {
        interval: IntervalMethod::Wilson(0.95),
        ..CompareConfig::default()
    })));
    let names: Vec<String> = rankers
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if i == base {
                format!("{} (no CI ablation)", r.name())
            } else if i == base + 1 {
                format!("{} (Wilson ablation)", r.name())
            } else {
                r.name().to_owned()
            }
        })
        .collect();
    let mut hits = vec![0u64; rankers.len()];
    let mut rank_sums = vec![0u64; rankers.len()];

    for trial in 0..trials {
        let (ds, spec) = scenario(5_000 + trial, n_records);
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).expect("builds");
        for (i, ranker) in rankers.iter().enumerate() {
            let ranking = ranker.rank(&store, &spec).expect("ranks");
            let rank = ranking
                .iter()
                .position(|r| r.attr_name == "TimeOfCall")
                .unwrap_or(ranking.len());
            if rank == 0 {
                hits[i] += 1;
            }
            rank_sums[i] += rank as u64;
        }
    }

    println!(
        "\n{:<28} {:>12} {:>12}",
        "ranker", "top-1 rate", "mean rank"
    );
    for (i, name) in names.iter().enumerate() {
        println!(
            "{:<28} {:>11.1}% {:>12.2}",
            name,
            hits[i] as f64 / trials as f64 * 100.0,
            rank_sums[i] as f64 / trials as f64 + 1.0
        );
    }

    let om_rate = hits[0] as f64 / trials as f64;
    println!(
        "\nshape check: the paper's measure recovers the planted cause {} (top-1 ≥ 90%)",
        if om_rate >= 0.9 { "PASSED" } else { "FAILED" }
    );

    confound_experiment(trials, n_records);
}

/// Second scenario: NO distinguishing cause — ph2 is uniformly worse
/// (main effect) and NetworkLoad=high hurts both phones equally (the
/// Fig. 2(A) situation). The correct answer is "nothing distinguishes the
/// phones": the paper's measure should stay near zero, while rankers that
/// ignore the baseline (info-gain within D2) or the expected ratio
/// (|Δconf|) still produce confident-looking winners.
fn confound_experiment(trials: u64, n_records: usize) {
    println!("\n--- confound scenario: common cause only, nothing distinguishes the phones ---");
    let rankers = all_rankers();
    let mut blamed = vec![0u64; rankers.len()];
    let mut om_norm_sum = 0.0;
    for trial in 0..trials {
        let ds = generate_call_log(&CallLogConfig {
            n_records,
            seed: 9_000 + trial,
            effects: vec![
                Effect::value("PhoneModel", "ph2", "dropped", 1.0),
                Effect::value("NetworkLoad", "high", "dropped", 1.5),
            ],
            ..CallLogConfig::default()
        });
        let s = ds.schema();
        let attr = s.attr_index("PhoneModel").unwrap();
        let spec = ComparisonSpec {
            attr,
            value_1: s.attribute(attr).domain().get("ph1").unwrap(),
            value_2: s.attribute(attr).domain().get("ph2").unwrap(),
            class: s.class().domain().get("dropped").unwrap(),
        };
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).expect("builds");
        for (i, ranker) in rankers.iter().enumerate() {
            let ranking = ranker.rank(&store, &spec).expect("ranks");
            if ranking
                .first()
                .is_some_and(|top| top.attr_name == "NetworkLoad" && top.score > 0.0)
            {
                blamed[i] += 1;
            }
        }
        // The OM result's top normalized score measures how loudly it
        // (wrongly) claims a distinguishing attribute exists.
        let result = om_compare::Comparator::new(&store).compare(&spec).expect("runs");
        om_norm_sum += result.top().map_or(0.0, |t| t.normalized);
    }
    println!(
        "{:<28} {:>34}",
        "ranker", "blames the common cause (top-1)"
    );
    for (i, ranker) in rankers.iter().enumerate() {
        println!(
            "{:<28} {:>33.1}%",
            ranker.name(),
            blamed[i] as f64 / trials as f64 * 100.0
        );
    }
    let om_mean_norm = om_norm_sum / trials as f64;
    println!(
        "\nOM measure mean top normalized score: {:.4} (≈ 0 ⇒ correctly reports 'expected situation')",
        om_mean_norm
    );
    println!(
        "shape check: OM stays quiet on the confound {} (mean normalized < 0.05)",
        if om_mean_norm < 0.05 { "PASSED" } else { "FAILED" }
    );
}
