//! Experiment T1 — Table I of the paper: z values per confidence level.
//!
//! The paper hard-codes the table; this reproduction derives the values
//! from a from-scratch inverse normal CDF and checks them against the
//! paper's three-decimal figures.
//!
//! Run with: `cargo run --release -p om-bench --bin exp_table1`

use om_stats::z_for_confidence;

fn main() {
    println!("Table I — z values (paper vs computed)");
    println!("{:<18} {:>10} {:>12} {:>10}", "confidence level", "paper z", "computed z", "|diff|");
    let paper = [(0.90, 1.645), (0.95, 1.96), (0.99, 2.576)];
    let mut ok = true;
    for (level, expected) in paper {
        let z = z_for_confidence(level);
        let diff = (z - expected).abs();
        println!("{level:<18} {expected:>10.3} {z:>12.6} {diff:>10.2e}");
        // The paper quotes 1.96 (two decimals) and 1.645/2.576 (three).
        if diff > 5e-3 {
            ok = false;
        }
    }
    println!();
    println!(
        "reproduction {}: all computed z values match Table I to the paper's precision",
        if ok { "PASSED" } else { "FAILED" }
    );
    assert!(ok);
}
