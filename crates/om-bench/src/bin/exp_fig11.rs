//! Experiment F11 — Fig. 11: rule-cube generation time vs #records.
//!
//! Paper: 160 attributes, records swept 2 M → 8 M "by duplicating the
//! data set", growth is linear.
//!
//! Run with: `cargo run --release -p om-bench --bin exp_fig11`
//! (`OM_FULL=1` for the paper's 160 attributes and 2–8 M records;
//! the default uses 40 attributes and 100–400 k records.)

use om_bench::{build_store, fig11_base_records, full_scale, linear_fit_r2, scaleup_dataset, time_once};
use om_data::sample::duplicate;

fn main() {
    let n_attrs = if full_scale() { 160 } else { 40 };
    let base_records = fig11_base_records();
    println!(
        "Fig. 11 — cube generation time vs number of records ({n_attrs} attributes, duplication of a {base_records}-record base)"
    );
    println!(
        "{:>12} {:>14} {:>16}",
        "records", "time (s)", "paper (min, 2006)"
    );
    let paper_minutes = [50.0, 100.0, 150.0, 200.0]; // linear in the paper's plot
    let base = scaleup_dataset(n_attrs, base_records, 11);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (factor, paper) in (1usize..=4).zip(paper_minutes) {
        let ds = duplicate(&base, factor).expect("duplication");
        let (_, t) = time_once(|| build_store(&ds, 0));
        println!(
            "{:>12} {:>14.3} {paper:>16.1}",
            ds.n_rows(),
            t.as_secs_f64()
        );
        xs.push(ds.n_rows() as f64);
        ys.push(t.as_secs_f64());
    }
    let (slope, r2) = linear_fit_r2(&xs, &ys);
    println!(
        "\nlinear fit: slope = {:.3} µs/record, r² = {r2:.4}",
        slope * 1e6
    );
    println!(
        "shape check: linear growth in records {}",
        if r2 >= 0.95 { "PASSED" } else { "FAILED" }
    );
}
