//! Ablation — the property-attribute threshold τ (Section IV-C).
//!
//! The paper sets τ = 0.9 and remarks "this parameter is not crucial as
//! property attributes are not physically removed". This experiment
//! sweeps τ and reports how the ranked/property split moves: the planted
//! property attribute (PhoneHardwareVersion, fully disjoint, ratio 1.0)
//! is caught at every τ ≤ 1.0, and ordinary attributes (ratio 0) are
//! never caught — confirming the insensitivity claim.
//!
//! Run with: `cargo run --release -p om-bench --bin exp_property_tau`

use om_compare::{CompareConfig, Comparator, ComparisonSpec};
use om_cube::{CubeStore, StoreBuildOptions};
use om_synth::paper_scenario;

fn main() {
    let (ds, truth) = paper_scenario(60_000, 77);
    let s = ds.schema();
    let attr = s.attr_index(&truth.compare_attr).unwrap();
    let spec = ComparisonSpec {
        attr,
        value_1: s.attribute(attr).domain().get("ph1").unwrap(),
        value_2: s.attribute(attr).domain().get("ph2").unwrap(),
        class: s.class().domain().get("dropped").unwrap(),
    };
    let store = CubeStore::build(&ds, &StoreBuildOptions::default()).expect("builds");

    println!("Property-attribute threshold sweep (planted: PhoneHardwareVersion, ratio 1.0)");
    println!(
        "{:>6} {:>10} {:>10} {:>28} {:>12}",
        "tau", "ranked", "property", "hardware version caught", "top attr"
    );
    let mut always_caught = true;
    let mut top_stable = true;
    for tau in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0] {
        let comparator = Comparator::with_config(
            &store,
            CompareConfig {
                property_tau: tau,
                ..CompareConfig::default()
            },
        );
        let result = comparator.compare(&spec).expect("runs");
        let caught = result
            .property_attrs
            .iter()
            .any(|p| p.attr_name == "PhoneHardwareVersion");
        let top = result
            .top()
            .map(|t| t.attr_name.clone())
            .unwrap_or_else(|| "-".into());
        println!(
            "{tau:>6.2} {:>10} {:>10} {:>28} {:>12}",
            result.ranked.len(),
            result.property_attrs.len(),
            caught,
            top
        );
        always_caught &= caught;
        top_stable &= top == truth.expected_top_attr;
    }
    println!(
        "\nshape check: property attribute caught at every tau {} ; top attribute stable {}",
        if always_caught { "PASSED" } else { "FAILED" },
        if top_stable { "PASSED" } else { "FAILED" }
    );
}
