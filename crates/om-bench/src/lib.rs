//! Shared infrastructure for the benchmark harness and the experiment
//! binaries that regenerate the paper's tables and figures.
//!
//! The paper's performance evaluation (Section V-C) ran on a 2006-era
//! desktop against a 2-million-record, 160-attribute Motorola extract.
//! Experiments here default to a scaled-down size that finishes in CI and
//! accept `OM_FULL=1` to run at the paper's sizes; the claims under test
//! are *shape* claims (linear vs nonlinear growth, interactivity), which
//! hold at both scales.

use std::time::{Duration, Instant};

use om_compare::ComparisonSpec;
use om_cube::{CubeStore, StoreBuildOptions};
use om_data::Dataset;
use om_synth::{generate_scaleup, ScaleUpConfig};

/// Whether the paper-scale (`OM_FULL=1`) configuration was requested.
pub fn full_scale() -> bool {
    std::env::var("OM_FULL").is_ok_and(|v| v == "1")
}

/// Records used for the Fig. 10 sweep (2 M at paper scale).
pub fn fig10_records() -> usize {
    if full_scale() {
        2_000_000
    } else {
        100_000
    }
}

/// Base records for the Fig. 11 sweep (duplicated 1–4×; 2 M at paper
/// scale).
pub fn fig11_base_records() -> usize {
    if full_scale() {
        2_000_000
    } else {
        100_000
    }
}

/// The attribute counts of Figs. 9 and 10 (40/80/120/160 in the paper;
/// the sweep itself is cheap enough to run at paper scale always).
pub fn attr_sweep() -> Vec<usize> {
    vec![40, 80, 120, 160]
}

/// A scale-up dataset shaped like the paper's extract: skewed 3-class
/// categorical data, `n_attrs` attributes with 3–8 values each.
pub fn scaleup_dataset(n_attrs: usize, n_records: usize, seed: u64) -> Dataset {
    generate_scaleup(&ScaleUpConfig {
        n_attrs,
        n_records,
        seed,
        ..ScaleUpConfig::default()
    })
}

/// Build the full cube store for a dataset.
pub fn build_store(ds: &Dataset, n_threads: usize) -> CubeStore {
    CubeStore::build(
        ds,
        &StoreBuildOptions {
            n_threads,
            ..Default::default()
        },
    )
    .expect("store builds")
}

/// A canonical comparison spec on a scale-up dataset: attribute 0's first
/// two values against minority class 1.
pub fn scaleup_spec(ds: &Dataset) -> ComparisonSpec {
    debug_assert!(ds.schema().attribute(0).cardinality() >= 2);
    debug_assert!(ds.schema().n_classes() >= 2);
    ComparisonSpec {
        attr: 0,
        value_1: 0,
        value_2: 1,
        class: 1,
    }
}

/// Wall-clock one invocation of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Median wall-clock over `n` invocations (result of the last kept).
pub fn time_median<T>(n: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(n >= 1);
    let mut times = Vec::with_capacity(n);
    let mut last = None;
    for _ in 0..n {
        let (out, d) = time_once(&mut f);
        times.push(d);
        last = Some(out);
    }
    times.sort();
    (last.expect("n >= 1"), times[times.len() / 2])
}

/// Reference counting baseline for the cube-representation ablation: count
/// (value_a, value_b, class) triples into a `HashMap` instead of a dense
/// tensor. Returns the map's length so the work cannot be optimized away.
pub fn hashmap_cube_count(ds: &Dataset, a: usize, b: usize) -> usize {
    use std::collections::HashMap;
    let col_a = ds.column(a).as_categorical().expect("categorical");
    let col_b = ds.column(b).as_categorical().expect("categorical");
    let classes = ds.class_values();
    let mut map: HashMap<(u32, u32, u32), u64> = HashMap::new();
    for r in 0..ds.n_rows() {
        *map.entry((col_a[r], col_b[r], classes[r])).or_insert(0) += 1;
    }
    map.len()
}

/// Least-squares goodness of fit of `y = a + b·x` over the given points,
/// returned as (slope, r²). Used by experiment binaries to check the
/// paper's linear-growth claims.
pub fn linear_fit_r2(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let fit = om_stats::linear_regression(xs, ys);
    (fit.slope, fit.r_squared())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaleup_dataset_shape() {
        let ds = scaleup_dataset(10, 1_000, 1);
        assert_eq!(ds.schema().n_attributes(), 11);
        assert_eq!(ds.n_rows(), 1_000);
    }

    #[test]
    fn spec_is_valid_on_scaleup_data() {
        let ds = scaleup_dataset(5, 5_000, 2);
        let store = build_store(&ds, 1);
        let spec = scaleup_spec(&ds);
        let result = om_compare::Comparator::new(&store).compare(&spec);
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn hashmap_baseline_counts_everything() {
        let ds = scaleup_dataset(3, 2_000, 3);
        let n = hashmap_cube_count(&ds, 0, 1);
        // Non-trivial but bounded by the cross product.
        let bound = ds.schema().attribute(0).cardinality()
            * ds.schema().attribute(1).cardinality()
            * ds.schema().n_classes();
        assert!(n > 0 && n <= bound);
    }

    #[test]
    fn timing_helpers_work() {
        let (v, d) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        let (v, _) = time_median(3, || 7);
        assert_eq!(v, 7);
    }

    #[test]
    fn linear_fit_detects_linearity() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        let (slope, r2) = linear_fit_r2(&xs, &ys);
        assert!((slope - 10.0).abs() < 1e-9);
        assert!(r2 > 0.999);
    }
}
