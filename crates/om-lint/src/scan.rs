//! Lightweight structure recovery over the token stream: `#[cfg(test)]`
//! regions, function spans, `#[deprecated]` items, and `om-lint`
//! suppression comments. No AST — brace matching and local patterns
//! only, which is robust to everything the checks need.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};

/// A function item: name plus the token range and line range of its body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Token indices (into the *code* token vec) of the body, braces included.
    pub body: (usize, usize),
    pub start_line: u32,
}

/// One suppression comment: `// om-lint: allow(check[, check]) — reason`.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub checks: Vec<String>,
    pub reason: String,
    /// Line of the comment itself.
    pub comment_line: u32,
    /// First code line at or after the comment — the line it silences.
    pub applies_line: u32,
}

/// Everything the checks want to know about one file beyond raw tokens.
#[derive(Debug, Default)]
pub struct ScanInfo {
    /// Code tokens only (trivia stripped); checks index into this.
    pub code: Vec<Tok>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// All function items, outermost first.
    pub fns: Vec<FnSpan>,
    /// Function names defined in this file carrying `#[deprecated]`.
    pub deprecated_fns: Vec<(String, u32)>,
    /// Function names defined in this file *without* `#[deprecated]`.
    pub plain_fns: Vec<String>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// (line, text) of every comment token — SAFETY markers live here.
    pub comment_lines: Vec<(u32, String)>,
    /// check name -> suppressed lines.
    suppressed_lines: BTreeMap<String, Vec<u32>>,
}

impl ScanInfo {
    /// Is `line` inside a `#[cfg(test)]` item?
    #[must_use]
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// Is a finding of `check` at `line` silenced by a suppression?
    #[must_use]
    pub fn is_suppressed(&self, check: &str, line: u32) -> bool {
        self.suppressed_lines
            .get(check)
            .is_some_and(|lines| lines.contains(&line))
    }
}

/// Build [`ScanInfo`] from the full (trivia-included) token stream.
#[must_use]
pub fn scan(all_toks: &[Tok]) -> ScanInfo {
    let mut info = ScanInfo {
        code: all_toks.iter().filter(|t| !t.is_trivia()).cloned().collect(),
        comment_lines: all_toks
            .iter()
            .filter(|t| t.is_trivia())
            .map(|t| (t.line, t.text.clone()))
            .collect(),
        ..ScanInfo::default()
    };
    find_test_regions(&mut info);
    find_fns(&mut info);
    find_suppressions(all_toks, &mut info);
    info
}

/// Walk forward from `start` (an index into `code` pointing at `{`) to
/// its matching close brace; returns the index of the closing token.
fn match_braces(code: &[Tok], start: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in code.iter().enumerate().skip(start) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Index of the first `{` or terminating `;` at attribute depth zero,
/// starting from `from`. Skips `#[...]` attribute groups so brackets in
/// attribute arguments never look like item structure.
fn find_body_open(code: &[Tok], from: usize) -> Option<(usize, bool)> {
    let mut i = from;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('#') && code.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let mut depth = 0i64;
            i += 1;
            while i < code.len() {
                if code[i].is_punct('[') {
                    depth += 1;
                } else if code[i].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
        } else if t.is_punct('{') {
            return Some((i, true));
        } else if t.is_punct(';') {
            return Some((i, false));
        }
        i += 1;
    }
    None
}

/// Does the attribute group starting at `#` (index `hash`) mention
/// `test` inside a `cfg(...)`? Matches `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]` and friends.
fn is_cfg_test_attr(code: &[Tok], hash: usize) -> Option<usize> {
    if !code.get(hash)?.is_punct('#') || !code.get(hash + 1)?.is_punct('[') {
        return None;
    }
    let mut depth = 0i64;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut i = hash + 1;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (saw_cfg && saw_test).then_some(i);
            }
        } else if t.is_ident("cfg") {
            saw_cfg = true;
        } else if t.is_ident("test") && saw_cfg {
            saw_test = true;
        }
        i += 1;
    }
    None
}

fn find_test_regions(info: &mut ScanInfo) {
    let code = &info.code;
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if let Some(close) = is_cfg_test_attr(code, i) {
            // The attribute gates the next item; find its body.
            if let Some((open, is_brace)) = find_body_open(code, close + 1) {
                let end = if is_brace {
                    match_braces(code, open)
                } else {
                    open
                };
                regions.push((code[i].line, code[end].line));
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    info.test_regions = regions;
}

fn find_fns(info: &mut ScanInfo) {
    let code = &info.code;
    let mut fns = Vec::new();
    let mut deprecated = Vec::new();
    let mut plain = Vec::new();
    let mut pending_deprecated = false;
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('#') && code.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            // Attribute group: note `deprecated`, then skip it whole.
            let mut depth = 0i64;
            let mut j = i + 1;
            while j < code.len() {
                if code[j].is_punct('[') {
                    depth += 1;
                } else if code[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1 && code[j].is_ident("deprecated") {
                    pending_deprecated = true;
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "fn" => {
                    let name = code
                        .get(i + 1)
                        .filter(|n| n.kind == TokKind::Ident)
                        .map(|n| n.text.clone());
                    if let Some(name) = name {
                        if pending_deprecated {
                            deprecated.push((name.clone(), t.line));
                        } else {
                            plain.push(name.clone());
                        }
                        if let Some((open, true)) = find_body_open(code, i + 2) {
                            let close = match_braces(code, open);
                            fns.push(FnSpan {
                                name,
                                body: (open, close),
                                start_line: t.line,
                            });
                        }
                    }
                    pending_deprecated = false;
                }
                // A non-fn item consumes any pending #[deprecated].
                "struct" | "enum" | "trait" | "mod" | "const" | "static" | "type"
                | "macro_rules" | "use" => {
                    pending_deprecated = false;
                }
                _ => {}
            }
        }
        i += 1;
    }
    info.fns = fns;
    info.deprecated_fns = deprecated;
    info.plain_fns = plain;
}

/// Parse `om-lint: allow(...)` comments out of the trivia stream and map
/// each to the first code line at or after it.
fn find_suppressions(all_toks: &[Tok], info: &mut ScanInfo) {
    let code_lines: Vec<u32> = info.code.iter().map(|t| t.line).collect();
    for t in all_toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Doc comments never suppress — they describe the allow syntax
        // without invoking it.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(rest) = t.text.split("om-lint:").nth(1) else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            continue;
        };
        let args = args.trim_start();
        let Some(open) = args.strip_prefix('(') else {
            continue;
        };
        let Some(close_at) = open.find(')') else {
            continue;
        };
        let checks: Vec<String> = open[..close_at]
            .split(',')
            .map(|c| c.trim().to_owned())
            .filter(|c| !c.is_empty())
            .collect();
        // Everything after the closing paren, minus dash/colon
        // separators, is the mandatory reason.
        let reason = open[close_at + 1..]
            .trim_start_matches([' ', '\t'])
            .trim_start_matches(['—', '–', '-', ':'])
            .trim()
            .to_owned();
        let applies_line = code_lines
            .iter()
            .copied()
            .find(|&l| l >= t.line)
            .unwrap_or(t.line);
        for check in &checks {
            info.suppressed_lines
                .entry(check.clone())
                .or_default()
                .push(applies_line);
        }
        info.suppressions.push(Suppression {
            checks,
            reason,
            comment_line: t.line,
            applies_line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        let info = scan(&lex(src));
        assert_eq!(info.test_regions.len(), 1);
        assert!(info.in_test_region(4));
        assert!(!info.in_test_region(1));
    }

    #[test]
    fn deprecated_fns_are_separated() {
        let src = "#[deprecated(note = \"x\")]\npub fn old() {}\npub fn new_one() {}\n\
                   #[deprecated]\nstruct S;\nfn after_struct() {}\n";
        let info = scan(&lex(src));
        assert_eq!(info.deprecated_fns.len(), 1);
        assert_eq!(info.deprecated_fns[0].0, "old");
        assert!(info.plain_fns.contains(&"new_one".to_owned()));
        assert!(info.plain_fns.contains(&"after_struct".to_owned()));
    }

    #[test]
    fn suppression_maps_to_next_code_line() {
        let src = "// om-lint: allow(panic-path) — startup only\nlet x = v.unwrap();\n\
                   let y = w.unwrap(); // om-lint: allow(panic-path) — trailing\n";
        let info = scan(&lex(src));
        assert!(info.is_suppressed("panic-path", 2));
        assert!(info.is_suppressed("panic-path", 3));
        assert!(!info.is_suppressed("panic-path", 1) || info.code.first().map(|t| t.line) == Some(1));
        assert_eq!(info.suppressions.len(), 2);
        assert_eq!(info.suppressions[0].reason, "startup only");
    }

    #[test]
    fn bare_suppression_has_empty_reason() {
        let src = "// om-lint: allow(unsafe-safety-comment)\nunsafe { () }\n";
        let info = scan(&lex(src));
        assert_eq!(info.suppressions.len(), 1);
        assert!(info.suppressions[0].reason.is_empty());
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() { inner(); }\nfn b() { let x = 1; }\n";
        let info = scan(&lex(src));
        assert_eq!(info.fns.len(), 2);
        assert_eq!(info.fns[0].name, "a");
        let (open, close) = info.fns[0].body;
        assert!(info.code[open].is_punct('{'));
        assert!(info.code[close].is_punct('}'));
    }
}
