//! Lightweight structure recovery over the token stream: `#[cfg(test)]`
//! regions, function spans, `#[deprecated]` items, and `om-lint`
//! suppression comments. No AST — brace matching and local patterns
//! only, which is robust to everything the checks need.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};

/// A function item: name plus the token range and line range of its body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Token indices (into the *code* token vec) of the body, braces included.
    pub body: (usize, usize),
    pub start_line: u32,
    /// Self type of the enclosing `impl`/`trait` block, if any: the last
    /// path segment (`EngineBackend` for `impl EngineOps for
    /// EngineBackend<'_>`). `None` for free functions.
    pub owner: Option<String>,
    /// Trait being implemented (or declared) by the enclosing block:
    /// `Some("EngineOps")` inside `impl EngineOps for X` and inside
    /// `trait EngineOps { ... }`; `None` for inherent impls and free fns.
    pub trait_impl: Option<String>,
}

/// What kind of loop a [`LoopSpan`] is — budget-coverage treats `for`
/// heads (evaluated once) differently from `while`/`loop` heads
/// (re-evaluated every iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    For,
    While,
    Loop,
}

/// One loop in a function body: the keyword token, the head range, and
/// the braced body.
#[derive(Debug, Clone)]
pub struct LoopSpan {
    pub kind: LoopKind,
    /// Line of the loop keyword.
    pub line: u32,
    /// Code-token index of the `for`/`while`/`loop` keyword.
    pub kw: usize,
    /// Token indices of the body, braces included.
    pub body: (usize, usize),
}

/// One suppression comment: `// om-lint: allow(check[, check]) — reason`.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub checks: Vec<String>,
    pub reason: String,
    /// Line of the comment itself.
    pub comment_line: u32,
    /// First code line at or after the comment — the line it silences.
    pub applies_line: u32,
}

/// Everything the checks want to know about one file beyond raw tokens.
#[derive(Debug, Default)]
pub struct ScanInfo {
    /// Code tokens only (trivia stripped); checks index into this.
    pub code: Vec<Tok>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// All function items, outermost first.
    pub fns: Vec<FnSpan>,
    /// Every `for`/`while`/`loop` in the file, in token order.
    pub loops: Vec<LoopSpan>,
    /// Function names defined in this file carrying `#[deprecated]`.
    pub deprecated_fns: Vec<(String, u32)>,
    /// Function names defined in this file *without* `#[deprecated]`.
    pub plain_fns: Vec<String>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// (line, text) of every comment token — SAFETY markers live here.
    pub comment_lines: Vec<(u32, String)>,
    /// check name -> suppressed lines.
    suppressed_lines: BTreeMap<String, Vec<u32>>,
}

impl ScanInfo {
    /// Is `line` inside a `#[cfg(test)]` item?
    #[must_use]
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// Is a finding of `check` at `line` silenced by a suppression?
    #[must_use]
    pub fn is_suppressed(&self, check: &str, line: u32) -> bool {
        self.suppressed_lines
            .get(check)
            .is_some_and(|lines| lines.contains(&line))
    }
}

/// Build [`ScanInfo`] from the full (trivia-included) token stream.
#[must_use]
pub fn scan(all_toks: &[Tok]) -> ScanInfo {
    let mut info = ScanInfo {
        code: all_toks.iter().filter(|t| !t.is_trivia()).cloned().collect(),
        comment_lines: all_toks
            .iter()
            .filter(|t| t.is_trivia())
            .map(|t| (t.line, t.text.clone()))
            .collect(),
        ..ScanInfo::default()
    };
    find_test_regions(&mut info);
    let owners = find_owner_regions(&info.code);
    find_fns(&mut info, &owners);
    find_loops(&mut info);
    find_suppressions(all_toks, &mut info);
    info
}

/// An `impl`/`trait` block: body token range plus the names that fns
/// inside it inherit.
struct OwnerRegion {
    body: (usize, usize),
    owner: String,
    trait_impl: Option<String>,
}

/// Skip a balanced `<...>` generic-argument group starting at `i`
/// (which must point at `<`); returns the index just past the matching
/// `>`. `->` inside the group is tolerated by clamping depth at zero.
fn skip_generics(code: &[Tok], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < code.len() {
        if code[j].is_punct('<') {
            depth += 1;
        } else if code[j].is_punct('>') {
            depth -= 1;
            if depth <= 0 {
                return j + 1;
            }
        } else if code[j].is_punct('{') || code[j].is_punct(';') {
            return j; // malformed header: bail before item structure
        }
        j += 1;
    }
    j
}

/// Parse a type path starting at `i`, returning the last path-segment
/// ident and the index just past the path (generics skipped). Leading
/// `&`, lifetimes, `dyn` and `mut` are skipped.
fn parse_type_path(code: &[Tok], mut i: usize) -> (Option<String>, usize) {
    while i < code.len()
        && (code[i].is_punct('&')
            || code[i].kind == TokKind::Lifetime
            || code[i].is_ident("dyn")
            || code[i].is_ident("mut"))
    {
        i += 1;
    }
    let mut last = None;
    while i < code.len() {
        if code[i].kind == TokKind::Ident && !code[i].is_ident("for") && !code[i].is_ident("where")
        {
            last = Some(code[i].text.clone());
            i += 1;
            if i < code.len() && code[i].is_punct('<') {
                i = skip_generics(code, i);
            }
            // `::` continues the path; anything else ends it.
            if i + 1 < code.len() && code[i].is_punct(':') && code[i + 1].is_punct(':') {
                i += 2;
                continue;
            }
        }
        break;
    }
    (last, i)
}

/// Find every `impl`/`trait` block and the owner names it confers.
fn find_owner_regions(code: &[Tok]) -> Vec<OwnerRegion> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        if t.is_ident("impl") {
            let mut j = i + 1;
            if j < code.len() && code[j].is_punct('<') {
                j = skip_generics(code, j);
            }
            let (first, after) = parse_type_path(code, j);
            let (owner, trait_impl) = if code.get(after).is_some_and(|t| t.is_ident("for")) {
                let (second, _) = parse_type_path(code, after + 1);
                (second, first)
            } else {
                (first, None)
            };
            if let Some(owner) = owner {
                if let Some((open, true)) = find_body_open(code, i + 1) {
                    let close = match_braces(code, open);
                    regions.push(OwnerRegion {
                        body: (open, close),
                        owner,
                        trait_impl,
                    });
                    i += 1;
                    continue;
                }
            }
        } else if t.is_ident("trait") && code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let name = code[i + 1].text.clone();
            if let Some((open, true)) = find_body_open(code, i + 2) {
                let close = match_braces(code, open);
                regions.push(OwnerRegion {
                    body: (open, close),
                    owner: name.clone(),
                    trait_impl: Some(name),
                });
                i += 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Record every `for`/`while`/`loop` with a braced body. `for` is only
/// a loop when an `in` appears between the keyword and the body at
/// paren/bracket depth zero — `impl X for Y` and `for<'a>` bounds have
/// none.
fn find_loops(info: &mut ScanInfo) {
    let code = &info.code;
    let mut loops = Vec::new();
    for (i, t) in code.iter().enumerate() {
        let kind = if t.is_ident("for") {
            LoopKind::For
        } else if t.is_ident("while") {
            LoopKind::While
        } else if t.is_ident("loop") {
            LoopKind::Loop
        } else {
            continue;
        };
        // Find the body `{` at paren/bracket depth 0. Angle brackets are
        // ignored (comparison operators make them unmatchable).
        let mut depth = 0i64;
        let mut open = None;
        let mut saw_in = false;
        for (j, u) in code.iter().enumerate().skip(i + 1) {
            if u.is_punct('(') || u.is_punct('[') {
                depth += 1;
            } else if u.is_punct(')') || u.is_punct(']') {
                depth -= 1;
            } else if depth == 0 {
                if u.is_punct('{') {
                    open = Some(j);
                    break;
                }
                if u.is_punct(';') || u.is_punct('}') {
                    break; // not a loop head after all
                }
                if u.is_ident("in") {
                    saw_in = true;
                }
            }
        }
        let Some(open) = open else { continue };
        if kind == LoopKind::For && !saw_in {
            continue;
        }
        let close = match_braces(code, open);
        loops.push(LoopSpan {
            kind,
            line: t.line,
            kw: i,
            body: (open, close),
        });
    }
    info.loops = loops;
}

/// Walk forward from `start` (an index into `code` pointing at `{`) to
/// its matching close brace; returns the index of the closing token.
pub(crate) fn match_braces(code: &[Tok], start: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in code.iter().enumerate().skip(start) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Index of the first `{` or terminating `;` at attribute depth zero,
/// starting from `from`. Skips `#[...]` attribute groups so brackets in
/// attribute arguments never look like item structure.
fn find_body_open(code: &[Tok], from: usize) -> Option<(usize, bool)> {
    let mut i = from;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('#') && code.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            let mut depth = 0i64;
            i += 1;
            while i < code.len() {
                if code[i].is_punct('[') {
                    depth += 1;
                } else if code[i].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
        } else if t.is_punct('{') {
            return Some((i, true));
        } else if t.is_punct(';') {
            return Some((i, false));
        }
        i += 1;
    }
    None
}

/// Does the attribute group starting at `#` (index `hash`) mention
/// `test` inside a `cfg(...)`? Matches `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]` and friends.
fn is_cfg_test_attr(code: &[Tok], hash: usize) -> Option<usize> {
    if !code.get(hash)?.is_punct('#') || !code.get(hash + 1)?.is_punct('[') {
        return None;
    }
    let mut depth = 0i64;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut i = hash + 1;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (saw_cfg && saw_test).then_some(i);
            }
        } else if t.is_ident("cfg") {
            saw_cfg = true;
        } else if t.is_ident("test") && saw_cfg {
            saw_test = true;
        }
        i += 1;
    }
    None
}

fn find_test_regions(info: &mut ScanInfo) {
    let code = &info.code;
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if let Some(close) = is_cfg_test_attr(code, i) {
            // The attribute gates the next item; find its body.
            if let Some((open, is_brace)) = find_body_open(code, close + 1) {
                let end = if is_brace {
                    match_braces(code, open)
                } else {
                    open
                };
                regions.push((code[i].line, code[end].line));
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    info.test_regions = regions;
}

fn find_fns(info: &mut ScanInfo, owners: &[OwnerRegion]) {
    let code = &info.code;
    let mut fns = Vec::new();
    let mut deprecated = Vec::new();
    let mut plain = Vec::new();
    let mut pending_deprecated = false;
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('#') && code.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            // Attribute group: note `deprecated`, then skip it whole.
            let mut depth = 0i64;
            let mut j = i + 1;
            while j < code.len() {
                if code[j].is_punct('[') {
                    depth += 1;
                } else if code[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1 && code[j].is_ident("deprecated") {
                    pending_deprecated = true;
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "fn" => {
                    let name = code
                        .get(i + 1)
                        .filter(|n| n.kind == TokKind::Ident)
                        .map(|n| n.text.clone());
                    if let Some(name) = name {
                        if pending_deprecated {
                            deprecated.push((name.clone(), t.line));
                        } else {
                            plain.push(name.clone());
                        }
                        if let Some((open, true)) = find_body_open(code, i + 2) {
                            let close = match_braces(code, open);
                            // Innermost enclosing impl/trait block, if any.
                            let region = owners
                                .iter()
                                .filter(|r| r.body.0 < open && close <= r.body.1)
                                .max_by_key(|r| r.body.0);
                            fns.push(FnSpan {
                                name,
                                body: (open, close),
                                start_line: t.line,
                                owner: region.map(|r| r.owner.clone()),
                                trait_impl: region.and_then(|r| r.trait_impl.clone()),
                            });
                        }
                    }
                    pending_deprecated = false;
                }
                // A non-fn item consumes any pending #[deprecated].
                "struct" | "enum" | "trait" | "mod" | "const" | "static" | "type"
                | "macro_rules" | "use" => {
                    pending_deprecated = false;
                }
                _ => {}
            }
        }
        i += 1;
    }
    info.fns = fns;
    info.deprecated_fns = deprecated;
    info.plain_fns = plain;
}

/// Parse `om-lint: allow(...)` comments out of the trivia stream and map
/// each to the first code line at or after it.
fn find_suppressions(all_toks: &[Tok], info: &mut ScanInfo) {
    let code_lines: Vec<u32> = info.code.iter().map(|t| t.line).collect();
    for t in all_toks {
        if t.kind != TokKind::LineComment {
            continue;
        }
        // Doc comments never suppress — they describe the allow syntax
        // without invoking it.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(rest) = t.text.split("om-lint:").nth(1) else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            continue;
        };
        let args = args.trim_start();
        let Some(open) = args.strip_prefix('(') else {
            continue;
        };
        let Some(close_at) = open.find(')') else {
            continue;
        };
        let checks: Vec<String> = open[..close_at]
            .split(',')
            .map(|c| c.trim().to_owned())
            .filter(|c| !c.is_empty())
            .collect();
        // Everything after the closing paren, minus dash/colon
        // separators, is the mandatory reason.
        let reason = open[close_at + 1..]
            .trim_start_matches([' ', '\t'])
            .trim_start_matches(['—', '–', '-', ':'])
            .trim()
            .to_owned();
        let applies_line = code_lines
            .iter()
            .copied()
            .find(|&l| l >= t.line)
            .unwrap_or(t.line);
        for check in &checks {
            info.suppressed_lines
                .entry(check.clone())
                .or_default()
                .push(applies_line);
        }
        info.suppressions.push(Suppression {
            checks,
            reason,
            comment_line: t.line,
            applies_line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        let info = scan(&lex(src));
        assert_eq!(info.test_regions.len(), 1);
        assert!(info.in_test_region(4));
        assert!(!info.in_test_region(1));
    }

    #[test]
    fn deprecated_fns_are_separated() {
        let src = "#[deprecated(note = \"x\")]\npub fn old() {}\npub fn new_one() {}\n\
                   #[deprecated]\nstruct S;\nfn after_struct() {}\n";
        let info = scan(&lex(src));
        assert_eq!(info.deprecated_fns.len(), 1);
        assert_eq!(info.deprecated_fns[0].0, "old");
        assert!(info.plain_fns.contains(&"new_one".to_owned()));
        assert!(info.plain_fns.contains(&"after_struct".to_owned()));
    }

    #[test]
    fn suppression_maps_to_next_code_line() {
        let src = "// om-lint: allow(panic-path) — startup only\nlet x = v.unwrap();\n\
                   let y = w.unwrap(); // om-lint: allow(panic-path) — trailing\n";
        let info = scan(&lex(src));
        assert!(info.is_suppressed("panic-path", 2));
        assert!(info.is_suppressed("panic-path", 3));
        assert!(!info.is_suppressed("panic-path", 1) || info.code.first().map(|t| t.line) == Some(1));
        assert_eq!(info.suppressions.len(), 2);
        assert_eq!(info.suppressions[0].reason, "startup only");
    }

    #[test]
    fn bare_suppression_has_empty_reason() {
        let src = "// om-lint: allow(unsafe-safety-comment)\nunsafe { () }\n";
        let info = scan(&lex(src));
        assert_eq!(info.suppressions.len(), 1);
        assert!(info.suppressions[0].reason.is_empty());
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let src = "fn a() { inner(); }\nfn b() { let x = 1; }\n";
        let info = scan(&lex(src));
        assert_eq!(info.fns.len(), 2);
        assert_eq!(info.fns[0].name, "a");
        let (open, close) = info.fns[0].body;
        assert!(info.code[open].is_punct('{'));
        assert!(info.code[close].is_punct('}'));
    }
}
