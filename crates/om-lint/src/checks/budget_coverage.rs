//! `budget-coverage`: every loop on the request path must poll a
//! `Budget` or failpoint seam — the "never an unbounded scan" contract.
//!
//! Roots are the `/v1` handler functions ([`crate::CheckConfig::handler_files`])
//! and every `EngineOps` method (both backends implement the trait, so
//! trait membership is the reachability anchor). Any function reachable
//! from a root over the call graph is on the request path; inside those
//! functions, in the crates named by
//! [`crate::CheckConfig::budget_scopes`], a loop must poll when it can
//! run long:
//!
//! - a loop whose range reaches **blocking** work (intrinsic or through
//!   a callee) must poll — it waits on the outside world;
//! - a bare `loop` whose range makes any resolved workspace call must
//!   poll — it only exits via `break`, so composed work inside it has
//!   no structural bound at all;
//! - `for` and `while` loops with no blocking reach are exempt: they
//!   walk a condition toward a bound doing CPU work (bit scans, varint
//!   decodes, two-pointer merges), which the deadline check at the next
//!   poll site upstream already bounds.
//!
//! For `for` loops the head is excluded from the scan (its iterator
//! expression is evaluated once); `while`/`loop` heads are re-evaluated
//! every iteration and count.

use super::Check;
use crate::scan::LoopKind;
use crate::{Finding, Workspace};

pub struct BudgetCoverage;

impl Check for BudgetCoverage {
    fn name(&self) -> &'static str {
        "budget-coverage"
    }

    fn description(&self) -> &'static str {
        "loops reachable from /v1 handlers or EngineOps methods poll a Budget/failpoint seam"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let a = ws.analysis();
        let roots: Vec<usize> = a
            .graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.trait_impl.as_deref() == Some("EngineOps")
                    || ws
                        .config
                        .handler_files
                        .iter()
                        .any(|h| ws.sources[n.file].rel == *h)
            })
            .map(|(i, _)| i)
            .collect();
        if roots.is_empty() {
            return Vec::new();
        }
        let reachable = a.graph.reachable(&roots);

        let mut out = Vec::new();
        for &n in &reachable {
            let node = &a.graph.nodes[n];
            let src = &ws.sources[node.file];
            if !ws.config.budget_scopes.iter().any(|p| src.rel.starts_with(p)) {
                continue;
            }
            for lp in &src.info.loops {
                // Innermost-fn attribution: the loop belongs to us only
                // if no nested fn owns it.
                if !(node.body.0 < lp.body.0 && lp.body.1 < node.body.1)
                    || a.graph.fn_at(node.file, lp.body.0) != Some(n)
                {
                    continue;
                }
                let range = match lp.kind {
                    LoopKind::For => (lp.body.0, lp.body.1),
                    LoopKind::While | LoopKind::Loop => (lp.kw, lp.body.1),
                };
                if a.range_polls(n, range) {
                    continue;
                }
                let blocking = a.first_blocking_in(n, range);
                let composed =
                    lp.kind == LoopKind::Loop && a.range_has_call(n, range);
                if let Some((_, witness)) = blocking {
                    out.push(Finding::new(
                        self.name(),
                        &src.rel,
                        lp.line,
                        format!(
                            "loop in request-path fn `{}` reaches blocking work ({witness}) \
                             without polling a Budget or failpoint seam",
                            node.name
                        ),
                    ));
                } else if composed {
                    out.push(Finding::new(
                        self.name(),
                        &src.rel,
                        lp.line,
                        format!(
                            "bare loop in request-path fn `{}` does composed work without \
                             polling a Budget or failpoint seam; add budget.check() or a \
                             fail::inject(..) to bound it",
                            node.name
                        ),
                    ));
                }
            }
        }
        out
    }
}
