//! `lock-order`: static detection of inconsistent lock acquisition
//! order — the compile-time half of a deadlock detector.
//!
//! Pass 1 collects the workspace's lock *names*: identifiers declared
//! as `name: Mutex<..>` / `name: RwLock<..>` fields or statics. Names
//! are namespaced per crate (`om-server/inner`), so identical field
//! names in unrelated crates do not alias.
//!
//! Pass 2 walks every function body (non-test) and records each
//! zero-argument `.lock()` / `.read()` / `.write()` call whose receiver
//! tail is a declared lock name. Within one function, acquiring A
//! before B adds the edge A → B to a workspace-wide lock graph.
//!
//! Any cycle in that graph means two code paths acquire the same pair
//! of locks in opposite orders — a latent deadlock. The finding names
//! the cycle and one acquisition site per edge.

use std::collections::{BTreeMap, BTreeSet};

use crate::checks::Check;
use crate::lexer::TokKind;
use crate::{Finding, Role, Workspace};

pub struct LockOrder;

const NAME: &str = "lock-order";
const ACQUIRERS: [&str; 3] = ["lock", "read", "write"];

impl Check for LockOrder {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "pairwise lock acquisition order is consistent across the workspace (no cycles)"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        // Pass 1: declared lock names, per crate.
        let mut locks: BTreeSet<String> = BTreeSet::new();
        for src in &ws.sources {
            let ns = crate_of(&src.rel);
            let code = &src.info.code;
            for (i, t) in code.iter().enumerate() {
                let is_lock_type = t.is_ident("Mutex") || t.is_ident("RwLock");
                if is_lock_type
                    && code.get(i + 1).is_some_and(|n| n.is_punct('<'))
                    && i >= 2
                    && code[i - 1].is_punct(':')
                    && code[i - 2].kind == TokKind::Ident
                {
                    locks.insert(format!("{ns}/{}", code[i - 2].text));
                }
            }
        }
        if locks.is_empty() {
            return Vec::new();
        }

        // Pass 2: ordered acquisition pairs inside each function.
        // edge (A, B) -> one witness site "file:line(fn)".
        let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();
        for src in &ws.sources {
            if src.role != Role::Src {
                continue;
            }
            let ns = crate_of(&src.rel);
            let code = &src.info.code;
            for f in &src.info.fns {
                if src.info.in_test_region(f.start_line) {
                    continue;
                }
                let mut seq: Vec<(String, u32)> = Vec::new();
                let (open, close) = f.body;
                for i in open..=close.min(code.len().saturating_sub(1)) {
                    let t = &code[i];
                    if t.kind == TokKind::Ident
                        && ACQUIRERS.contains(&t.text.as_str())
                        && i >= 2
                        && code[i - 1].is_punct('.')
                        && code[i - 2].kind == TokKind::Ident
                        && code.get(i + 1).is_some_and(|n| n.is_punct('('))
                        && code.get(i + 2).is_some_and(|n| n.is_punct(')'))
                    {
                        let name = format!("{ns}/{}", code[i - 2].text);
                        if locks.contains(&name) {
                            seq.push((name, t.line));
                        }
                    }
                }
                for a in 0..seq.len() {
                    for b in (a + 1)..seq.len() {
                        if seq[a].0 != seq[b].0 {
                            edges
                                .entry((seq[a].0.clone(), seq[b].0.clone()))
                                .or_insert_with(|| {
                                    format!(
                                        "{}:{} (fn {}, then line {})",
                                        src.rel, seq[a].1, f.name, seq[b].1
                                    )
                                });
                        }
                    }
                }
            }
        }

        // Cycle detection over the edge set.
        let mut out = Vec::new();
        let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
        for ((a, b), site_ab) in &edges {
            let Some(site_ba) = edges.get(&(b.clone(), a.clone())) else {
                continue;
            };
            let key = if a < b {
                (a.clone(), b.clone())
            } else {
                (b.clone(), a.clone())
            };
            if !reported.insert(key) {
                continue;
            }
            let (file, line) = split_site(site_ab);
            out.push(Finding::new(
                NAME,
                &file,
                line,
                format!(
                    "inconsistent lock order: `{a}` then `{b}` at {site_ab}, but \
                     `{b}` then `{a}` at {site_ba} — opposite orders can deadlock"
                ),
            ));
        }
        // Longer cycles (A→B→C→A) without any 2-cycle: depth-first walk.
        out.extend(long_cycles(&edges, &reported));
        out
    }
}

/// Crate name from a workspace-relative path (`crates/om-server/src/..`
/// → `om-server`; root `src/..` → `root`).
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates" | "vendor") => parts.next().unwrap_or("?").to_owned(),
        _ => "root".to_owned(),
    }
}

fn split_site(site: &str) -> (String, u32) {
    let mut it = site.split(':');
    let file = it.next().unwrap_or("?").to_owned();
    let line = it
        .next()
        .and_then(|rest| rest.split(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(1);
    (file, line)
}

/// Report one representative cycle of length ≥ 3 per strongly-connected
/// component not already covered by a pairwise report.
fn long_cycles(
    edges: &BTreeMap<(String, String), String>,
    reported_pairs: &BTreeSet<(String, String)>,
) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut out = Vec::new();
    let mut seen_cycle_nodes: BTreeSet<String> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        if seen_cycle_nodes.contains(start) {
            continue;
        }
        let mut stack = vec![start];
        let mut on_path: Vec<&str> = Vec::new();
        if let Some(cycle) = dfs(start, &adj, &mut on_path, &mut stack.split_off(1)) {
            // Skip cycles already reported as a pair.
            if cycle.len() == 2 {
                continue;
            }
            let covered = cycle.windows(2).any(|w| {
                let key = if w[0] < w[1] {
                    (w[0].clone(), w[1].clone())
                } else {
                    (w[1].clone(), w[0].clone())
                };
                reported_pairs.contains(&key)
            });
            if covered {
                continue;
            }
            for n in &cycle {
                seen_cycle_nodes.insert(n.clone());
            }
            let site = edges
                .get(&(cycle[0].clone(), cycle[1].clone()))
                .cloned()
                .unwrap_or_default();
            let (file, line) = split_site(&site);
            out.push(Finding::new(
                NAME,
                &file,
                line,
                format!(
                    "lock-order cycle {} — acquisition orders around this loop can deadlock \
                     (first edge at {site})",
                    cycle.join(" → "),
                ),
            ));
        }
    }
    out
}

/// DFS from `node`; returns the node list of the first cycle found.
fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    on_path: &mut Vec<&'a str>,
    _unused: &mut Vec<&'a str>,
) -> Option<Vec<String>> {
    if let Some(pos) = on_path.iter().position(|n| *n == node) {
        return Some(on_path[pos..].iter().map(|s| (*s).to_owned()).collect());
    }
    if on_path.len() > 32 {
        return None; // pathological graphs: give up quietly
    }
    on_path.push(node);
    if let Some(nexts) = adj.get(node) {
        for next in nexts {
            if let Some(c) = dfs(next, adj, on_path, _unused) {
                on_path.pop();
                return Some(c);
            }
        }
    }
    on_path.pop();
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scan, CheckConfig, SourceFile};

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: std::path::PathBuf::new(),
            sources: files
                .into_iter()
                .map(|(rel, text)| SourceFile {
                    rel: rel.into(),
                    role: Role::Src,
                    info: scan::scan(&crate::lexer::lex(text)),
                })
                .collect(),
            manifests: vec![],
            docs: vec![],
            config: CheckConfig::default(),
        }
    }

    const DECLS: &str = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n";

    #[test]
    fn consistent_order_is_clean() {
        let w = ws(vec![(
            "crates/om-x/src/lib.rs",
            &format!(
                "{DECLS}fn one(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}\n\
                 fn two(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}\n"
            ),
        )]);
        assert!(LockOrder.run(&w).is_empty());
    }

    #[test]
    fn inverted_order_is_a_cycle() {
        let w = ws(vec![(
            "crates/om-x/src/lib.rs",
            &format!(
                "{DECLS}fn one(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}\n\
                 fn two(s: &S) {{ let h = s.b.lock(); let g = s.a.lock(); }}\n"
            ),
        )]);
        let f = LockOrder.run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("opposite orders"));
    }

    #[test]
    fn same_names_in_different_crates_do_not_alias() {
        let one = format!("{DECLS}fn f(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}\n");
        let two = format!("{DECLS}fn f(s: &S) {{ let h = s.b.lock(); let g = s.a.lock(); }}\n");
        let w = ws(vec![
            ("crates/om-x/src/lib.rs", one.leak()),
            ("crates/om-y/src/lib.rs", two.leak()),
        ]);
        assert!(LockOrder.run(&w).is_empty());
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let w = ws(vec![(
            "crates/om-x/src/lib.rs",
            "struct S { file: Mutex<u32> }\nfn f(file: &mut F, buf: &mut [u8]) { file.read(buf); }\n",
        )]);
        assert!(LockOrder.run(&w).is_empty());
    }

    #[test]
    fn three_cycle_is_reported() {
        let decls = "struct S { a: Mutex<u32>, b: Mutex<u32>, c: Mutex<u32> }\n";
        let w = ws(vec![(
            "crates/om-x/src/lib.rs",
            &format!(
                "{decls}fn one(s: &S) {{ let g = s.a.lock(); let h = s.b.lock(); }}\n\
                 fn two(s: &S) {{ let g = s.b.lock(); let h = s.c.lock(); }}\n\
                 fn three(s: &S) {{ let g = s.c.lock(); let h = s.a.lock(); }}\n"
            ),
        )]);
        let f = LockOrder.run(&w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("cycle"));
    }
}
