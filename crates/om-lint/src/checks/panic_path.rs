//! `panic-path`: no panicking constructs on request-serving code.
//!
//! Scopes (configurable, see [`crate::CheckConfig::panic_scopes`]):
//! om-server request routing, om-api decode, om-ingest WAL replay, and
//! om-exec worker bodies. Inside those files — outside `#[cfg(test)]`
//! regions — the following are findings:
//!
//! - `.unwrap()` / `.expect(...)`
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! - slice/array indexing `expr[...]` (except the infallible full-range
//!   `[..]`), the silent panic path the WAL replay bug class lives in
//!
//! Sites that are genuinely infallible by construction carry an
//! `om-lint: allow(panic-path) — <why>` suppression.

use crate::checks::Check;
use crate::lexer::TokKind;
use crate::{Finding, Role, Workspace};

pub struct PanicPath;

const NAME: &str = "panic-path";
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

impl Check for PanicPath {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/slice-index in request-path crates"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for src in &ws.sources {
            if src.role != Role::Src
                || !ws.config.panic_scopes.iter().any(|s| src.rel.starts_with(s))
            {
                continue;
            }
            let code = &src.info.code;
            for (i, t) in code.iter().enumerate() {
                if src.info.in_test_region(t.line) {
                    continue;
                }
                match t.kind {
                    TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                        let method_call = i > 0
                            && code[i - 1].is_punct('.')
                            && code.get(i + 1).is_some_and(|n| n.is_punct('('));
                        if method_call {
                            out.push(Finding::new(
                                NAME,
                                &src.rel,
                                t.line,
                                format!(
                                    ".{}() on a request path; return a typed error \
                                     or annotate why it cannot fire",
                                    t.text
                                ),
                            ));
                        }
                    }
                    TokKind::Ident
                        if PANIC_MACROS.contains(&t.text.as_str())
                            && code.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
                    {
                        out.push(Finding::new(
                            NAME,
                            &src.rel,
                            t.line,
                            format!("{}! on a request path", t.text),
                        ));
                    }
                    TokKind::Punct if t.is_punct('[') => {
                        if let Some(f) = index_site(src, i) {
                            out.push(f);
                        }
                    }
                    _ => {}
                }
            }
        }
        out
    }
}

/// Is the `[` at code index `i` an index expression that can panic?
fn index_site(src: &crate::SourceFile, i: usize) -> Option<Finding> {
    let code = &src.info.code;
    let prev = code.get(i.checked_sub(1)?)?;
    // Indexing follows a value: `ident[`, `)[`, `][`. Anything else
    // (`= [`, `: [`, `&[`, `#[`) is a literal, a type, or an attribute.
    let follows_value = (prev.kind == TokKind::Ident && !is_keyword(&prev.text))
        || prev.is_punct(')')
        || prev.is_punct(']');
    if !follows_value {
        return None;
    }
    // `[..]` — taking a full-range slice never panics.
    if code.get(i + 1).is_some_and(|a| a.is_punct('.'))
        && code.get(i + 2).is_some_and(|b| b.is_punct('.'))
        && code.get(i + 3).is_some_and(|c| c.is_punct(']'))
    {
        return None;
    }
    Some(Finding::new(
        NAME,
        &src.rel,
        code[i].line,
        "slice/array index on a request path can panic; use .get(..) \
         or annotate the bound invariant",
    ))
}

/// Keywords that can directly precede `[` without being an indexable
/// value (`return [..]`, `in [..]`, `else [` never happens, but be safe).
fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "return" | "in" | "if" | "else" | "match" | "break" | "continue" | "await" | "move"
            | "mut" | "ref" | "as" | "where" | "let"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scan, CheckConfig, SourceFile};

    fn src_file(rel: &str, text: &str) -> SourceFile {
        SourceFile {
            rel: rel.into(),
            role: Role::Src,
            info: scan::scan(&crate::lexer::lex(text)),
        }
    }

    fn run_on(rel: &str, text: &str) -> Vec<Finding> {
        let ws = Workspace {
            root: std::path::PathBuf::new(),
            sources: vec![src_file(rel, text)],
            manifests: vec![],
            docs: vec![],
            config: CheckConfig::default(),
            analysis: std::sync::OnceLock::new(),
        };
        PanicPath.run(&ws)
    }

    #[test]
    fn flags_unwrap_in_scope() {
        let f = run_on(
            "crates/om-server/src/router.rs",
            "fn handle() { let x = q.unwrap(); }",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unwrap"));
    }

    #[test]
    fn ignores_out_of_scope_and_tests() {
        assert!(run_on("crates/om-compare/src/rank.rs", "fn f() { x.unwrap(); }").is_empty());
        let f = run_on(
            "crates/om-server/src/router.rs",
            "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn flags_indexing_but_not_full_range_or_literals() {
        let f = run_on(
            "crates/om-api/src/de.rs",
            "fn f(b: &[u8]) { let x = b[0]; let all = &b[..]; let arr = [0u8; 4]; }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("index"));
    }

    #[test]
    fn flags_panic_macros() {
        let f = run_on(
            "crates/om-exec/src/pool.rs",
            "fn f() { unreachable!(\"no\"); }",
        );
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn expect_as_parser_method_name_is_still_flagged_only_as_method_call() {
        // `self.expect(b'[')` is a method *call* — flagged; a bare path
        // `Parser::expect` as a definition is not.
        let f = run_on(
            "crates/om-api/src/json.rs",
            "impl P { fn expect_byte(&mut self, b: u8) {} }\nfn f(p: &mut P) { p.expect_byte(b'x'); }",
        );
        assert!(f.is_empty());
    }
}
