//! `lock-across-io`: no guard may be live across blocking I/O or an
//! unbounded channel wait — directly or through any call chain.
//!
//! This is the PR 7 `flush_catchup` bug class: a queue lock held across
//! a network round trip serializes every writer behind one slow peer
//! and turns a remote stall into a local pileup. The effect analysis
//! ([`crate::effects`]) gives each acquisition a live token range and
//! each function a may-block summary; any blocking intrinsic or
//! blocking call inside a live range is a finding, anchored at the
//! acquisition so the fix site (narrow the guard, snapshot under the
//! lock, do I/O outside) is what gets flagged.

use super::Check;
use crate::{Finding, Workspace};

pub struct LockAcrossIo;

impl Check for LockAcrossIo {
    fn name(&self) -> &'static str {
        "lock-across-io"
    }

    fn description(&self) -> &'static str {
        "no lock guard live across blocking I/O, channel waits, sleeps or thread joins, \
         through any call chain"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let a = ws.analysis();
        let mut out = Vec::new();
        for (n, fx) in a.locals.iter().enumerate() {
            let node = &a.graph.nodes[n];
            let src = &ws.sources[node.file];
            for acq in &fx.acqs {
                // The acquisition token itself is not "held across" —
                // scan strictly after it.
                let range = (acq.tok + 1, acq.live.1);
                if let Some((_, witness)) = a.first_blocking_in(n, range) {
                    let guard = match &acq.lock {
                        Some(l) => format!("lock `{l}`"),
                        None => format!("guard of `{}.lock()`", acq.recv),
                    };
                    out.push(Finding::new(
                        self.name(),
                        &src.rel,
                        acq.line,
                        format!(
                            "{guard} held across a blocking operation ({witness}); \
                             snapshot under the lock and do I/O after release"
                        ),
                    ));
                }
            }
        }
        out
    }
}
