//! `failpoint-names`: the chaos suite and the failure seams must agree.
//!
//! `om_fault::fail::SEAMS` is the registry of every failpoint name the
//! workspace declares. Three invariants:
//!
//! 1. every `fail::inject("name")` seam in library code names a
//!    registered seam (no unregistered seams),
//! 2. every name armed in test code — `fail::configure("name", ..)`
//!    literals, `OM_FAILPOINTS`-style `name=action` entry strings, and
//!    bare dotted failpoint literals (the arrays crash-recovery tests
//!    iterate) — is registered, so a typo'd chaos test cannot silently
//!    arm nothing (names under `tests.` are test-local and exempt), and
//! 3. every registered seam still has at least one inject site.

use std::collections::{BTreeMap, BTreeSet};

use crate::checks::Check;
use crate::lexer::TokKind;
use crate::{Finding, Role, Workspace};

pub struct FailpointNames;

const NAME: &str = "failpoint-names";

/// Subsystem prefixes that make a bare dotted string literal in test
/// code count as a failpoint name.
const SEAM_PREFIXES: [&str; 8] = [
    "compare.", "cube.", "store.", "ingest.", "engine.", "server.", "exec.", "cluster.",
];

/// File-ish suffixes that disqualify a dotted literal (`"wal.rs"`,
/// `"data.csv"` are paths, not failpoints).
const FILE_SUFFIXES: [&str; 8] = [".rs", ".csv", ".json", ".toml", ".md", ".txt", ".wal", ".tmp"];

impl Check for FailpointNames {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "every OM_FAILPOINTS name armed in tests is declared in om_fault::fail::SEAMS"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let Some(reg_file) = ws
            .sources
            .iter()
            .find(|s| s.rel == ws.config.failpoint_registry)
        else {
            return Vec::new();
        };
        let Some((seams, seams_line)) = parse_seams(reg_file) else {
            return vec![Finding::new(
                NAME,
                &reg_file.rel,
                1,
                "no `SEAMS: &[&str]` registry found; declare every failpoint name there",
            )];
        };

        let mut out = Vec::new();
        // inject sites: name -> first site.
        let mut injected: BTreeMap<String, (String, u32)> = BTreeMap::new();
        for src in &ws.sources {
            let code = &src.info.code;
            for (i, t) in code.iter().enumerate() {
                if t.is_ident("inject")
                    && code.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && code.get(i + 2).is_some_and(|n| n.kind == TokKind::Str)
                {
                    let lit = &code[i + 2];
                    let in_tests = src.role == Role::Test || src.info.in_test_region(t.line);
                    if !in_tests {
                        injected
                            .entry(lit.text.clone())
                            .or_insert_with(|| (src.rel.clone(), lit.line));
                        if !seams.contains(&lit.text) {
                            out.push(Finding::new(
                                NAME,
                                &src.rel,
                                lit.line,
                                format!(
                                    "failpoint {:?} injected here but not declared in \
                                     om_fault::fail::SEAMS",
                                    lit.text
                                ),
                            ));
                        }
                    }
                }
            }
        }

        // Armed names in test code.
        for src in &ws.sources {
            let code = &src.info.code;
            for (i, t) in code.iter().enumerate() {
                let in_tests = src.role == Role::Test || src.info.in_test_region(t.line);
                if !in_tests {
                    continue;
                }
                if t.kind != TokKind::Str {
                    continue;
                }
                let after_configure = i >= 2
                    && code[i - 1].is_punct('(')
                    && code[i - 2].is_ident("configure");
                for name in armed_candidates(&t.text, after_configure) {
                    if name.starts_with("tests.") {
                        continue;
                    }
                    if !seams.contains(&name) {
                        out.push(Finding::new(
                            NAME,
                            &src.rel,
                            t.line,
                            format!(
                                "test arms failpoint {name:?}, which is not declared in \
                                 om_fault::fail::SEAMS — it would silently arm nothing"
                            ),
                        ));
                    }
                }
            }
        }

        // Registered seams must still exist as inject sites.
        for seam in &seams {
            if !injected.contains_key(seam) {
                out.push(Finding::new(
                    NAME,
                    &reg_file.rel,
                    seams_line,
                    format!("SEAMS declares {seam:?} but no fail::inject({seam:?}) site exists"),
                ));
            }
        }
        out
    }
}

/// Literals in `SEAMS: &[&str] = &[ ... ];`.
fn parse_seams(src: &crate::SourceFile) -> Option<(BTreeSet<String>, u32)> {
    let code = &src.info.code;
    let at = code.iter().position(|t| t.is_ident("SEAMS"))?;
    let line = code[at].line;
    let mut seams = BTreeSet::new();
    for t in &code[at..] {
        if t.kind == TokKind::Str {
            seams.insert(t.text.clone());
        }
        if t.is_punct(';') {
            break;
        }
    }
    Some((seams, line))
}

/// Failpoint names a test-side string literal arms. `configure("x")`
/// literals always count; otherwise the literal must either carry
/// `name=action` entries (the `OM_FAILPOINTS` wire format) or be a bare
/// dotted name under a known subsystem prefix.
fn armed_candidates(lit: &str, after_configure: bool) -> Vec<String> {
    if lit.contains('=') {
        return lit
            .split(';')
            .filter_map(|entry| entry.split_once('=').map(|(n, _)| n.trim().to_owned()))
            .filter(|n| looks_like_failpoint(n))
            .collect();
    }
    if after_configure {
        return vec![lit.to_owned()];
    }
    if looks_like_failpoint(lit) {
        return vec![lit.to_owned()];
    }
    Vec::new()
}

fn looks_like_failpoint(name: &str) -> bool {
    (name.starts_with("tests.") || SEAM_PREFIXES.iter().any(|p| name.starts_with(p)))
        && !FILE_SUFFIXES.iter().any(|s| name.ends_with(s))
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'_'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scan, CheckConfig, SourceFile};

    const REGISTRY: &str = r#"
pub const SEAMS: &[&str] = &["engine.compare", "cube.decode"];
pub fn inject(name: &str) {}
fn seams_used() { inject("engine.compare"); inject("cube.decode"); }
"#;

    fn ws(test_src: &str) -> Workspace {
        let mk = |rel: &str, text: &str, role| SourceFile {
            rel: rel.into(),
            role,
            info: scan::scan(&crate::lexer::lex(text)),
        };
        Workspace {
            root: std::path::PathBuf::new(),
            sources: vec![
                mk("crates/om-fault/src/fail.rs", REGISTRY, Role::Src),
                mk("crates/om-server/tests/chaos.rs", test_src, Role::Test),
            ],
            manifests: vec![],
            docs: vec![],
            config: CheckConfig::default(),
            analysis: std::sync::OnceLock::new(),
        }
    }

    #[test]
    fn registered_arms_are_clean() {
        let w = ws(r#"fn t() { fail::configure("engine.compare", Action::Delay(d)); }"#);
        assert!(FailpointNames.run(&w).is_empty());
    }

    #[test]
    fn typoed_configure_is_flagged() {
        let w = ws(r#"fn t() { fail::configure("engine.comapre", Action::Delay(d)); }"#);
        let f = FailpointNames.run(&w);
        assert_eq!(f.len(), 1);
        // om-lint: allow(failpoint-names) — deliberate typo exercising the check
        assert!(f[0].message.contains("engine.comapre"));
    }

    #[test]
    fn env_entry_strings_and_dotted_literals_are_parsed() {
        let w = ws(
            // om-lint: allow(failpoint-names) — fixture arms unregistered names on purpose
            r#"fn t() { let e = "cube.decode=error:rot;engine.nope=delay:5"; let a = ["engine.compare", "store.gone"]; let p = "wal.rs"; }"#,
        );
        let f = FailpointNames.run(&w);
        // om-lint: allow(failpoint-names) — asserting on the deliberately bad name
        assert!(f.iter().any(|f| f.message.contains("engine.nope")), "{f:?}");
        // om-lint: allow(failpoint-names) — asserting on the deliberately bad name
        assert!(f.iter().any(|f| f.message.contains("store.gone")));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn tests_scope_names_are_exempt() {
        let w = ws(r#"fn t() { fail::configure("tests.local-only", Action::Delay(d)); }"#);
        assert!(FailpointNames.run(&w).is_empty());
    }

    #[test]
    fn stale_seam_without_inject_site_is_flagged() {
        let reg = r#"pub const SEAMS: &[&str] = &["engine.compare"];"#;
        let w = Workspace {
            root: std::path::PathBuf::new(),
            sources: vec![SourceFile {
                rel: "crates/om-fault/src/fail.rs".into(),
                role: Role::Src,
                info: scan::scan(&crate::lexer::lex(reg)),
            }],
            manifests: vec![],
            docs: vec![],
            config: CheckConfig::default(),
            analysis: std::sync::OnceLock::new(),
        };
        let f = FailpointNames.run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no fail::inject"));
    }
}
