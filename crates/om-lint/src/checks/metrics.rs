//! `metrics-registered`: the `/metrics` exposition, the docs, and the
//! tests must agree on the `om_*` counter set.
//!
//! The render set is every metric name appearing in a string literal of
//! the configured render files (the server `Metrics::render` and the
//! ingest stats exposition). Two invariants:
//!
//! 1. every metric referenced anywhere else — test assertions, docs —
//!    is actually rendered (no phantom counters), and
//! 2. every rendered metric is documented in `docs/` (no silent series).

use std::collections::BTreeMap;

use crate::checks::{line_of_offset, metric_names, Check};
use crate::lexer::TokKind;
use crate::{Finding, Workspace};

pub struct MetricsRegistered;

const NAME: &str = "metrics-registered";

impl Check for MetricsRegistered {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "every om_* metric referenced is rendered by /metrics, and every rendered one is documented"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        // name -> first (file, line) seen, for anchored findings.
        let mut rendered: BTreeMap<String, (String, u32)> = BTreeMap::new();
        let mut referenced: BTreeMap<String, (String, u32)> = BTreeMap::new();
        let mut documented: BTreeMap<String, (String, u32)> = BTreeMap::new();

        for src in &ws.sources {
            let is_render = ws.config.metrics_render_files.contains(&src.rel);
            for t in &src.info.code {
                if t.kind != TokKind::Str {
                    continue;
                }
                // `#[cfg(test)]` fixtures in library code (om-lint's own
                // check tests, most prominently) fabricate metric-shaped
                // strings; integration-test files (Role::Test) still
                // count, so chaos-suite assertions stay checked.
                if !is_render && src.info.in_test_region(t.line) {
                    continue;
                }
                for (name, _) in metric_names(&t.text) {
                    let slot = if is_render { &mut rendered } else { &mut referenced };
                    slot.entry(name).or_insert_with(|| (src.rel.clone(), t.line));
                }
            }
        }
        for doc in &ws.docs {
            for (name, off) in metric_names(&doc.text) {
                documented
                    .entry(name)
                    .or_insert_with(|| (doc.rel.clone(), line_of_offset(&doc.text, off)));
            }
        }

        let mut out = Vec::new();
        for (name, (file, line)) in referenced.iter().chain(documented.iter()) {
            if !rendered.contains_key(name) {
                out.push(Finding::new(
                    NAME,
                    file,
                    *line,
                    format!("metric {name:?} is referenced here but never rendered by /metrics"),
                ));
            }
        }
        for (name, (file, line)) in &rendered {
            if !documented.contains_key(name) {
                out.push(Finding::new(
                    NAME,
                    file,
                    *line,
                    format!("metric {name:?} is rendered by /metrics but not documented in docs/"),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scan, CheckConfig, Role, SourceFile, TextFile};

    fn ws(render: &str, test: &str, doc: &str) -> Workspace {
        let mk = |rel: &str, text: &str, role| SourceFile {
            rel: rel.into(),
            role,
            info: scan::scan(&crate::lexer::lex(text)),
        };
        Workspace {
            root: std::path::PathBuf::new(),
            sources: vec![
                mk("crates/om-server/src/metrics.rs", render, Role::Src),
                mk("crates/om-server/tests/chaos.rs", test, Role::Test),
            ],
            manifests: vec![],
            docs: vec![TextFile {
                rel: "docs/server.md".into(),
                text: doc.into(),
            }],
            config: CheckConfig::default(),
            analysis: std::sync::OnceLock::new(),
        }
    }

    #[test]
    fn agreement_is_clean() {
        let w = ws(
            r#"fn render() { out.push_str("om_shed_total 0"); }"#,
            r#"fn t() { assert!(text.contains("om_shed_total")); }"#,
            "`om_shed_total` counts sheds",
        );
        assert!(MetricsRegistered.run(&w).is_empty());
    }

    #[test]
    fn phantom_reference_is_flagged() {
        let w = ws(
            r#"fn render() { out.push_str("om_shed_total 0"); }"#,
            r#"fn t() { assert!(text.contains("om_shedd_total")); }"#,
            "`om_shed_total` and `om_shedd_total`",
        );
        let f = MetricsRegistered.run(&w);
        assert!(f.iter().any(|f| f.message.contains("om_shedd_total")));
    }

    #[test]
    fn undocumented_render_is_flagged() {
        let w = ws(
            r#"fn render() { out.push_str("om_secret_total 0"); }"#,
            "",
            "nothing here",
        );
        let f = MetricsRegistered.run(&w);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not documented"));
    }
}
