//! The check framework and the ten repo-specific checks.
//!
//! A check is a pure function of the loaded [`Workspace`]; per-file
//! checks iterate `ws.sources`, workspace-wide checks correlate across
//! files, manifests and docs. Findings carry the check's kebab-case
//! name, which is also the suppression key.

mod budget_coverage;
mod deprecated;
mod envelope;
mod failpoints;
mod lock_across_io;
mod lock_order_interproc;
mod metrics;
mod panic_path;
mod unsafe_comment;
pub(crate) mod unused_suppression;
mod vendor;

use crate::{Finding, Workspace};

/// One named invariant over the workspace.
pub trait Check {
    /// Kebab-case name; used in output and `allow(...)` suppressions.
    fn name(&self) -> &'static str;
    /// One-line description for `--list` style output and docs.
    fn description(&self) -> &'static str;
    /// Produce findings (suppressions are applied by the driver).
    fn run(&self, ws: &Workspace) -> Vec<Finding>;
}

/// Every check, in catalog order.
#[must_use]
pub fn all() -> Vec<Box<dyn Check>> {
    vec![
        Box::new(panic_path::PanicPath),
        Box::new(metrics::MetricsRegistered),
        Box::new(envelope::EnvelopeCodes),
        Box::new(deprecated::DeprecatedEngineApi),
        Box::new(failpoints::FailpointNames),
        Box::new(vendor::VendorOnly),
        Box::new(unsafe_comment::UnsafeSafetyComment),
        Box::new(lock_across_io::LockAcrossIo),
        Box::new(lock_order_interproc::LockOrderInterproc),
        Box::new(budget_coverage::BudgetCoverage),
    ]
}

/// Driver-level passes that are not [`Check`] impls but still produce
/// suppressible findings: suppression hygiene and the stale-suppression
/// scan (which needs the raw findings of every other check, so it runs
/// in `Workspace::run_checks`). `(name, description)` pairs, for the
/// `checks` listing and the known-name validation.
#[must_use]
pub fn driver_passes() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "suppression",
            "every om-lint allow() carries a reason and names a known check",
        ),
        (unused_suppression::NAME, unused_suppression::DESCRIPTION),
    ]
}

/// Extract `om_*` metric-looking names from a chunk of text. Real
/// metric names have at least two underscores in total
/// (`om_requests_total`, `om_queue_depth`), which filters out crate
/// idents like `om_compare`. Names immediately followed by `::` are
/// Rust paths, not metrics.
pub(crate) fn metric_names(text: &str) -> Vec<(String, usize)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(at) = text[i..].find("om_") {
        let start = i + at;
        // Must not be the tail of a longer identifier.
        if start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            i = start + 3;
            continue;
        }
        let mut end = start;
        while end < bytes.len() && (bytes[end].is_ascii_lowercase() || bytes[end].is_ascii_digit() || bytes[end] == b'_')
        {
            end += 1;
        }
        let name = &text[start..end];
        let followed_by_path = text[end..].starts_with("::");
        if name.matches('_').count() >= 2 && !followed_by_path {
            out.push((name.to_owned(), start));
        }
        i = end.max(start + 3);
    }
    out
}

/// 1-based line of byte `offset` in `text`.
pub(crate) fn line_of_offset(text: &str, offset: usize) -> u32 {
    u32::try_from(text[..offset.min(text.len())].bytes().filter(|&b| b == b'\n').count())
        .unwrap_or(u32::MAX - 1)
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_extraction() {
        let names: Vec<String> = metric_names(
            "om_requests_total{endpoint=\"x\"} plus om_compare::json and om_queue_depth, om_ingest",
        )
        .into_iter()
        .map(|(n, _)| n)
        .collect();
        assert_eq!(names, vec!["om_requests_total", "om_queue_depth"]);
    }

    #[test]
    fn offsets_to_lines() {
        let text = "a\nbb\nccc";
        assert_eq!(line_of_offset(text, 0), 1);
        assert_eq!(line_of_offset(text, 2), 2);
        assert_eq!(line_of_offset(text, 6), 3);
    }

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|c| c.name()).collect();
        names.extend(driver_passes().iter().map(|(n, _)| *n));
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, 12, "10 catalog checks + 2 driver passes");
    }
}
