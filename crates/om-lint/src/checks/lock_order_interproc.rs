//! `lock-order-interproc`: inconsistent lock acquisition order across
//! call chains — the interprocedural deadlock detector.
//!
//! Supersedes the old per-function `lock-order` sequence heuristic.
//! Edges now come from the effect analysis: while a guard for declared
//! lock `A` is *live* (liveness-tracked, not just textually earlier),
//! acquiring declared lock `B` — directly or by calling any function
//! whose summary says it may acquire `B` — adds `A → B`. A cycle in
//! that graph means two code paths can interleave into a deadlock even
//! when the two acquisitions never appear in one function. Acquiring a
//! lock that is already held (an `A → A` edge) is reported immediately:
//! `std::sync::Mutex` self-deadlocks on re-entry.

use std::collections::{BTreeMap, BTreeSet};

use crate::checks::Check;
use crate::{Finding, Workspace};

pub struct LockOrderInterproc;

const NAME: &str = "lock-order-interproc";

impl Check for LockOrderInterproc {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "lock acquisition order is consistent across call chains (no cycles, no re-entry)"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let a = ws.analysis();
        // edge (A, B) -> witness site "file:line (fn name)".
        let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();
        let mut out = Vec::new();
        for (n, fx) in a.locals.iter().enumerate() {
            let node = &a.graph.nodes[n];
            let rel = &ws.sources[node.file].rel;
            for acq in &fx.acqs {
                let Some(held) = &acq.lock else { continue };
                let range = (acq.tok + 1, acq.live.1);
                let in_range = |k: usize| k >= range.0 && k <= range.1;
                // Direct nested acquisitions while `held` is live.
                for other in &fx.acqs {
                    let Some(inner) = &other.lock else { continue };
                    if !in_range(other.tok) {
                        continue;
                    }
                    if inner == held {
                        out.push(Finding::new(
                            NAME,
                            rel,
                            other.line,
                            format!(
                                "lock `{held}` re-acquired while its guard from line {} \
                                 is still live — std mutexes self-deadlock on re-entry",
                                acq.line
                            ),
                        ));
                    } else {
                        edges
                            .entry((held.clone(), inner.clone()))
                            .or_insert_with(|| {
                                format!("{rel}:{} (fn {})", other.line, node.name)
                            });
                    }
                }
                // Acquisitions reached through calls made under the guard.
                for site in &a.graph.calls[n] {
                    if !in_range(site.tok) {
                        continue;
                    }
                    for &t in &site.targets {
                        for inner in a.summaries[t].acquires.keys() {
                            if inner == held {
                                out.push(Finding::new(
                                    NAME,
                                    rel,
                                    site.line,
                                    format!(
                                        "call to {} may re-acquire `{held}` while the guard \
                                         from line {} is still live — std mutexes \
                                         self-deadlock on re-entry",
                                        site.name, acq.line
                                    ),
                                ));
                            } else {
                                edges
                                    .entry((held.clone(), inner.clone()))
                                    .or_insert_with(|| {
                                        format!(
                                            "{rel}:{} (fn {}, via call to {})",
                                            site.line, node.name, site.name
                                        )
                                    });
                            }
                        }
                    }
                }
            }
        }

        // Pairwise (2-cycle) reports.
        let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
        for ((la, lb), site_ab) in &edges {
            let Some(site_ba) = edges.get(&(lb.clone(), la.clone())) else {
                continue;
            };
            let key = if la < lb {
                (la.clone(), lb.clone())
            } else {
                (lb.clone(), la.clone())
            };
            if !reported.insert(key) {
                continue;
            }
            let (file, line) = split_site(site_ab);
            out.push(Finding::new(
                NAME,
                &file,
                line,
                format!(
                    "inconsistent lock order: `{la}` then `{lb}` at {site_ab}, but \
                     `{lb}` then `{la}` at {site_ba} — opposite orders can deadlock"
                ),
            ));
        }
        out.extend(long_cycles(&edges, &reported));
        out
    }
}

fn split_site(site: &str) -> (String, u32) {
    let mut it = site.split(':');
    let file = it.next().unwrap_or("?").to_owned();
    let line = it
        .next()
        .and_then(|rest| rest.split(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(1);
    (file, line)
}

/// Report one representative cycle of length ≥ 3 per strongly-connected
/// component not already covered by a pairwise report.
fn long_cycles(
    edges: &BTreeMap<(String, String), String>,
    reported_pairs: &BTreeSet<(String, String)>,
) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut out = Vec::new();
    let mut seen_cycle_nodes: BTreeSet<String> = BTreeSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        if seen_cycle_nodes.contains(start) {
            continue;
        }
        let mut on_path: Vec<&str> = Vec::new();
        if let Some(cycle) = dfs(start, &adj, &mut on_path) {
            if cycle.len() == 2 {
                continue; // covered by the pairwise pass
            }
            let covered = cycle.windows(2).any(|w| {
                let key = if w[0] < w[1] {
                    (w[0].clone(), w[1].clone())
                } else {
                    (w[1].clone(), w[0].clone())
                };
                reported_pairs.contains(&key)
            });
            if covered {
                continue;
            }
            for n in &cycle {
                seen_cycle_nodes.insert(n.clone());
            }
            let site = edges
                .get(&(cycle[0].clone(), cycle[1].clone()))
                .cloned()
                .unwrap_or_default();
            let (file, line) = split_site(&site);
            out.push(Finding::new(
                NAME,
                &file,
                line,
                format!(
                    "lock-order cycle {} — acquisition orders around this loop can deadlock \
                     (first edge at {site})",
                    cycle.join(" → "),
                ),
            ));
        }
    }
    out
}

/// DFS from `node`; returns the node list of the first cycle found.
fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    on_path: &mut Vec<&'a str>,
) -> Option<Vec<String>> {
    if let Some(pos) = on_path.iter().position(|n| *n == node) {
        return Some(on_path[pos..].iter().map(|s| (*s).to_owned()).collect());
    }
    if on_path.len() > 32 {
        return None; // pathological graphs: give up quietly
    }
    on_path.push(node);
    if let Some(nexts) = adj.get(node) {
        for next in nexts {
            if let Some(c) = dfs(next, adj, on_path) {
                on_path.pop();
                return Some(c);
            }
        }
    }
    on_path.pop();
    None
}
