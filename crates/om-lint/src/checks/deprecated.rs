//! `deprecated-engine-api`: no in-repo caller of `#[deprecated]` shims.
//!
//! PR 4 collapsed the engine API onto `run_*` + `ExecCtx` and left the
//! old `compare`/`*_budgeted` pairs as deprecated one-line shims. Rust
//! only *warns* on deprecated calls, and the workspace denies warnings
//! per-crate — but a new crate that forgets the clippy wiring would
//! reintroduce callers silently. This check closes that hole.
//!
//! A name is checked only when it is unambiguous: if a fn of the same
//! name is also defined *without* `#[deprecated]` anywhere in the
//! workspace (e.g. `Comparator::compare` vs the engine's deprecated
//! `compare` shim), a lexical scan cannot attribute call sites, so the
//! name is skipped. The remaining names are flagged at any
//! `.name(`/`::name(` call site outside the defining file and outside
//! test regions (the shim-coverage test is allowed to call them).

use std::collections::{BTreeMap, BTreeSet};

use crate::checks::Check;
use crate::lexer::TokKind;
use crate::{Finding, Role, Workspace};

pub struct DeprecatedEngineApi;

const NAME: &str = "deprecated-engine-api";

impl Check for DeprecatedEngineApi {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "no in-repo caller of #[deprecated] shims outside the shims themselves"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        // name -> defining file (first wins; shims live in one file).
        let mut deprecated: BTreeMap<String, String> = BTreeMap::new();
        let mut plain: BTreeSet<&str> = BTreeSet::new();
        for src in &ws.sources {
            for (name, _) in &src.info.deprecated_fns {
                deprecated.entry(name.clone()).or_insert_with(|| src.rel.clone());
            }
            for name in &src.info.plain_fns {
                plain.insert(name);
            }
        }
        deprecated.retain(|name, _| !plain.contains(name.as_str()));
        if deprecated.is_empty() {
            return Vec::new();
        }

        let mut out = Vec::new();
        for src in &ws.sources {
            if src.role != Role::Src {
                continue;
            }
            let code = &src.info.code;
            for (i, t) in code.iter().enumerate() {
                if t.kind != TokKind::Ident {
                    continue;
                }
                let Some(def_file) = deprecated.get(&t.text) else {
                    continue;
                };
                if *def_file == src.rel || src.info.in_test_region(t.line) {
                    continue;
                }
                let is_call = code.get(i + 1).is_some_and(|n| n.is_punct('('));
                let after_path = i > 0 && (code[i - 1].is_punct('.') || code[i - 1].is_punct(':'));
                if is_call && after_path {
                    out.push(Finding::new(
                        NAME,
                        &src.rel,
                        t.line,
                        format!(
                            "call to deprecated engine shim `{}` (defined in {def_file}); \
                             use the run_* API with an ExecCtx",
                            t.text
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scan, CheckConfig, SourceFile};

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: std::path::PathBuf::new(),
            sources: files
                .into_iter()
                .map(|(rel, text)| SourceFile {
                    rel: rel.into(),
                    role: Role::Src,
                    info: scan::scan(&crate::lexer::lex(text)),
                })
                .collect(),
            manifests: vec![],
            docs: vec![],
            config: CheckConfig::default(),
            analysis: std::sync::OnceLock::new(),
        }
    }

    #[test]
    fn flags_external_caller() {
        let w = ws(vec![
            (
                "crates/om-engine/src/engine.rs",
                "#[deprecated(note = \"use run_compare\")]\npub fn compare_by_name(&self) {}",
            ),
            (
                "crates/om-cli/src/lib.rs",
                "fn go(om: &OpportunityMap) { om.compare_by_name(); }",
            ),
        ]);
        let f = DeprecatedEngineApi.run(&w);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].file, "crates/om-cli/src/lib.rs");
    }

    #[test]
    fn ambiguous_names_are_skipped() {
        let w = ws(vec![
            (
                "crates/om-engine/src/engine.rs",
                "#[deprecated]\npub fn compare(&self) {}",
            ),
            (
                "crates/om-compare/src/rank.rs",
                "pub fn compare(&self) {}\nfn use_it(c: &Comparator) { c.compare(); }",
            ),
        ]);
        assert!(DeprecatedEngineApi.run(&w).is_empty());
    }

    #[test]
    fn defining_file_and_tests_are_exempt() {
        let w = ws(vec![(
            "crates/om-engine/src/engine.rs",
            "#[deprecated]\npub fn old_shim(&self) { self.old_shim_inner() }\n\
             #[cfg(test)]\nmod tests { fn t(om: &O) { om.old_shim(); } }",
        )]);
        assert!(DeprecatedEngineApi.run(&w).is_empty());
    }
}
