//! `vendor-only`: every dependency across the workspace resolves from a
//! `path` (or workspace inheritance), never a bare crates.io version.
//!
//! The seed repo was broken for exactly this reason: the build
//! environment's crates.io mirror is unreachable, so any
//! `foo = "1.0"` entry compiles on a developer laptop and dies in CI.
//! This check parses every `Cargo.toml` (a deliberately small TOML
//! subset: sections, `key = value` lines, inline tables) and flags
//! dependency entries that carry a `version` requirement without a
//! `path`, or are bare version strings.
//!
//! Suppress with a `# om-lint: allow(vendor-only) — <reason>` TOML
//! comment on the entry's line.

use crate::checks::Check;
use crate::{Finding, Workspace};

pub struct VendorOnly;

const NAME: &str = "vendor-only";

/// Sections whose entries are dependency requirements.
fn is_dep_section(section: &str) -> bool {
    let last = section.split('.').next_back().unwrap_or(section);
    matches!(
        last,
        "dependencies" | "dev-dependencies" | "build-dependencies"
    )
}

impl Check for VendorOnly {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "all Cargo dependencies resolve via path/workspace, never a bare registry version"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for manifest in &ws.manifests {
            let mut section = String::new();
            // `[dependencies.foo]` multi-line tables accumulate keys.
            let mut table_entry: Option<(String, u32, bool, bool)> = None; // (name, line, has_path_or_ws, has_version)
            for (idx, raw) in manifest.text.lines().enumerate() {
                let line_no = u32::try_from(idx).unwrap_or(u32::MAX - 1) + 1;
                let suppressed = raw.contains("om-lint: allow(vendor-only)")
                    && raw.split('#').nth(1).is_some_and(|c| {
                        c.split(')').nth(1).is_some_and(|r| {
                            !r.trim_start_matches(['—', '–', '-', ':', ' ']).trim().is_empty()
                        })
                    });
                let line = raw.split('#').next().unwrap_or("").trim();
                if line.is_empty() {
                    continue;
                }
                if let Some(rest) = line.strip_prefix('[') {
                    // Close out any pending [dependencies.foo] table.
                    if let Some((name, l, ok, has_version)) = table_entry.take() {
                        if has_version && !ok {
                            out.push(version_finding(&manifest.rel, l, &name));
                        }
                    }
                    section = rest.trim_end_matches(']').trim().to_owned();
                    if section.contains("dependencies.") {
                        if let Some(dep) = section.split('.').next_back() {
                            table_entry = Some((dep.to_owned(), line_no, false, false));
                        }
                    }
                    continue;
                }
                if let Some((name, _, ok, has_version)) = table_entry.as_mut() {
                    // Inside [dependencies.foo].
                    let _ = name;
                    if line.starts_with("path") || line.starts_with("workspace") {
                        *ok = true;
                    }
                    if line.starts_with("version") {
                        *has_version = true;
                    }
                    continue;
                }
                if !is_dep_section(&section) {
                    continue;
                }
                let Some((key, value)) = line.split_once('=') else {
                    continue;
                };
                let key = key.trim();
                let value = value.trim();
                if suppressed {
                    continue;
                }
                // `foo.workspace = true` / `foo.path = "..."` dotted keys.
                if key.ends_with(".workspace") || key.ends_with(".path") {
                    continue;
                }
                let ok = value.contains("workspace") && value.contains("true")
                    || value.contains("path");
                if !ok {
                    out.push(version_finding(&manifest.rel, line_no, key));
                }
            }
            if let Some((name, l, ok, has_version)) = table_entry.take() {
                if has_version && !ok {
                    out.push(version_finding(&manifest.rel, l, &name));
                }
            }
        }
        out
    }
}

fn version_finding(file: &str, line: u32, name: &str) -> Finding {
    Finding::new(
        NAME,
        file,
        line,
        format!(
            "dependency `{name}` resolves from the registry; the crates.io mirror is \
             unreachable here — vendor it under vendor/ and use a path/workspace dep"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckConfig, TextFile};

    fn run(toml: &str) -> Vec<Finding> {
        let ws = Workspace {
            root: std::path::PathBuf::new(),
            sources: vec![],
            manifests: vec![TextFile {
                rel: "crates/om-x/Cargo.toml".into(),
                text: toml.into(),
            }],
            docs: vec![],
            config: CheckConfig::default(),
            analysis: std::sync::OnceLock::new(),
        };
        VendorOnly.run(&ws)
    }

    #[test]
    fn path_and_workspace_deps_are_clean() {
        let f = run(
            "[dependencies]\nrand = { path = \"../../vendor/rand\" }\nom-cube.workspace = true\n\
             om-data = { workspace = true }\n\n[dev-dependencies]\nproptest.workspace = true\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bare_versions_are_flagged() {
        let f = run("[dependencies]\nserde = \"1.0\"\nlibc = { version = \"0.2\" }\n");
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("serde"));
    }

    #[test]
    fn multiline_dep_tables_work() {
        let clean = run("[dependencies.rand]\npath = \"../../vendor/rand\"\nversion = \"0.8\"\n");
        assert!(clean.is_empty(), "{clean:?}");
        let dirty = run("[dependencies.serde]\nversion = \"1.0\"\nfeatures = [\"derive\"]\n");
        assert_eq!(dirty.len(), 1);
    }

    #[test]
    fn non_dep_sections_are_ignored() {
        let f = run("[package]\nname = \"x\"\nversion = \"0.1.0\"\n[features]\nfast = []\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn toml_comment_suppression_with_reason() {
        let f = run(
            "[dependencies]\nserde = \"1.0\" # om-lint: allow(vendor-only) — fixture exercises the rule\n",
        );
        assert!(f.is_empty(), "{f:?}");
        let bare = run("[dependencies]\nserde = \"1.0\" # om-lint: allow(vendor-only)\n");
        assert_eq!(bare.len(), 1, "allow without reason must not suppress");
    }
}
