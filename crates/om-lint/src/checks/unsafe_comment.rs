//! `unsafe-safety-comment`: every `unsafe` block, fn, or impl is
//! preceded by a `// SAFETY:` comment justifying it.
//!
//! The workspace is `unsafe`-free today (even the vendored parking_lot
//! shim is safe code); this check keeps any future `unsafe` honest.
//! The comment must appear within the three lines above the `unsafe`
//! token (or on the same line), matching the convention
//! `clippy::undocumented_unsafe_blocks` enforces — but this check also
//! covers the vendored crates, which opt out of workspace lints.

use crate::checks::Check;
use crate::lexer::TokKind;
use crate::{Finding, Workspace};

pub struct UnsafeSafetyComment;

const NAME: &str = "unsafe-safety-comment";

impl Check for UnsafeSafetyComment {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "every unsafe block/impl/fn carries a // SAFETY: comment"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let mut out = Vec::new();
        for src in &ws.sources {
            // Work over the raw text lines for comment adjacency; the
            // token stream tells us which `unsafe` occurrences are code.
            for t in &src.info.code {
                if !(t.kind == TokKind::Ident && t.text == "unsafe") {
                    continue;
                }
                if has_safety_comment(src, t.line) {
                    continue;
                }
                out.push(Finding::new(
                    NAME,
                    &src.rel,
                    t.line,
                    "unsafe without a preceding // SAFETY: comment explaining the invariant",
                ));
            }
        }
        out
    }
}

/// A `SAFETY:` comment on the same line or within the three lines above.
fn has_safety_comment(src: &crate::SourceFile, line: u32) -> bool {
    // The scan keeps trivia out of `code`; re-derive comment lines from
    // the suppressions pass is not enough (SAFETY is not a suppression),
    // so look at the raw comment tokens captured at lex time.
    src.info
        .comment_lines
        .iter()
        .any(|&(l, ref text)| l + 3 >= line && l <= line && text.contains("SAFETY:"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scan, CheckConfig, Role, SourceFile};

    fn run(text: &str) -> Vec<Finding> {
        let ws = Workspace {
            root: std::path::PathBuf::new(),
            sources: vec![SourceFile {
                rel: "vendor/parking_lot/src/lib.rs".into(),
                role: Role::Src,
                info: scan::scan(&crate::lexer::lex(text)),
            }],
            manifests: vec![],
            docs: vec![],
            config: CheckConfig::default(),
            analysis: std::sync::OnceLock::new(),
        };
        UnsafeSafetyComment.run(&ws)
    }

    #[test]
    fn documented_unsafe_is_clean() {
        let f = run("// SAFETY: the pointer outlives the guard\nunsafe { deref(p) }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn bare_unsafe_is_flagged() {
        let f = run("fn f(p: *const u8) { unsafe { deref(p) } }\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn unsafe_in_comments_and_strings_is_ignored() {
        let f = run("// this crate avoids unsafe entirely\nlet s = \"unsafe\";\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_impl_needs_comment_too() {
        let flagged = run("unsafe impl Send for X {}\n");
        assert_eq!(flagged.len(), 1);
        let ok = run("// SAFETY: X owns no thread-affine state\nunsafe impl Send for X {}\n");
        assert!(ok.is_empty());
    }
}
