//! `envelope-codes`: the `/v1` error-code vocabulary must agree between
//! `om_api::ErrorCode` and the table in `docs/api.md`.
//!
//! From the source file it recovers, lexically:
//! - `as_str`: `ErrorCode::Variant => "wire_code"` pairs,
//! - `http_status`: `ErrorCode::A | ErrorCode::B => NNN` arms,
//!
//! and from the doc, table rows of the form `| `code` | NNN | ... |`.
//! Findings: codes missing from the doc, codes documented but unknown,
//! and status numbers that disagree.

use std::collections::BTreeMap;

use crate::checks::Check;
use crate::lexer::TokKind;
use crate::{Finding, Workspace};

pub struct EnvelopeCodes;

const NAME: &str = "envelope-codes";

impl Check for EnvelopeCodes {
    fn name(&self) -> &'static str {
        NAME
    }

    fn description(&self) -> &'static str {
        "om-api error codes and statuses match the table in docs/api.md"
    }

    fn run(&self, ws: &Workspace) -> Vec<Finding> {
        let Some(src) = ws.sources.iter().find(|s| s.rel == ws.config.envelope_source) else {
            return Vec::new(); // nothing to check in this tree
        };
        let code = &src.info.code;

        // Variant -> wire code, from the as_str body.
        let mut wire: BTreeMap<String, (String, u32)> = BTreeMap::new();
        if let Some(body) = fn_body(src, "as_str") {
            let mut i = body.0;
            while i + 4 <= body.1 {
                if code[i].is_ident("ErrorCode")
                    && code[i + 1].is_punct(':')
                    && code[i + 2].is_punct(':')
                    && code[i + 3].kind == TokKind::Ident
                {
                    // ... => "literal"
                    if let Some(lit) = code[i + 4..=body.1.min(i + 7)]
                        .iter()
                        .find(|t| t.kind == TokKind::Str)
                    {
                        wire.insert(code[i + 3].text.clone(), (lit.text.clone(), code[i + 3].line));
                    }
                    i += 4;
                } else {
                    i += 1;
                }
            }
        }

        // Wire code -> status, from the http_status body.
        let mut status: BTreeMap<String, u16> = BTreeMap::new();
        if let Some(body) = fn_body(src, "http_status") {
            let mut arm_variants: Vec<String> = Vec::new();
            let mut i = body.0;
            while i <= body.1 {
                if code[i].is_ident("ErrorCode")
                    && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && code.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    arm_variants.push(code[i + 3].text.clone());
                    i += 4;
                    continue;
                }
                if code[i].kind == TokKind::Num && !arm_variants.is_empty() {
                    if let Ok(n) = code[i].text.parse::<u16>() {
                        for v in arm_variants.drain(..) {
                            if let Some((w, _)) = wire.get(&v) {
                                status.insert(w.clone(), n);
                            }
                        }
                    }
                }
                i += 1;
            }
        }

        // Doc table rows.
        let mut documented: BTreeMap<String, (u16, u32)> = BTreeMap::new();
        let doc = ws.docs.iter().find(|d| d.rel == ws.config.envelope_doc);
        if let Some(doc) = doc {
            for (idx, line) in doc.text.lines().enumerate() {
                let Some((c, s)) = parse_table_row(line) else {
                    continue;
                };
                let line_no = u32::try_from(idx).unwrap_or(u32::MAX - 1) + 1;
                documented.insert(c, (s, line_no));
            }
        }

        let mut out = Vec::new();
        if wire.is_empty() {
            return out; // envelope source present but shape unrecognized: stay quiet
        }
        let doc_rel = doc.map_or(ws.config.envelope_doc.clone(), |d| d.rel.clone());
        for (variant, (w, line)) in &wire {
            match documented.get(w) {
                None => out.push(Finding::new(
                    NAME,
                    &src.rel,
                    *line,
                    format!(
                        "error code {w:?} (ErrorCode::{variant}) is not documented in the \
                         {doc_rel} code table"
                    ),
                )),
                Some((doc_status, doc_line)) => {
                    if let Some(code_status) = status.get(w) {
                        if code_status != doc_status {
                            out.push(Finding::new(
                                NAME,
                                &doc_rel,
                                *doc_line,
                                format!(
                                    "error code {w:?} documented as HTTP {doc_status} but \
                                     http_status() maps it to {code_status}"
                                ),
                            ));
                        }
                    }
                }
            }
        }
        for (w, (_, doc_line)) in &documented {
            if !wire.values().any(|(code, _)| code == w) {
                out.push(Finding::new(
                    NAME,
                    &doc_rel,
                    *doc_line,
                    format!("documented error code {w:?} does not exist in om_api::ErrorCode"),
                ));
            }
        }
        out
    }
}

/// Token range (inclusive) of the body of `fn name` in this file.
fn fn_body(src: &crate::SourceFile, name: &str) -> Option<(usize, usize)> {
    src.info
        .fns
        .iter()
        .find(|f| f.name == name)
        .map(|f| f.body)
}

/// Parse `| `code` | 404 | ... |` into ("code", 404).
fn parse_table_row(line: &str) -> Option<(String, u16)> {
    let line = line.trim();
    if !line.starts_with('|') {
        return None;
    }
    let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
    if cells.len() < 2 {
        return None;
    }
    let code = cells[0].strip_prefix('`')?.strip_suffix('`')?;
    if code.is_empty() || !code.bytes().all(|b| b.is_ascii_lowercase() || b == b'_') {
        return None;
    }
    let status: u16 = cells[1].parse().ok()?;
    Some((code.to_owned(), status))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scan, CheckConfig, Role, SourceFile, TextFile};

    const SRC: &str = r#"
impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
        }
    }
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::Overloaded => 503,
        }
    }
}
"#;

    fn ws(doc: &str) -> Workspace {
        Workspace {
            root: std::path::PathBuf::new(),
            sources: vec![SourceFile {
                rel: "crates/om-api/src/error.rs".into(),
                role: Role::Src,
                info: scan::scan(&crate::lexer::lex(SRC)),
            }],
            manifests: vec![],
            docs: vec![TextFile {
                rel: "docs/api.md".into(),
                text: doc.into(),
            }],
            config: CheckConfig::default(),
            analysis: std::sync::OnceLock::new(),
        }
    }

    #[test]
    fn matching_table_is_clean() {
        let w = ws("| `bad_request` | 400 | x |\n| `overloaded` | 503 | y |\n");
        assert!(EnvelopeCodes.run(&w).is_empty());
    }

    #[test]
    fn missing_and_unknown_and_mismatch() {
        let w = ws("| `bad_request` | 418 | x |\n| `gone` | 410 | y |\n");
        let f = EnvelopeCodes.run(&w);
        assert!(f.iter().any(|f| f.message.contains("\"overloaded\"")), "{f:?}");
        assert!(f.iter().any(|f| f.message.contains("\"gone\"")));
        assert!(f.iter().any(|f| f.message.contains("418")));
    }
}
