//! `unused-suppression`: an `// om-lint: allow(<check>)` whose target
//! line no longer triggers that check is itself a finding.
//!
//! Suppressions are point-in-time waivers; when the code under one is
//! fixed or refactored, the stale comment silently licenses the next
//! regression. This pass runs in the driver *before* suppressions are
//! applied: it sees every raw finding, so "the next code line no longer
//! triggers `<check>`" is a plain set lookup. Only names of real
//! catalog checks are considered — unknown names are already flagged by
//! suppression hygiene, and hygiene's own findings (`suppression`)
//! anchor to comment lines, not code lines, so they are skipped too.

use crate::{Finding, Workspace};

pub const NAME: &str = "unused-suppression";
pub const DESCRIPTION: &str =
    "every om-lint allow() still silences a live finding on its target line";

/// Run against the raw (pre-suppression) findings of every real check.
pub(crate) fn run(ws: &Workspace, raw: &[Finding]) -> Vec<Finding> {
    let known: Vec<&'static str> = super::all().iter().map(|c| c.name()).collect();
    let mut out = Vec::new();
    for src in &ws.sources {
        for sup in &src.info.suppressions {
            for check in &sup.checks {
                if !known.contains(&check.as_str()) {
                    continue;
                }
                let still_fires = raw.iter().any(|f| {
                    f.check == *check && f.file == src.rel && f.line == sup.applies_line
                });
                if !still_fires {
                    out.push(Finding::new(
                        NAME,
                        &src.rel,
                        sup.comment_line,
                        format!(
                            "allow({check}) no longer silences anything — line {} does not \
                             trigger `{check}`; delete the stale suppression",
                            sup.applies_line
                        ),
                    ));
                }
            }
        }
    }
    out
}
