//! `om-lint` CLI.
//!
//! ```text
//! om-lint check [--json] [paths…]   # lint the workspace (exit 1 on findings)
//! om-lint fixtures                  # self-test the checks against the corpus
//! om-lint checks                    # list the registered checks
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use om_lint::{checks, find_workspace_root, fixtures, jsonout, CheckConfig, Workspace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    match cmd {
        Some("check") => cmd_check(&args[1..]),
        Some("fixtures") => cmd_fixtures(),
        Some("checks") => {
            for c in checks::all() {
                println!("{:24} {}", c.name(), c.description());
            }
            for (name, desc) in checks::driver_passes() {
                println!("{name:24} {desc}");
            }
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            eprintln!(
                "usage: om-lint <command>\n\n  check [--json] [paths…]  lint the workspace; \
                 exit 1 if findings remain\n  fixtures                 run the self-test corpus\n  \
                 checks                   list registered checks"
            );
            ExitCode::from(u8::from(cmd.is_none()) * 2)
        }
        Some(other) => {
            eprintln!("om-lint: unknown command {other:?} (try --help)");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    find_workspace_root(&cwd).ok_or_else(|| "no [workspace] Cargo.toml above cwd".to_owned())
}

fn cmd_check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut filters: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            other if other.starts_with('-') => {
                eprintln!("om-lint: unknown flag {other:?}");
                return ExitCode::from(2);
            }
            path => filters.push(path.trim_end_matches('/').to_owned()),
        }
    }
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("om-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let ws = match Workspace::load(&root, CheckConfig::default()) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("om-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut findings = ws.run_checks();
    if !filters.is_empty() {
        findings.retain(|f| {
            filters
                .iter()
                .any(|p| f.file == *p || f.file.starts_with(&format!("{p}/")))
        });
    }
    if json {
        print!("{}", jsonout::render(&findings));
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.check, f.message);
        }
        let files = ws.sources.len() + ws.manifests.len();
        eprintln!(
            "om-lint: {} finding(s) across {files} files ({} checks)",
            findings.len(),
            checks::all().len(),
        );
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_fixtures() -> ExitCode {
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("om-lint: {e}");
            return ExitCode::from(2);
        }
    };
    run_fixture_dir(&fixtures::fixtures_dir(&root))
}

fn run_fixture_dir(dir: &Path) -> ExitCode {
    let outcomes = match fixtures::run_all(dir) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("om-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failed = 0usize;
    for o in &outcomes {
        let tag = if o.pass { "ok  " } else { "FAIL" };
        println!("{tag} {:24} {:9} {}", o.check, o.kind, o.detail);
        failed += usize::from(!o.pass);
    }
    eprintln!(
        "om-lint fixtures: {}/{} passed",
        outcomes.len() - failed,
        outcomes.len()
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
