//! Machine-readable findings output: a hand-rolled JSON emitter (the
//! workspace vendors no serde), stable field order, findings pre-sorted
//! by the caller. CI archives this as `target/om-lint.json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::Finding;

/// Render the findings report:
/// `{"version":1,"findings":[...],"counts":{"<check>":n}}`.
#[must_use]
pub fn render(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(&f.check).or_default() += 1;
    }
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"file\":{},\"line\":{},\"check\":{},\"message\":{}}}",
            escape(&f.file),
            f.line,
            escape(&f.check),
            escape(&f.message),
        );
    }
    out.push_str("],\"counts\":{");
    for (i, (check, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{n}", escape(check));
    }
    out.push_str("}}");
    out.push('\n');
    out
}

/// JSON string literal, quotes included.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report() {
        assert_eq!(render(&[]), "{\"version\":1,\"findings\":[],\"counts\":{}}\n");
    }

    #[test]
    fn findings_and_counts() {
        let fs = vec![
            Finding::new("panic-path", "a.rs", 3, "x"),
            Finding::new("panic-path", "b.rs", 7, "y"),
            Finding::new("vendor-only", "Cargo.toml", 1, "z"),
        ];
        let json = render(&fs);
        assert!(json.contains("\"counts\":{\"panic-path\":2,\"vendor-only\":1}"));
        assert!(json.contains("\"file\":\"a.rs\",\"line\":3"));
    }

    #[test]
    fn strings_are_escaped() {
        let f = Finding::new("c", "a.rs", 1, "say \"hi\"\nback\\slash");
        let json = render(&[f]);
        assert!(json.contains(r#""say \"hi\"\nback\\slash""#));
    }
}
