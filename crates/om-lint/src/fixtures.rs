//! Fixture self-test: each check ships a `violation/` mini-workspace it
//! must flag and a `clean/` mini-workspace it must pass. The corpus
//! lives under `crates/om-lint/tests/fixtures/<check>/{violation,clean}`
//! and mirrors the real repo layout (`crates/om-server/src/...`), so the
//! checks run against it completely unmodified.
//!
//! `om-lint fixtures` runs this as a CI gate: a check that stops firing
//! on its own seeded violation (or starts firing on its clean twin) is a
//! broken check, caught before it silently stops protecting the repo.

use std::fs;
use std::path::{Path, PathBuf};

use crate::{CheckConfig, Workspace};

/// Outcome of one fixture run.
#[derive(Debug)]
pub struct FixtureOutcome {
    pub check: String,
    /// `"violation"` or `"clean"`.
    pub kind: String,
    pub pass: bool,
    pub detail: String,
}

/// Location of the fixture corpus under a workspace root.
#[must_use]
pub fn fixtures_dir(workspace_root: &Path) -> PathBuf {
    workspace_root.join("crates/om-lint/tests/fixtures")
}

/// Run every fixture under `dir`; one outcome per (check, kind) pair.
///
/// # Errors
/// I/O failures walking the corpus, or an empty/missing corpus.
pub fn run_all(dir: &Path) -> Result<Vec<FixtureOutcome>, String> {
    let mut checks: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("fixture corpus missing at {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    checks.sort();
    if checks.is_empty() {
        return Err(format!("fixture corpus at {} is empty", dir.display()));
    }
    let mut out = Vec::new();
    for check_dir in checks {
        let check = check_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        for kind in ["violation", "clean"] {
            let root = check_dir.join(kind);
            if !root.is_dir() {
                out.push(FixtureOutcome {
                    check: check.clone(),
                    kind: kind.to_owned(),
                    pass: false,
                    detail: format!("missing fixture dir {}", root.display()),
                });
                continue;
            }
            out.push(run_one(&check, kind, &root)?);
        }
    }
    Ok(out)
}

fn run_one(check: &str, kind: &str, root: &Path) -> Result<FixtureOutcome, String> {
    let ws = Workspace::load(root, CheckConfig::default())?;
    let findings = ws.run_checks();
    let hits: Vec<_> = findings.iter().filter(|f| f.check == check).collect();
    // A fixture must not trip *other* checks either — that would mean
    // the corpus exercises more than it claims.
    let strays: Vec<_> = findings.iter().filter(|f| f.check != check).collect();
    let (pass, detail) = if !strays.is_empty() {
        (
            false,
            format!(
                "stray finding from another check: {} {}:{} {}",
                strays[0].check, strays[0].file, strays[0].line, strays[0].message
            ),
        )
    } else if kind == "violation" {
        if hits.is_empty() {
            (false, "expected at least one finding, got none".to_owned())
        } else {
            (true, format!("{} finding(s)", hits.len()))
        }
    } else if let Some(f) = hits.first() {
        (
            false,
            format!("expected clean, got {}:{} {}", f.file, f.line, f.message),
        )
    } else {
        (true, "clean".to_owned())
    };
    Ok(FixtureOutcome {
        check: check.to_owned(),
        kind: kind.to_owned(),
        pass,
        detail,
    })
}
