//! Workspace-wide call graph over the scanned token streams.
//!
//! Nodes are production functions (vendor trees, test files and
//! `#[cfg(test)]` regions excluded); edges come from name resolution
//! scoped by crate visibility (a caller in crate `C` can only reach
//! crates in `C`'s transitive `om-*` dependency closure, mined from the
//! `Cargo.toml` manifests) and by impl block (`self.m(...)` prefers
//! methods of the caller's own type; `Q::m(...)` prefers methods of
//! `Q`). Resolution is **conservative on ambiguity**: a method call
//! that several visible types implement gets an edge to every
//! candidate. Methods whose names shadow ubiquitous std APIs
//! ([`OPAQUE_METHODS`]: `get`, `insert`, `parse`, `lock`, ...) are
//! never resolved by bare name — a distinctive method name is the price
//! of interprocedural visibility, which is why e.g. `ShardClient`
//! exposes `expect_ok` rather than relying on `get`/`post` call sites
//! resolving. Calls through closures, function pointers and trait
//! objects whose concrete type never appears at the call site are
//! invisible (documented under-approximation in docs/lint.md).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::{Role, Workspace};

/// One production function in the workspace.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into `ws.sources`.
    pub file: usize,
    /// Index into `sources[file].info.fns`.
    pub fn_idx: usize,
    /// Crate the file belongs to (`om-cluster`, ..., `root`).
    pub krate: String,
    pub name: String,
    /// Self type of the enclosing impl/trait block.
    pub owner: Option<String>,
    /// Trait implemented by the enclosing block.
    pub trait_impl: Option<String>,
    /// Body token range (braces included) into the file's code tokens.
    pub body: (usize, usize),
    pub line: u32,
}

/// One resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Code-token index of the callee name.
    pub tok: usize,
    pub line: u32,
    pub name: String,
    /// Candidate callee nodes (every visible candidate on ambiguity).
    pub targets: Vec<usize>,
}

/// The workspace call graph: nodes plus per-node resolved call sites.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// `calls[n]` = resolved call sites inside `nodes[n]`, token order.
    pub calls: Vec<Vec<CallSite>>,
}

/// Method names too generic to resolve by name: each shadows a std
/// collection/iterator/sync API that production code calls constantly,
/// so a bare-name edge would wire every `map.get(...)` to every
/// workspace `get`. Sync/channel/io names are here too — those sites
/// are classified as lock acquisitions or blocking intrinsics by the
/// effect pass instead of as calls.
pub const OPAQUE_METHODS: &[&str] = &[
    "append", "as_str", "check", "clear", "clone", "cloned", "collect", "compare_exchange",
    "contains", "contains_key", "default", "drain", "entry", "extend", "fetch_add", "fetch_sub",
    "filter", "find", "flush", "fold", "get", "get_mut", "insert", "into_iter", "is_empty",
    "iter", "join", "len", "load", "lock", "map", "max", "min", "new", "next", "open", "parse",
    "peek", "pop", "position", "push", "read", "recv", "remove", "replace", "send", "set",
    "sort", "split", "store", "swap", "take", "to_owned", "to_string", "to_vec", "unwrap_or",
    "write",
];

/// Keywords that can directly precede `(` without being a call.
const HEAD_KEYWORDS: &[&str] = &[
    "as", "box", "break", "continue", "dyn", "else", "fn", "for", "if", "impl", "in", "let",
    "loop", "match", "move", "mut", "ref", "return", "unsafe", "where", "while",
];

/// Crate a workspace-relative path belongs to.
#[must_use]
pub fn crate_of(rel: &str) -> String {
    for prefix in ["crates/", "vendor/"] {
        if let Some(rest) = rel.strip_prefix(prefix) {
            if let Some((name, _)) = rest.split_once('/') {
                return name.to_owned();
            }
        }
    }
    "root".to_owned()
}

/// Crate dependency sets mined from the manifests: crate name →
/// transitive closure of its `om-*`/path dependencies (self included).
/// Crates without a manifest (fixture mini-workspaces) are absent and
/// treated as seeing everything.
fn dependency_closure(ws: &Workspace) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for m in &ws.manifests {
        let krate = if m.rel == "Cargo.toml" {
            "root".to_owned()
        } else {
            crate_of(&m.rel)
        };
        if m.rel.starts_with("vendor/") {
            continue;
        }
        let mut in_deps = false;
        let mut deps = BTreeSet::new();
        for line in m.text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line.contains("dependencies");
                continue;
            }
            if !in_deps || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let name: String = line
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !name.is_empty() {
                deps.insert(name);
            }
        }
        deps.insert(krate.clone());
        direct.insert(krate, deps);
    }
    // Transitive closure (the workspace dep graph is tiny).
    let mut closed = direct.clone();
    loop {
        let mut changed = false;
        for (_, set) in closed.iter_mut() {
            let mut add = BTreeSet::new();
            for dep in set.iter() {
                if let Some(sub) = direct.get(dep) {
                    add.extend(sub.iter().cloned());
                }
            }
            for d in add {
                changed |= set.insert(d);
            }
        }
        if !changed {
            break;
        }
    }
    closed
}

impl CallGraph {
    /// Build the graph for `ws`.
    #[must_use]
    pub fn build(ws: &Workspace) -> Self {
        let mut nodes = Vec::new();
        for (fi, src) in ws.sources.iter().enumerate() {
            if src.role != Role::Src || src.rel.starts_with("vendor/") {
                continue;
            }
            for (gi, f) in src.info.fns.iter().enumerate() {
                if src.info.in_test_region(f.start_line) {
                    continue;
                }
                nodes.push(FnNode {
                    file: fi,
                    fn_idx: gi,
                    krate: crate_of(&src.rel),
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    trait_impl: f.trait_impl.clone(),
                    body: f.body,
                    line: f.start_line,
                });
            }
        }

        // Resolution tables.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut frees: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut owned: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            match &n.owner {
                Some(o) => {
                    methods.entry(&n.name).or_default().push(i);
                    owned.entry((o.as_str(), n.name.as_str())).or_default().push(i);
                }
                None => frees.entry(&n.name).or_default().push(i),
            }
        }
        let deps = dependency_closure(ws);
        let visible = |caller: &str, callee: &str| -> bool {
            caller == callee || deps.get(caller).is_none_or(|set| set.contains(callee))
        };

        let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); nodes.len()];
        for (ni, n) in nodes.iter().enumerate() {
            let src = &ws.sources[n.file];
            let code = &src.info.code;
            // Token ranges of fns nested inside this one get attributed
            // to the inner fn, not to us.
            let nested: Vec<(usize, usize)> = src
                .info
                .fns
                .iter()
                .filter(|g| g.body.0 > n.body.0 && g.body.1 < n.body.1)
                .map(|g| g.body)
                .collect();
            let mut k = n.body.0 + 1;
            while k < n.body.1 {
                if let Some(&(_, close)) = nested.iter().find(|&&(open, _)| open == k) {
                    k = close + 1;
                    continue;
                }
                let t = &code[k];
                let is_call_head = t.kind == TokKind::Ident
                    && !HEAD_KEYWORDS.contains(&t.text.as_str())
                    && code.get(k + 1).is_some_and(|u| u.is_punct('('));
                if !is_call_head {
                    k += 1;
                    continue;
                }
                let name = t.text.as_str();
                let prev_dot = k >= 1 && code[k - 1].is_punct('.');
                let prev_path =
                    k >= 2 && code[k - 1].is_punct(':') && code[k - 2].is_punct(':');
                let mut targets: Vec<usize> = Vec::new();
                if prev_dot {
                    if !OPAQUE_METHODS.contains(&name) {
                        // `self.m(...)` prefers the caller's own type.
                        let recv_self = k >= 2 && code[k - 2].is_ident("self");
                        let own = n.owner.as_deref().filter(|_| recv_self).and_then(|o| {
                            owned.get(&(o, name)).filter(|v| !v.is_empty())
                        });
                        let pool = own.or_else(|| methods.get(name));
                        if let Some(pool) = pool {
                            targets.extend(
                                pool.iter()
                                    .copied()
                                    .filter(|&m| visible(&n.krate, &nodes[m].krate)),
                            );
                        }
                    }
                } else if prev_path {
                    let qualifier = code.get(k.wrapping_sub(3)).filter(|q| q.kind == TokKind::Ident);
                    if let Some(q) = qualifier {
                        let owner_name = if q.is_ident("Self") {
                            n.owner.clone()
                        } else {
                            Some(q.text.clone())
                        };
                        if let Some(o) = owner_name {
                            if let Some(pool) = owned.get(&(o.as_str(), name)) {
                                targets.extend(
                                    pool.iter()
                                        .copied()
                                        .filter(|&m| visible(&n.krate, &nodes[m].krate)),
                                );
                            }
                        }
                        // `module::free_fn(...)`: the qualifier is a
                        // module, not a type — fall back to free fns.
                        if targets.is_empty() && !OPAQUE_METHODS.contains(&name) {
                            if let Some(pool) = frees.get(name) {
                                targets.extend(
                                    pool.iter()
                                        .copied()
                                        .filter(|&m| visible(&n.krate, &nodes[m].krate)),
                                );
                            }
                        }
                    }
                } else if !(k >= 1 && code[k - 1].is_ident("fn")) {
                    if let Some(pool) = frees.get(name) {
                        targets.extend(
                            pool.iter()
                                .copied()
                                .filter(|&m| visible(&n.krate, &nodes[m].krate)),
                        );
                    }
                }
                if !targets.is_empty() {
                    targets.sort_unstable();
                    targets.dedup();
                    calls[ni].push(CallSite {
                        tok: k,
                        line: t.line,
                        name: name.to_owned(),
                        targets,
                    });
                }
                k += 1;
            }
        }
        Self { nodes, calls }
    }

    /// Node index of the innermost production fn containing code-token
    /// `tok` of file `file`.
    #[must_use]
    pub fn fn_at(&self, file: usize, tok: usize) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && n.body.0 <= tok && tok <= n.body.1)
            .max_by_key(|(_, n)| n.body.0)
            .map(|(i, _)| i)
    }

    /// All nodes reachable from `roots` (inclusive) over call edges.
    #[must_use]
    pub fn reachable(&self, roots: &[usize]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut stack: Vec<usize> = roots.to_vec();
        while let Some(n) = stack.pop() {
            for site in &self.calls[n] {
                for &t in &site.targets {
                    if seen.insert(t) {
                        stack.push(t);
                    }
                }
            }
        }
        seen
    }
}

/// Render a node as `file.rs:line fn_name` for witnesses and messages.
#[must_use]
pub fn describe(ws: &Workspace, g: &CallGraph, n: usize) -> String {
    let node = &g.nodes[n];
    let rel = &ws.sources[node.file].rel;
    let short = rel.rsplit('/').next().unwrap_or(rel);
    format!("{} ({short}:{})", node.name, node.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan;
    use crate::{lexer, CheckConfig, SourceFile, TextFile};
    use std::path::PathBuf;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        ws_with_manifests(files, Vec::new())
    }

    fn ws_with_manifests(files: Vec<(&str, &str)>, manifests: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: PathBuf::from("/x"),
            sources: files
                .into_iter()
                .map(|(rel, text)| SourceFile {
                    rel: rel.to_owned(),
                    role: Role::Src,
                    info: scan::scan(&lexer::lex(text)),
                })
                .collect(),
            manifests: manifests
                .into_iter()
                .map(|(rel, text)| TextFile {
                    rel: rel.to_owned(),
                    text: text.to_owned(),
                })
                .collect(),
            docs: Vec::new(),
            config: CheckConfig::default(),
            analysis: std::sync::OnceLock::new(),
        }
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.nodes.iter().position(|n| n.name == name).unwrap()
    }

    fn edge(g: &CallGraph, from: &str, to: &str) -> bool {
        let f = node(g, from);
        let t = node(g, to);
        g.calls[f].iter().any(|s| s.targets.contains(&t))
    }

    #[test]
    fn cross_crate_edges_respect_manifest_visibility() {
        let files = vec![
            ("crates/a/src/lib.rs", "pub fn caller() { helper(); }\n"),
            ("crates/b/src/lib.rs", "pub fn helper() {}\n"),
            ("crates/c/src/lib.rs", "pub fn lone() { helper(); }\n"),
        ];
        let manifests = vec![
            ("crates/a/Cargo.toml", "[dependencies]\nb = { path = \"../b\" }\n"),
            ("crates/b/Cargo.toml", "[dependencies]\n"),
            ("crates/c/Cargo.toml", "[dependencies]\n"),
        ];
        let g = CallGraph::build(&ws_with_manifests(files, manifests));
        assert!(edge(&g, "caller", "helper"), "a depends on b: edge expected");
        assert!(!edge(&g, "lone", "helper"), "c does not depend on b: no edge");
    }

    #[test]
    fn method_vs_free_fn_disambiguation() {
        let src = "struct A;\nimpl A {\n  fn work(&self) { self.step(); step(); }\n  fn step(&self) {}\n}\nfn step() {}\n";
        let g = CallGraph::build(&ws(vec![("crates/x/src/lib.rs", src)]));
        let work = node(&g, "work");
        let self_step = g
            .nodes
            .iter()
            .position(|n| n.name == "step" && n.owner.as_deref() == Some("A"))
            .unwrap();
        let free_step = g
            .nodes
            .iter()
            .position(|n| n.name == "step" && n.owner.is_none())
            .unwrap();
        let method_site = &g.calls[work][0];
        assert_eq!(method_site.targets, vec![self_step], "self.step() binds to A::step");
        let free_site = &g.calls[work][1];
        assert_eq!(free_site.targets, vec![free_step], "bare step() binds to the free fn");
    }

    #[test]
    fn recursion_terminates_reachability() {
        let src = "fn a() { b(); }\nfn b() { a(); }\n";
        let g = CallGraph::build(&ws(vec![("crates/x/src/lib.rs", src)]));
        let reach = g.reachable(&[node(&g, "a")]);
        assert_eq!(reach.len(), 2);
    }

    #[test]
    fn ambiguous_method_gets_every_candidate() {
        // Trait-object conservatism: `pop.fetch()` could be either impl,
        // so both get edges.
        let src = "struct A;\nstruct B;\nimpl A { fn fetch(&self) {} }\nimpl B { fn fetch(&self) {} }\nfn drive() { pop.fetch(); }\n";
        let g = CallGraph::build(&ws(vec![("crates/x/src/lib.rs", src)]));
        let drive = node(&g, "drive");
        assert_eq!(g.calls[drive][0].targets.len(), 2);
    }

    #[test]
    fn opaque_methods_resolve_to_nothing() {
        let src = "struct A;\nimpl A { fn get(&self) {} }\nfn drive() { m.get(); }\n";
        let g = CallGraph::build(&ws(vec![("crates/x/src/lib.rs", src)]));
        let drive = node(&g, "drive");
        assert!(g.calls[drive].is_empty(), "std-shadowed names never resolve");
    }

    #[test]
    fn qualified_calls_bind_by_type_then_module() {
        let src = "struct A;\nimpl A { fn open() {} }\nmod util {}\nfn helper() {}\nfn drive() { A::open(); util::helper(); }\n";
        let g = CallGraph::build(&ws(vec![("crates/x/src/lib.rs", src)]));
        assert!(edge(&g, "drive", "open"));
        assert!(edge(&g, "drive", "helper"));
    }
}
