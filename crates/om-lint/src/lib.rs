//! om-lint: a zero-dependency workspace invariant checker.
//!
//! The last four PRs bought production guarantees — panic-isolated
//! request paths, registered `/metrics` counters, a documented error
//! envelope, vendored-only dependencies, WAL frame discipline — but
//! none of them were machine-checked. This crate mines those rules out
//! of the source tree and enforces them: a hand-rolled Rust lexer
//! ([`lexer`]), a lightweight item scanner ([`scan`]), a workspace
//! call graph with per-function effect summaries ([`callgraph`],
//! [`effects`]), and ten repo-specific checks ([`checks`]) that run
//! per-file, workspace-wide and interprocedurally, report `file:line`
//! findings (optionally as JSON), and honor inline suppressions:
//!
//! ```text
//! // om-lint: allow(panic-path) — pool invariant: workers outlive jobs
//! ```
//!
//! Run as `cargo run -p om-lint -- check [--json] [paths…]`, or
//! `cargo run -p om-lint -- fixtures` for the self-test corpus.

pub mod callgraph;
pub mod checks;
pub mod effects;
pub mod fixtures;
pub mod jsonout;
pub mod lexer;
pub mod scan;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use scan::ScanInfo;

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated on every platform.
    pub file: String,
    pub line: u32,
    /// The check that produced it (kebab-case, suppressible by name).
    pub check: String,
    pub message: String,
}

impl Finding {
    #[must_use]
    pub fn new(check: &str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Self {
            file: file.to_owned(),
            line,
            check: check.to_owned(),
            message: message.into(),
        }
    }
}

/// What kind of target a source file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library / binary source: production invariants apply in full.
    Src,
    /// Tests, benches, examples: exempt from the panic-path rules.
    Test,
}

/// One lexed + scanned Rust source file.
#[derive(Debug)]
pub struct SourceFile {
    pub rel: String,
    pub role: Role,
    pub info: ScanInfo,
}

/// One raw text file (manifests and docs are parsed line-wise).
#[derive(Debug)]
pub struct TextFile {
    pub rel: String,
    pub text: String,
}

/// Paths each check anchors to. Defaults name the real repo layout;
/// fixture mini-workspaces mirror the same shape so the checks run
/// unmodified against them.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Path prefixes where `panic-path` forbids panicking constructs.
    pub panic_scopes: Vec<String>,
    /// Files whose string literals define the rendered `/metrics` set.
    pub metrics_render_files: Vec<String>,
    /// The file defining `ErrorCode::as_str` / `http_status`.
    pub envelope_source: String,
    /// The markdown file carrying the error-code table.
    pub envelope_doc: String,
    /// The file declaring `SEAMS`, the failpoint name registry.
    pub failpoint_registry: String,
    /// Path prefixes where `budget-coverage` requires request-path
    /// loops to poll a Budget/failpoint seam.
    pub budget_scopes: Vec<String>,
    /// Files whose fns are `/v1` handler roots for reachability.
    pub handler_files: Vec<String>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            panic_scopes: vec![
                "crates/om-server/src/".into(),
                "crates/om-api/src/".into(),
                "crates/om-ingest/src/".into(),
                "crates/om-exec/src/".into(),
                "crates/om-cluster/src/".into(),
                "crates/om-explore/src/".into(),
                // The counting kernel sits on every conditioned request
                // path (drill levels, batch prefixes, /internal/*).
                "crates/om-cube/src/bitmap.rs".into(),
                "crates/om-cube/src/kernel.rs".into(),
            ],
            metrics_render_files: vec![
                "crates/om-server/src/metrics.rs".into(),
                "crates/om-ingest/src/ingest.rs".into(),
                "crates/om-cluster/src/metrics.rs".into(),
            ],
            envelope_source: "crates/om-api/src/error.rs".into(),
            envelope_doc: "docs/api.md".into(),
            failpoint_registry: "crates/om-fault/src/fail.rs".into(),
            budget_scopes: vec![
                "crates/om-server/src/".into(),
                "crates/om-cluster/src/".into(),
                "crates/om-exec/src/".into(),
                "crates/om-explore/src/".into(),
                "crates/om-compare/src/".into(),
                "crates/om-gi/src/".into(),
                "crates/om-engine/src/".into(),
                "crates/om-cube/src/".into(),
                "crates/om-ingest/src/".into(),
                // om-api is deliberately out of scope: its parsers are
                // pure, size-capped codecs with no I/O to get stuck on.
            ],
            handler_files: vec!["crates/om-server/src/v1.rs".into()],
        }
    }
}

/// The loaded workspace: every Rust file lexed and scanned, manifests
/// and docs as text.
pub struct Workspace {
    pub root: PathBuf,
    pub sources: Vec<SourceFile>,
    pub manifests: Vec<TextFile>,
    pub docs: Vec<TextFile>,
    pub config: CheckConfig,
    /// Lazily built interprocedural analysis, shared by every check
    /// that needs the call graph (built once per run, not per check).
    pub analysis: OnceLock<effects::Analysis>,
}

/// Directories scanned for sources/manifests, relative to the root.
const SCAN_DIRS: [&str; 5] = ["crates", "vendor", "src", "tests", "examples"];

impl Workspace {
    /// Load every relevant file under `root`.
    ///
    /// # Errors
    /// I/O failures reading the tree.
    pub fn load(root: &Path, config: CheckConfig) -> Result<Self, String> {
        let mut sources = Vec::new();
        let mut manifests = Vec::new();
        let mut docs = Vec::new();

        for top in SCAN_DIRS {
            let dir = root.join(top);
            if dir.is_dir() {
                walk(&dir, root, &mut sources, &mut manifests)?;
            }
        }
        let root_manifest = root.join("Cargo.toml");
        if root_manifest.is_file() {
            manifests.push(load_text(&root_manifest, root)?);
        }
        let docs_dir = root.join("docs");
        if docs_dir.is_dir() {
            let mut entries: Vec<_> = fs::read_dir(&docs_dir)
                .map_err(|e| format!("read {}: {e}", docs_dir.display()))?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "md"))
                .collect();
            entries.sort();
            for p in entries {
                docs.push(load_text(&p, root)?);
            }
        }
        let readme = root.join("README.md");
        if readme.is_file() {
            docs.push(load_text(&readme, root)?);
        }

        sources.sort_by(|a, b| a.rel.cmp(&b.rel));
        manifests.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Self {
            root: root.to_owned(),
            sources,
            manifests,
            docs,
            config,
            analysis: OnceLock::new(),
        })
    }

    /// The interprocedural analysis (call graph + effect summaries),
    /// built on first use and cached for the rest of the run.
    #[must_use]
    pub fn analysis(&self) -> &effects::Analysis {
        self.analysis.get_or_init(|| effects::analyze(self))
    }

    /// Run every check plus suppression hygiene; returns findings sorted
    /// by file, line, check, with suppressed findings removed.
    #[must_use]
    pub fn run_checks(&self) -> Vec<Finding> {
        let mut findings: Vec<Finding> = Vec::new();
        for check in checks::all() {
            findings.extend(check.run(self));
        }
        // Stale-suppression detection needs the raw findings *before*
        // suppressions erase them.
        findings.extend(checks::unused_suppression::run(self, &findings));
        findings.extend(self.suppression_hygiene());
        // Apply .rs suppressions (manifest suppressions are handled by
        // the vendor check itself, which reads `#` comments).
        let by_file: BTreeMap<&str, &ScanInfo> = self
            .sources
            .iter()
            .map(|s| (s.rel.as_str(), &s.info))
            .collect();
        findings.retain(|f| {
            by_file
                .get(f.file.as_str())
                .is_none_or(|info| !info.is_suppressed(&f.check, f.line))
        });
        findings.sort();
        findings.dedup();
        findings
    }

    /// Every `allow` must carry a reason and name a known check.
    fn suppression_hygiene(&self) -> Vec<Finding> {
        let mut known: Vec<&str> = checks::all().iter().map(|c| c.name()).collect();
        known.extend(checks::driver_passes().iter().map(|(n, _)| *n));
        let mut out = Vec::new();
        for src in &self.sources {
            for sup in &src.info.suppressions {
                if sup.reason.is_empty() {
                    out.push(Finding::new(
                        "suppression",
                        &src.rel,
                        sup.comment_line,
                        "om-lint allow without a reason; write \
                         `// om-lint: allow(<check>) — <why this is safe>`",
                    ));
                }
                for c in &sup.checks {
                    if !known.contains(&c.as_str()) {
                        out.push(Finding::new(
                            "suppression",
                            &src.rel,
                            sup.comment_line,
                            format!("om-lint allow names unknown check {c:?}"),
                        ));
                    }
                }
            }
        }
        out
    }
}

fn load_text(path: &Path, root: &Path) -> Result<TextFile, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Ok(TextFile {
        rel: rel_path(path, root),
        text,
    })
}

fn rel_path(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn walk(
    dir: &Path,
    root: &Path,
    sources: &mut Vec<SourceFile>,
    manifests: &mut Vec<TextFile>,
) -> Result<(), String> {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let rel = rel_path(&path, root);
        // The lint's own fixture corpus is seeded with violations on
        // purpose; never lint it as part of the real workspace.
        if rel.contains("tests/fixtures") || rel.contains("/target/") || rel.ends_with("/target") {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, sources, manifests)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            let text =
                fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let role = if rel.contains("/tests/")
                || rel.contains("/benches/")
                || rel.contains("/examples/")
                || rel.starts_with("tests/")
                || rel.starts_with("examples/")
            {
                Role::Test
            } else {
                Role::Src
            };
            sources.push(SourceFile {
                rel,
                role,
                info: scan::scan(&lexer::lex(&text)),
            });
        } else if path.file_name().is_some_and(|n| n == "Cargo.toml") {
            manifests.push(load_text(&path, root)?);
        }
    }
    Ok(())
}

/// Walk upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_owned());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_owned);
    }
    None
}
