//! Per-function effect summaries propagated over the call graph.
//!
//! For every production function the local pass records:
//!
//! - **lock acquisitions** — zero-arg `.lock()` always counts (aliases
//!   like `slot.lock()` included); zero-arg `.read()`/`.write()` count
//!   only when the receiver tail names a declared `Mutex`/`RwLock`
//!   field or static. Guard liveness follows Rust drop rules closely
//!   enough to lint: a `let`-bound guard lives to the end of its
//!   enclosing block (or an explicit `drop(binding)`); a temporary in
//!   an `if let`/`while let`/`match` head lives through the whole
//!   construct including `else` chains; a plain statement temporary
//!   dies at its `;`.
//! - **blocking sites** — socket/file intrinsics (`TcpStream::*`,
//!   `File::*`, `fs::*`, `connect*`, `accept`, `read`/`write` with
//!   arguments, `read_exact`/`write_all`/`flush`/`sync_*`), channel
//!   waits (`recv`, `recv_timeout`, `wait`), `sleep`, and zero-arg
//!   `.join()` on thread handles.
//! - **budget/failpoint polls** — `budget.check()` (any receiver whose
//!   name contains `budget`) and `inject("seam.name")`.
//! - **panic potential** — `unwrap`/`expect`/`panic!` (informational;
//!   the `panic-path` check owns the precise rule).
//!
//! The fixpoint then propagates *blocks*, *polls*, *acquires* and
//! *may_panic* over call edges until stable. Over-approximations: a
//! guard bound by a pattern we don't model lives to its construct end;
//! ambiguous calls taint every candidate. Under-approximations: guards
//! returned from helper functions (e.g. a `fn lock() -> MutexGuard`
//! wrapper) are only tracked inside the helper; iterating a channel
//! receiver with `for` blocks without any visible call. Both are
//! documented in docs/lint.md.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::{Role, Workspace};

/// One lock acquisition with its live token range.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Crate-qualified declared lock name (`om-ingest/state`), if the
    /// receiver tail matched a declaration; `None` for aliased guards.
    pub lock: Option<String>,
    /// Receiver-tail text, for messages (`state`, `slot`, ...).
    pub recv: String,
    /// Code-token index of the `lock`/`read`/`write` ident.
    pub tok: usize,
    pub line: u32,
    /// Inclusive code-token range the guard is live over.
    pub live: (usize, usize),
}

/// Effects observed directly in one function body.
#[derive(Debug, Clone, Default)]
pub struct LocalEffects {
    pub acqs: Vec<Acquisition>,
    /// (token, line, description) of every blocking intrinsic.
    pub blocking: Vec<(usize, u32, String)>,
    /// Token indices of budget/failpoint polls.
    pub polls: Vec<usize>,
    pub may_panic: bool,
}

/// The propagated summary of one function.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// `Some(witness)` if the function may block (directly or through
    /// any callee); the witness names the chain for messages.
    pub blocks: Option<String>,
    /// Does the function poll a budget or failpoint seam (directly or
    /// through any callee)?
    pub polls: bool,
    /// Declared locks this function may acquire, directly or through
    /// callees, with a witness each.
    pub acquires: BTreeMap<String, String>,
    pub may_panic: bool,
}

/// Everything the interprocedural checks consume, built once per run.
#[derive(Debug, Default)]
pub struct Analysis {
    pub graph: CallGraph,
    /// Indexed like `graph.nodes`.
    pub locals: Vec<LocalEffects>,
    /// Indexed like `graph.nodes`.
    pub summaries: Vec<FnSummary>,
    /// Declared lock names, crate-qualified.
    pub locks: BTreeSet<String>,
}

/// Blocking method names that block with arguments allowed.
const BLOCKING_METHODS: &[&str] = &[
    "accept", "connect", "connect_timeout", "read_exact", "read_line", "read_to_end",
    "read_to_string", "recv", "recv_timeout", "sync_all", "sync_data", "wait", "wait_timeout",
    "write_all",
];

/// Type qualifiers whose associated calls are blocking I/O.
const BLOCKING_TYPES: &[&str] = &["File", "OpenOptions", "TcpListener", "TcpStream", "UdpSocket", "fs"];

/// Mine `name: Mutex<...>` / `name: RwLock<...>` declarations (fields
/// and statics, through wrappers like `Vec<Mutex<..>>`) plus
/// `let name = Mutex::new(...)` locals, crate-qualified.
#[must_use]
pub fn declared_locks(ws: &Workspace) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for src in &ws.sources {
        if src.role != Role::Src || src.rel.starts_with("vendor/") {
            continue;
        }
        let krate = crate::callgraph::crate_of(&src.rel);
        let code = &src.info.code;
        for (i, t) in code.iter().enumerate() {
            if !(t.is_ident("Mutex") || t.is_ident("RwLock"))
                || !code.get(i + 1).is_some_and(|u| u.is_punct('<'))
            {
                // `let x = Mutex::new(..)` declares too.
                if (t.is_ident("Mutex") || t.is_ident("RwLock"))
                    && code.get(i + 1).is_some_and(|u| u.is_punct(':'))
                    && i >= 2
                    && code[i - 1].is_punct('=')
                    && code[i - 2].kind == TokKind::Ident
                {
                    out.insert(format!("{krate}/{}", code[i - 2].text));
                }
                continue;
            }
            // Walk back over `Wrapper<` pairs to the `name:` ascription.
            let mut j = i;
            while j >= 2 && code[j - 1].is_punct('<') && code[j - 2].kind == TokKind::Ident {
                j -= 2;
            }
            if j >= 2 && code[j - 1].is_punct(':') && !code.get(j.wrapping_sub(2)).is_some_and(|u| u.is_punct(':'))
            {
                // Reject `path::Mutex<` (j-1 is the second colon of `::`).
                if code[j - 2].kind == TokKind::Ident {
                    out.insert(format!("{krate}/{}", code[j - 2].text));
                }
            }
        }
    }
    out
}

/// Is `code[k]` the head of a zero-arg call `.name()`?
fn zero_arg_method(code: &[Tok], k: usize) -> bool {
    k >= 1
        && code[k - 1].is_punct('.')
        && code.get(k + 1).is_some_and(|u| u.is_punct('('))
        && code.get(k + 2).is_some_and(|u| u.is_punct(')'))
}

/// Liveness end for a `let`-bound guard: the close of the enclosing
/// block, or an earlier `drop(binding)`.
fn let_bound_end(code: &[Tok], from: usize, close_cap: usize, binding: &str) -> usize {
    let mut depth = 0i64;
    let mut j = from;
    while j <= close_cap {
        let t = &code[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if t.is_ident("drop")
            && code.get(j + 1).is_some_and(|u| u.is_punct('('))
            && code.get(j + 2).is_some_and(|u| u.is_ident(binding))
            && code.get(j + 3).is_some_and(|u| u.is_punct(')'))
        {
            return j;
        }
        j += 1;
    }
    close_cap
}

/// Liveness end for a temporary guard: its statement `;`, or — when the
/// temporary sits in an `if let`/`while let`/`match` head — the end of
/// the whole construct including `else` chains.
fn temp_end(code: &[Tok], from: usize, close_cap: usize) -> usize {
    let mut paren = 0i64;
    let mut j = from;
    while j <= close_cap {
        let t = &code[j];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if paren <= 0 {
            // `;` ends a statement temporary; `,` ends a match-arm or
            // argument-position temporary.
            if t.is_punct(';') || t.is_punct(',') {
                return j;
            }
            if t.is_punct('}') {
                return j; // enclosing block closes first
            }
            if t.is_punct('{') {
                // Construct head: the scrutinee temporary lives through
                // the body and any `else`/`else if` continuation.
                let mut end = crate::scan::match_braces(code, j);
                while code.get(end + 1).is_some_and(|u| u.is_ident("else")) {
                    let mut k = end + 2;
                    // `else if ...` — skip the condition to its `{`.
                    let mut p = 0i64;
                    while k <= close_cap {
                        if code[k].is_punct('(') || code[k].is_punct('[') {
                            p += 1;
                        } else if code[k].is_punct(')') || code[k].is_punct(']') {
                            p -= 1;
                        } else if p == 0 && code[k].is_punct('{') {
                            break;
                        }
                        k += 1;
                    }
                    if k > close_cap {
                        break;
                    }
                    end = crate::scan::match_braces(code, k);
                }
                return end.min(close_cap);
            }
        }
        j += 1;
    }
    close_cap
}

/// Compute the local effects of node `n`.
fn local_effects(ws: &Workspace, g: &CallGraph, n: usize, locks: &BTreeSet<String>) -> LocalEffects {
    let node = &g.nodes[n];
    let src = &ws.sources[node.file];
    let code = &src.info.code;
    let (open, close) = node.body;
    let nested: Vec<(usize, usize)> = src
        .info
        .fns
        .iter()
        .filter(|f| f.body.0 > open && f.body.1 < close)
        .map(|f| f.body)
        .collect();
    // Argument extents of `thread::scope(|s| …)` calls: channel waits
    // and joins inside them are structured-concurrency gathers bounded
    // by the scope's own workers, not waits on the outside world.
    let mut scoped: Vec<(usize, usize)> = Vec::new();
    for k in open + 1..close {
        if code[k].is_ident("scope") && code.get(k + 1).is_some_and(|u| u.is_punct('(')) {
            let mut depth = 0i64;
            let mut j = k + 1;
            while j < close {
                if code[j].is_punct('(') {
                    depth += 1;
                } else if code[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            scoped.push((k + 1, j));
        }
    }
    let mut fx = LocalEffects::default();
    let mut k = open + 1;
    while k < close {
        if let Some(&(_, nclose)) = nested.iter().find(|&&(nopen, _)| nopen == k) {
            k = nclose + 1;
            continue;
        }
        let t = &code[k];
        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        let name = t.text.as_str();
        let next_open = code.get(k + 1).is_some_and(|u| u.is_punct('('));
        let prev_dot = k >= 1 && code[k - 1].is_punct('.');

        // Lock acquisitions: zero-arg `.lock()`, and `.read()`/`.write()`
        // on a declared lock.
        if matches!(name, "lock" | "read" | "write") && zero_arg_method(code, k) {
            let recv = if k >= 2 && code[k - 2].kind == TokKind::Ident {
                code[k - 2].text.clone()
            } else {
                String::new()
            };
            let declared = format!("{}/{recv}", node.krate);
            let lock = locks.contains(&declared).then_some(declared);
            if name == "lock" || lock.is_some() {
                // Binding: `let [mut] b = <receiver-chain>.lock();`
                let mut rs = k - 1; // walk to receiver-chain start
                while rs >= 1
                    && (code[rs - 1].kind == TokKind::Ident || code[rs - 1].is_punct('.'))
                {
                    rs -= 1;
                }
                // The binding holds the guard only when the lock call
                // ends the assigned expression (`.unwrap()`/`.expect(..)`
                // tails allowed). If the chain continues —
                // `let v = cache.read().get(k).cloned();` — the guard is
                // a statement temporary and `v` binds the copied value.
                let mut chain_end = k + 2; // the `)` of the zero-arg call
                loop {
                    if code.get(chain_end + 1).is_some_and(|u| u.is_punct('.'))
                        && code.get(chain_end + 2).is_some_and(|u| u.is_ident("unwrap"))
                        && code.get(chain_end + 3).is_some_and(|u| u.is_punct('('))
                        && code.get(chain_end + 4).is_some_and(|u| u.is_punct(')'))
                    {
                        chain_end += 4;
                    } else if code.get(chain_end + 1).is_some_and(|u| u.is_punct('.'))
                        && code.get(chain_end + 2).is_some_and(|u| u.is_ident("expect"))
                        && code.get(chain_end + 3).is_some_and(|u| u.is_punct('('))
                        && code.get(chain_end + 5).is_some_and(|u| u.is_punct(')'))
                    {
                        chain_end += 5;
                    } else {
                        break;
                    }
                }
                let ends_stmt = code.get(chain_end + 1).is_some_and(|u| u.is_punct(';'));
                let binding = if ends_stmt
                    && rs >= 2
                    && code[rs - 1].is_punct('=')
                    && code[rs - 2].kind == TokKind::Ident
                    && (code.get(rs.wrapping_sub(3)).is_some_and(|u| u.is_ident("let"))
                        || (code.get(rs.wrapping_sub(3)).is_some_and(|u| u.is_ident("mut"))
                            && code.get(rs.wrapping_sub(4)).is_some_and(|u| u.is_ident("let"))))
                {
                    Some(code[rs - 2].text.clone())
                } else {
                    None
                };
                let end = match &binding {
                    Some(b) => let_bound_end(code, k + 3, close, b),
                    None => temp_end(code, k + 3, close),
                };
                fx.acqs.push(Acquisition {
                    lock,
                    recv,
                    tok: k,
                    line: t.line,
                    live: (k, end),
                });
                k += 1;
                continue;
            }
        }

        // Blocking intrinsics. om-fault is exempt: its delay actions
        // sleep *by design* to simulate slow I/O at a seam; charging
        // that simulated hazard to every caller that polls a failpoint
        // would double-count the seam (a poll is the mitigation, not
        // the hazard).
        let blocking = if node.krate == "om-fault" {
            None
        } else if BLOCKING_TYPES.contains(&name)
            && code.get(k + 1).is_some_and(|u| u.is_punct(':'))
            && code.get(k + 2).is_some_and(|u| u.is_punct(':'))
            && code.get(k + 3).is_some_and(|u| u.kind == TokKind::Ident)
        {
            Some(format!("{name}::{}", code[k + 3].text))
        } else if prev_dot && next_open && BLOCKING_METHODS.contains(&name) {
            // Channel waits and thread joins inside a `thread::scope`
            // closure are structured concurrency: the scope's own
            // workers are the only producers, the job queue is finite,
            // and the wait is bounded by local compute (the cube
            // builders use exactly this shape). Skip those; everything
            // the workers *call* is still summarized normally.
            if matches!(name, "recv" | "recv_timeout" | "wait" | "wait_timeout")
                && scoped.iter().any(|&(s, e)| k > s && k < e)
            {
                None
            } else {
                Some(format!(".{name}()"))
            }
        } else if prev_dot && next_open && name == "flush" && zero_arg_method(code, k) {
            Some(".flush()".to_owned())
        } else if prev_dot
            && name == "join"
            && zero_arg_method(code, k)
            && !scoped.iter().any(|&(s, e)| k > s && k < e)
        {
            Some(".join()".to_owned())
        } else if name == "sleep" && next_open {
            Some("sleep(..)".to_owned())
        } else {
            None
        };
        if let Some(what) = blocking {
            fx.blocking.push((k, t.line, what));
            k += 1;
            continue;
        }

        // Budget / failpoint polls.
        let is_poll = (name == "inject"
            && next_open
            && code.get(k + 2).is_some_and(|u| u.kind == TokKind::Str))
            || (name == "check"
                && zero_arg_method(code, k)
                && k >= 2
                && code[k - 2].text.to_ascii_lowercase().contains("budget"));
        if is_poll {
            fx.polls.push(k);
        } else if (matches!(name, "unwrap" | "expect") && prev_dot && next_open)
            || (name == "panic" && code.get(k + 1).is_some_and(|u| u.is_punct('!')))
        {
            fx.may_panic = true;
        }
        k += 1;
    }
    fx
}

/// Build the full analysis: graph, locals, and the propagated fixpoint.
#[must_use]
pub fn analyze(ws: &Workspace) -> Analysis {
    let graph = CallGraph::build(ws);
    let locks = declared_locks(ws);
    let locals: Vec<LocalEffects> = (0..graph.nodes.len())
        .map(|n| local_effects(ws, &graph, n, &locks))
        .collect();

    let mut summaries: Vec<FnSummary> = locals
        .iter()
        .enumerate()
        .map(|(n, fx)| {
            let node = &graph.nodes[n];
            let rel = &ws.sources[node.file].rel;
            let short = rel.rsplit('/').next().unwrap_or(rel);
            FnSummary {
                blocks: fx
                    .blocking
                    .first()
                    .map(|(_, line, what)| format!("{what} at {short}:{line}")),
                polls: !fx.polls.is_empty(),
                acquires: fx
                    .acqs
                    .iter()
                    .filter_map(|a| a.lock.clone().map(|l| (l, format!("{short}:{}", a.line))))
                    .collect(),
                may_panic: fx.may_panic,
            }
        })
        .collect();

    // Propagate to a fixpoint. Every field is monotone over a finite
    // domain, so this terminates even through recursion.
    loop {
        let mut changed = false;
        for n in 0..graph.nodes.len() {
            for site in &graph.calls[n] {
                for &t in &site.targets {
                    if summaries[n].blocks.is_none() {
                        if let Some(w) = &summaries[t].blocks {
                            let mut witness =
                                format!("via {}: {w}", graph.nodes[t].name);
                            if witness.len() > 200 {
                                witness = witness.chars().take(200).collect();
                            }
                            summaries[n].blocks = Some(witness);
                            changed = true;
                        }
                    }
                    if summaries[t].polls && !summaries[n].polls {
                        summaries[n].polls = true;
                        changed = true;
                    }
                    if summaries[t].may_panic && !summaries[n].may_panic {
                        summaries[n].may_panic = true;
                        changed = true;
                    }
                    let add: Vec<(String, String)> = summaries[t]
                        .acquires
                        .iter()
                        .filter(|(l, _)| !summaries[n].acquires.contains_key(*l))
                        .map(|(l, _)| {
                            (l.clone(), format!("via {}", graph.nodes[t].name))
                        })
                        .collect();
                    for (l, w) in add {
                        summaries[n].acquires.insert(l, w);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    Analysis {
        graph,
        locals,
        summaries,
        locks,
    }
}

/// Effects-layer helpers shared by the interprocedural checks.
impl Analysis {
    /// Does token range `range` of node `n` contain a poll — an
    /// intrinsic poll site, or a call with a candidate that polls
    /// transitively?
    #[must_use]
    pub fn range_polls(&self, n: usize, range: (usize, usize)) -> bool {
        let in_range = |k: usize| k >= range.0 && k <= range.1;
        self.locals[n].polls.iter().any(|&k| in_range(k))
            || self.graph.calls[n].iter().any(|site| {
                in_range(site.tok) && site.targets.iter().any(|&t| self.summaries[t].polls)
            })
    }

    /// First blocking site inside `range` of node `n`: an intrinsic or
    /// a call to a callee that may block. Returns (token line, witness).
    #[must_use]
    pub fn first_blocking_in(&self, n: usize, range: (usize, usize)) -> Option<(u32, String)> {
        let in_range = |k: usize| k >= range.0 && k <= range.1;
        let intrinsic = self.locals[n]
            .blocking
            .iter()
            .filter(|(k, _, _)| in_range(*k))
            .map(|(k, line, what)| (*k, *line, what.clone()))
            .next();
        let call = self
            .graph
            .calls[n]
            .iter()
            .filter(|site| in_range(site.tok))
            .find_map(|site| {
                site.targets.iter().find_map(|&t| {
                    self.summaries[t]
                        .blocks
                        .as_ref()
                        .map(|w| (site.tok, site.line, format!("call to {}: {w}", site.name)))
                })
            });
        match (intrinsic, call) {
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { (a.1, a.2) } else { (b.1, b.2) }),
            (Some(a), None) => Some((a.1, a.2)),
            (None, Some(b)) => Some((b.1, b.2)),
            (None, None) => None,
        }
    }

    /// Does `range` of node `n` contain any resolved workspace call?
    #[must_use]
    pub fn range_has_call(&self, n: usize, range: (usize, usize)) -> bool {
        self.graph.calls[n]
            .iter()
            .any(|site| site.tok >= range.0 && site.tok <= range.1)
    }
}
