//! A hand-rolled Rust lexer: just enough tokenization for lint checks.
//!
//! Emits a flat token stream with line numbers. Comments are kept as
//! trivia tokens (suppression comments and `// SAFETY:` markers live
//! there); checks that only care about code filter them out with
//! [`Tok::is_trivia`]. The lexer understands the lexical shapes that
//! would otherwise corrupt a naive scan: nested block comments, raw
//! strings with hash fences, byte strings, char literals vs lifetimes.
//! It does not parse — item structure is recovered by `scan`.

/// Token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// `'a` lifetime (not a char literal).
    Lifetime,
    /// Numeric literal (integer or float; exponent signs split off).
    Num,
    /// String literal; `text` is the *inner* content, quotes stripped.
    Str,
    /// Char or byte literal, content stripped.
    Char,
    /// Single punctuation character; `text` is that character.
    Punct,
    /// `//`-style comment, including `///` and `//!`; text keeps the slashes.
    LineComment,
    /// `/* */` comment (nesting handled); text keeps the delimiters.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Comments carry no code.
    #[must_use]
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Is this punctuation token exactly `c`?
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Is this an identifier token spelling `word`?
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }
}

/// Lex `source` into a token stream. Never fails: unterminated
/// constructs consume to end-of-file, which is good enough for linting
/// (rustc will reject such files anyway).
#[must_use]
pub fn lex(source: &str) -> Vec<Tok> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'"' => self.string(line),
                b'\'' => self.char_or_lifetime(line),
                b'0'..=b'9' => self.number(line),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(line),
                _ => {
                    self.bump();
                    // Multi-byte UTF-8: swallow continuation bytes into
                    // one punct token (em dashes in comments never reach
                    // here, but string-adjacent unicode punctuation can).
                    let start = self.pos - 1;
                    while self.peek(0).is_some_and(|n| n & 0b1100_0000 == 0b1000_0000) {
                        self.bump();
                    }
                    let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.push(TokKind::Punct, text, line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::BlockComment, text, line);
    }

    /// Ordinary (or byte) string starting at the opening quote.
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => break,
                _ => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.bump(); // closing quote
        self.push(TokKind::Str, text, line);
    }

    /// Raw string starting at the first `#` or `"` after `r`/`br`.
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let start = self.pos;
        let end;
        'outer: loop {
            match self.peek(0) {
                None => {
                    end = self.pos;
                    break;
                }
                Some(b'"') => {
                    for i in 0..hashes {
                        if self.peek(1 + i) != Some(b'#') {
                            self.bump();
                            continue 'outer;
                        }
                    }
                    end = self.pos;
                    self.bump(); // quote
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // 'x' or '\n' is a char literal; 'ident (no closing quote) is a
        // lifetime. Disambiguate by looking past the next character.
        let is_char = matches!(
            (self.peek(1), self.peek(2)),
            (Some(b'\\'), _) | (Some(_), Some(b'\''))
        );
        self.bump(); // the quote
        if is_char {
            let start = self.pos;
            while let Some(b) = self.peek(0) {
                match b {
                    b'\\' => {
                        self.bump();
                        self.bump();
                    }
                    b'\'' => break,
                    _ => {
                        self.bump();
                    }
                }
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.bump(); // closing quote
            self.push(TokKind::Char, text, line);
        } else {
            let start = self.pos;
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, text, line);
        }
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
        // One fractional part, but never eat a `..` range operator.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        // Raw / byte-string prefixes glue to the literal that follows.
        let next = self.peek(0);
        if (text == "r" || text == "br") && matches!(next, Some(b'"' | b'#')) {
            self.raw_string(line);
            return;
        }
        if text == "b" && next == Some(b'"') {
            self.string(line);
            return;
        }
        if text == "b" && next == Some(b'\'') {
            self.char_or_lifetime(line);
            return;
        }
        // `r#ident` raw identifiers: keep the word, drop the fence.
        if text == "r" && next == Some(b'#') {
            self.bump();
            self.ident(line);
            return;
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = kinds("fn main() { x.unwrap(); }");
        assert!(toks.contains(&(TokKind::Ident, "unwrap".into())));
        assert!(toks.contains(&(TokKind::Punct, "{".into())));
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "a.unwrap() \" // not a comment";"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("unwrap"));
        assert!(!toks.iter().any(|t| t.0 == TokKind::LineComment));
    }

    #[test]
    fn raw_strings_ignore_backslash_quote() {
        let toks = kinds(r###"let re = r"\d+\"; let after = 1;"###);
        assert!(toks.iter().any(|t| t.0 == TokKind::Str && t.1 == r"\d+\"));
        assert!(toks.iter().any(|t| t.1 == "after"));
    }

    #[test]
    fn hashed_raw_strings() {
        let toks = kinds(r####"let s = r#"say "hi" now"#; let t = 2;"####);
        assert!(toks
            .iter()
            .any(|t| t.0 == TokKind::Str && t.1 == r#"say "hi" now"#));
        assert!(toks.iter().any(|t| t.1 == "t"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.iter().any(|t| t.0 == TokKind::Lifetime && t.1 == "a"));
        assert!(toks.iter().any(|t| t.0 == TokKind::Char && t.1 == "x"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ let x = 1;");
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokKind::BlockComment).count(),
            1
        );
        assert!(toks.iter().any(|t| t.1 == "x"));
    }

    #[test]
    fn ranges_do_not_merge_into_floats() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.iter().any(|t| t.0 == TokKind::Num && t.1 == "0"));
        assert!(toks.iter().any(|t| t.0 == TokKind::Num && t.1 == "10"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c");
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(2));
        assert_eq!(find("c"), Some(3));
    }
}
