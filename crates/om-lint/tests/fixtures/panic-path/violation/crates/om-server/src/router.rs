//! Fixture: request handler that panics on bad input.

pub fn handle(q: Option<u32>) -> u32 {
    q.unwrap()
}

pub fn first(xs: &[u32]) -> u32 {
    xs[0]
}
