//! Fixture: the same handler with typed errors, plus one annotated
//! infallible site (suppression must be honored).

pub fn handle(q: Option<u32>) -> Result<u32, String> {
    q.ok_or_else(|| "missing q".to_owned())
}

pub fn first(xs: &[u32; 4]) -> u32 {
    // om-lint: allow(panic-path) — index 0 of a fixed-size [u32; 4]
    xs[0]
}
