//! Fixture: a handler-file fan-out loop that reaches blocking network
//! work through a callee with no Budget or failpoint poll per round.

use std::io::Read;
use std::net::TcpStream;

pub fn handle_count(addrs: &[String]) -> std::io::Result<u64> {
    let mut total = 0u64;
    for a in addrs {
        total = total.wrapping_add(fetch_count(a)?);
    }
    Ok(total)
}

fn fetch_count(addr: &str) -> std::io::Result<u64> {
    let mut s = TcpStream::connect(addr)?;
    let mut buf = [0u8; 8];
    s.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}
