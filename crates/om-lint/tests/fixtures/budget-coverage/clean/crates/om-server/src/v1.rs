//! Fixture: the same fan-out loop, bounded — every round polls the
//! request budget before paying for another network fetch.

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Budget {
    left: AtomicU64,
}

impl Budget {
    pub fn check(&self) -> Result<(), String> {
        if self.left.fetch_sub(1, Ordering::Relaxed) == 0 {
            Err("budget exhausted".to_owned())
        } else {
            Ok(())
        }
    }
}

pub fn handle_count(budget: &Budget, addrs: &[String]) -> std::io::Result<u64> {
    let mut total = 0u64;
    for a in addrs {
        if budget.check().is_err() {
            break;
        }
        total = total.wrapping_add(fetch_count(a)?);
    }
    Ok(total)
}

fn fetch_count(addr: &str) -> std::io::Result<u64> {
    let mut s = TcpStream::connect(addr)?;
    let mut buf = [0u8; 8];
    s.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}
