//! Fixture: render set, docs, and test assertions agree.

pub fn render(out: &mut String) {
    out.push_str("om_requests_total 0\n");
}
