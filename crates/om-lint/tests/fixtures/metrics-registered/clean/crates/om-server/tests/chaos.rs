#[test]
fn metrics_exposed() {
    let text = super_fetch();
    assert!(text.contains("om_requests_total"));
}
