//! Fixture: /metrics renders one counter; the docs reference another.

pub fn render(out: &mut String) {
    out.push_str("om_requests_total 0\n");
}
