//! Fixture: a callee-acquired lock that honors the workspace-wide
//! accounts-before-audit order.

pub fn rename_all(s: &State) {
    let a = s.accounts.lock();
    refresh_audit(s);
    drop(a);
}

fn refresh_audit(s: &State) {
    let b = s.audit.lock();
    drop(b);
}
