//! Fixture: both paths honor the same accounts-before-audit order.

pub struct State {
    accounts: Mutex<Vec<u64>>,
    audit: Mutex<Vec<String>>,
}

pub fn transfer(s: &State) {
    let a = s.accounts.lock();
    let b = s.audit.lock();
    drop((a, b));
}

pub fn report(s: &State) {
    let a = s.accounts.lock();
    let b = s.audit.lock();
    drop((a, b));
}
