//! Fixture: an inversion visible only interprocedurally — no single
//! function takes both locks, but `reindex` holds `index` while a
//! callee takes `cache`, and `invalidate` holds `cache` while a callee
//! takes `index`.

pub struct Caches {
    index: Mutex<Vec<u64>>,
    cache: Mutex<Vec<u64>>,
}

pub fn reindex(s: &Caches) {
    let i = s.index.lock();
    refresh_cache(s);
    drop(i);
}

pub fn invalidate(s: &Caches) {
    let c = s.cache.lock();
    rebuild_index(s);
    drop(c);
}

fn refresh_cache(s: &Caches) {
    let c = s.cache.lock();
    drop(c);
}

fn rebuild_index(s: &Caches) {
    let i = s.index.lock();
    drop(i);
}
