//! Fixture: two paths acquire the same pair of locks in opposite
//! orders — a latent deadlock.

pub struct State {
    accounts: Mutex<Vec<u64>>,
    audit: Mutex<Vec<String>>,
}

pub fn transfer(s: &State) {
    let a = s.accounts.lock();
    let b = s.audit.lock();
    drop((a, b));
}

pub fn report(s: &State) {
    let b = s.audit.lock();
    let a = s.accounts.lock();
    drop((a, b));
}
