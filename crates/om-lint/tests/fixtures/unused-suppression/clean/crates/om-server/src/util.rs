//! Fixture: a live suppression — the next line still triggers the
//! check it names, so the allow is doing its job.

pub fn first(xs: &[u32]) -> u32 {
    // om-lint: allow(panic-path) — bounds asserted by the caller contract
    xs[0]
}
