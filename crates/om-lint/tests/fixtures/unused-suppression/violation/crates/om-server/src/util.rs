//! Fixture: a suppression that outlived its finding — the indexing it
//! silenced was refactored away, but the allow stayed behind.

pub fn first(xs: &[u32]) -> u32 {
    // om-lint: allow(panic-path) — head element checked by the caller
    xs.first().copied().unwrap_or(0)
}
