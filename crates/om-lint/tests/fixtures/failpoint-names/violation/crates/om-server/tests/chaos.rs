#[test]
fn typoed_failpoint() {
    fail::configure("engine.comapre", Action::Error("boom"));
}
