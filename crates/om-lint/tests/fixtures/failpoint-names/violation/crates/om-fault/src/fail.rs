//! Fixture: the failpoint registry with one declared seam.

pub const SEAMS: &[&str] = &["engine.compare"];

pub fn inject(_name: &str) {}

fn seams_used() {
    inject("engine.compare");
}
