#[test]
fn registered_failpoint() {
    fail::configure("engine.compare", Action::Error("boom"));
}
