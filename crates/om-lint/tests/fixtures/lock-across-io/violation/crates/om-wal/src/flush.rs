//! Fixture: the catch-up replay bug shape — a queue guard stays live
//! while each row is sent over the network *through a callee*, so every
//! producer blocks behind the slowest replica write.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub struct Replayer {
    queue: Mutex<Vec<Vec<u8>>>,
}

impl Replayer {
    pub fn flush(&self, addr: &str) -> std::io::Result<()> {
        let mut q = self.queue.lock().unwrap();
        while let Some(row) = q.pop() {
            self.send_row(addr, &row)?;
        }
        Ok(())
    }

    fn send_row(&self, addr: &str, row: &[u8]) -> std::io::Result<()> {
        let mut s = TcpStream::connect(addr)?;
        s.write_all(row)
    }
}
