//! Fixture: the fixed shape — snapshot the queue under the lock, drop
//! the guard, then do the network sends outside it.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub struct Replayer {
    queue: Mutex<Vec<Vec<u8>>>,
}

impl Replayer {
    pub fn flush(&self, addr: &str) -> std::io::Result<()> {
        let rows: Vec<Vec<u8>> = {
            let mut q = self.queue.lock().unwrap();
            q.drain(..).collect()
        };
        for row in &rows {
            self.send_row(addr, row)?;
        }
        Ok(())
    }

    fn send_row(&self, addr: &str, row: &[u8]) -> std::io::Result<()> {
        let mut s = TcpStream::connect(addr)?;
        s.write_all(row)
    }
}
