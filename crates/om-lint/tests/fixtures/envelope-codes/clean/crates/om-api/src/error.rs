//! Fixture: two wire codes; the doc table documents the wrong set.

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
        }
    }

    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::Overloaded => 503,
        }
    }
}
