//! Fixture: a well-formed allow — known check, with a reason, and the
//! next line really does trigger the named check.

pub fn pick(xs: &[u32]) -> u32 {
    // om-lint: allow(panic-path) — fixture demonstrates the happy path
    xs[0]
}
