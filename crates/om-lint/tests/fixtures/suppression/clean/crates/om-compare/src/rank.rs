//! Fixture: a well-formed allow — known check, with a reason.

pub fn pick(xs: &[u32]) -> u32 {
    // om-lint: allow(panic-path) — fixture demonstrates the happy path
    xs[0]
}
