//! Fixture: suppression hygiene — reason-less and unknown-check allows.
//! The reason-less allow still suppresses a real panic-path finding, so
//! only the hygiene pass fires (no stale-suppression stray).

pub fn pick(xs: &[u32]) -> u32 {
    // om-lint: allow(panic-path)
    xs[0]
}

pub fn other(xs: &[u32]) -> u32 {
    // om-lint: allow(made-up-check) — the check name does not exist
    xs.first().copied().unwrap_or(0)
}
