//! Fixture: suppression hygiene — reason-less and unknown-check allows.

pub fn pick(xs: &[u32]) -> u32 {
    // om-lint: allow(panic-path)
    xs[0]
}

pub fn other(xs: &[u32]) -> u32 {
    // om-lint: allow(made-up-check) — the check name does not exist
    xs[0]
}
