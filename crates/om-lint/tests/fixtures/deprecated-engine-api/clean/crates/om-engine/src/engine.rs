//! Fixture: a deprecated shim left behind by an API migration.

#[deprecated(note = "use run_compare with an ExecCtx")]
pub fn compare_by_name(&self) {}

pub fn run_compare(&self) {}
