//! Fixture: the caller migrated to the run_* API.

fn go(om: &OpportunityMap) {
    om.run_compare();
}
