//! Fixture: a caller still on the deprecated shim.

fn go(om: &OpportunityMap) {
    om.compare_by_name();
}
