//! Fixture: the same read, justified.

pub fn read(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer into a live, aligned buffer.
    unsafe { *p }
}
