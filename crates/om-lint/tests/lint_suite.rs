//! Integration suite for the lint driver itself: the fixture corpus
//! must self-test green, the real workspace must be clean at HEAD, and
//! the JSON output must match its golden byte-for-byte.

use std::path::PathBuf;

use om_lint::fixtures::{fixtures_dir, run_all};
use om_lint::{find_workspace_root, jsonout, CheckConfig, Workspace};

fn workspace_root() -> PathBuf {
    let here = std::env::current_dir().expect("cwd");
    find_workspace_root(&here).expect("om-lint tests run inside the workspace")
}

#[test]
fn fixture_corpus_is_green() {
    let outcomes = run_all(&fixtures_dir(&workspace_root())).expect("corpus loads");
    // Every check ships both kinds; a missing dir shows up as a failure.
    assert!(outcomes.len() >= 24, "corpus too small: {}", outcomes.len());
    let failures: Vec<_> = outcomes.iter().filter(|o| !o.pass).collect();
    assert!(failures.is_empty(), "fixture failures: {failures:?}");
}

#[test]
fn workspace_head_is_clean() {
    let root = workspace_root();
    let ws = Workspace::load(&root, CheckConfig::default()).expect("workspace loads");
    let findings = ws.run_checks();
    assert!(
        findings.is_empty(),
        "om-lint findings on HEAD (fix or annotate them):\n{}",
        findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.check, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The JSON report for the panic-path violation fixture, pinned to a
/// golden file. Regenerate with `OM_UPDATE_GOLDEN=1 cargo test -p om-lint`.
#[test]
fn json_output_matches_golden() {
    let root = workspace_root();
    let fixture = fixtures_dir(&root).join("panic-path/violation");
    let ws = Workspace::load(&fixture, CheckConfig::default()).expect("fixture loads");
    let rendered = jsonout::render(&ws.run_checks());

    let golden_path = root.join("crates/om-lint/tests/golden/panic_path_violation.json");
    if std::env::var_os("OM_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_path.parent().expect("golden dir"))
            .expect("create golden dir");
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden file exists; regenerate with OM_UPDATE_GOLDEN=1");
    assert_eq!(
        rendered, golden,
        "JSON output drifted from the golden; if intentional, \
         regenerate with OM_UPDATE_GOLDEN=1"
    );
}
