//! Query types: what to explore, expressed in schema names so the same
//! struct travels over the wire and works on a coordinator's merged
//! store.

/// A smart drill-down request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreQuery {
    /// Conditions restricting the explored population, as
    /// `(attribute, value)` label pairs. At most one condition — the
    /// store holds one- and two-dimensional cubes. Empty = whole
    /// population.
    pub slice: Vec<(String, String)>,
    /// Number of summaries to return.
    pub k: usize,
    /// Widest conjunction per summary, counting slice conditions.
    /// Defaults to [`crate::MAX_CONDITIONS`]; clamped there.
    pub max_conditions: Option<usize>,
    /// When set, run `explore_compare`: drill both compared
    /// sub-populations and interleave by distinguishing mass. Mutually
    /// exclusive with `slice`.
    pub compare: Option<CompareNames>,
}

impl ExploreQuery {
    /// A whole-population exploration for `k` summaries with defaults.
    pub fn top_k(k: usize) -> Self {
        ExploreQuery {
            slice: Vec::new(),
            k,
            max_conditions: None,
            compare: None,
        }
    }
}

/// The comparison anchoring an `explore_compare` run, by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompareNames {
    /// Attribute whose two values select the sub-populations.
    pub attr: String,
    /// First compared value (the comparator may swap for `cf1 <= cf2`).
    pub value_1: String,
    /// Second compared value.
    pub value_2: String,
    /// Target class for rule confidences.
    pub class: String,
}
