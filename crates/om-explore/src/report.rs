//! Report types: the labeled, wire-friendly outcome of an exploration.

use om_cube::CubeStore;

use crate::error::ExploreError;
use crate::greedy::{GreedyOutcome, Picked};

/// One summary condition with resolved labels.
#[derive(Debug, Clone, PartialEq)]
pub struct CondLabel {
    /// Attribute name.
    pub attr: String,
    /// Value label.
    pub value: String,
}

/// One ranked summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// The summary's non-⋆ conditions (excluding any shared slice
    /// condition), sorted by attribute.
    pub conds: Vec<CondLabel>,
    /// Exact number of rows matching the summary within the explored
    /// population.
    pub support: u64,
    /// Marginal weighted coverage this summary earned when selected —
    /// its contribution to `covered`.
    pub coverage: u64,
    /// Per-class rule confidence within the summary's rows, in class
    /// order (`count_c / support`).
    pub confidences: Vec<f64>,
    /// `explore_compare` only: which sub-population the summary came
    /// from (1 = the comparator's normalized `value_1` side, 2 = the
    /// `value_2` side).
    pub side: Option<u8>,
    /// `explore_compare` only: the distinguishing mass `W_k` of the
    /// summary's condition in the anchoring comparison.
    pub mass: Option<f64>,
}

/// The comparison behind an `explore_compare` report, with the
/// comparator's normalization applied.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareMeta {
    /// Compared attribute name.
    pub attr: String,
    /// Normalized lower-confidence value label.
    pub value_1: String,
    /// Normalized higher-confidence value label.
    pub value_2: String,
    /// Target class label.
    pub class: String,
    /// Whether the comparator swapped the input values.
    pub swapped: bool,
}

/// The outcome of an exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReport {
    /// Class labels, in class-id order (indexes `confidences`).
    pub classes: Vec<String>,
    /// Rows in the explored population (both sides summed in compare
    /// mode).
    pub universe: u64,
    /// Accumulated weighted coverage across the returned summaries.
    pub covered: u64,
    /// Greedy steps executed.
    pub steps: u64,
    /// True when a budget expiry (or injected fault) cut the run short
    /// after at least one summary completed — the summaries present are
    /// a valid prefix of the full answer.
    pub truncated: bool,
    /// Ranked summaries.
    pub summaries: Vec<SummaryRow>,
    /// Set in compare mode.
    pub compare: Option<CompareMeta>,
}

/// Resolve one picked candidate into a labeled row.
pub(crate) fn row_for(
    cs: &CubeStore,
    picked: &Picked,
    side: Option<u8>,
    mass: Option<f64>,
) -> Result<SummaryRow, ExploreError> {
    let mut conds = Vec::with_capacity(picked.cand.conds.len());
    for c in &picked.cand.conds {
        let one = cs.one_dim(c.attr)?;
        let dim = one.dims().first().ok_or_else(|| {
            ExploreError::Invalid(format!("one-dim cube for attribute {} has no dimension", c.attr))
        })?;
        let value = dim.labels.get(c.value as usize).cloned().ok_or_else(|| {
            ExploreError::Invalid(format!(
                "value id {} out of range for attribute {:?}",
                c.value, dim.name
            ))
        })?;
        conds.push(CondLabel {
            attr: dim.name.clone(),
            value,
        });
    }
    let support = picked.cand.support;
    #[allow(clippy::cast_precision_loss)]
    let confidences = picked
        .cand
        .class_counts
        .iter()
        .map(|&n| if support == 0 { 0.0 } else { n as f64 / support as f64 })
        .collect();
    Ok(SummaryRow {
        conds,
        support,
        coverage: picked.gain,
        confidences,
        side,
        mass,
    })
}

/// Assemble a single-population report.
pub(crate) fn assemble(
    cs: &CubeStore,
    universe: u64,
    outcome: &GreedyOutcome,
    compare: Option<CompareMeta>,
) -> Result<ExploreReport, ExploreError> {
    let mut summaries = Vec::with_capacity(outcome.picks.len());
    for p in &outcome.picks {
        summaries.push(row_for(cs, p, None, None)?);
    }
    Ok(ExploreReport {
        classes: cs.class_labels().to_vec(),
        universe,
        covered: outcome.covered,
        steps: outcome.steps,
        truncated: outcome.truncated,
        summaries,
        compare,
    })
}
