//! Candidate pool construction and cube-backed support / overlap
//! arithmetic. Everything here is exact cube reads — no row scans.

use std::sync::Arc;

use om_cube::{CubeStore, RuleCube};
use om_data::ValueId;
use om_fault::{fail, Budget};

use crate::error::ExploreError;

/// One `attribute = value` condition of a summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cond {
    /// Schema index of the attribute.
    pub attr: usize,
    /// Value id within the attribute's domain.
    pub value: ValueId,
}

/// A candidate summary: its conditions (sorted by attribute, excluding
/// any slice condition shared by the whole pool), exact support within
/// the explored population, and per-class counts for confidence.
#[derive(Debug, Clone)]
pub(crate) struct Cand {
    pub conds: Vec<Cond>,
    pub support: u64,
    pub class_counts: Vec<u64>,
}

/// Exact support of a 1- or 2-condition conjunction from the store's
/// cubes. Two-condition cells are read from the (order-insensitive)
/// pair cube, oriented by its dimension order.
pub(crate) fn support_exact(store: &CubeStore, conds: &[Cond]) -> Result<u64, ExploreError> {
    match conds {
        [c] => Ok(store.one_dim(c.attr)?.cell_total(&[c.value])?),
        [c1, c2] => {
            let pair = store.pair(c1.attr, c2.attr)?;
            let first = pair.dims().first().ok_or_else(|| {
                ExploreError::Invalid(format!(
                    "pair cube ({}, {}) has no dimensions",
                    c1.attr, c2.attr
                ))
            })?;
            let coords = if first.attr_index == c1.attr {
                [c1.value, c2.value]
            } else {
                [c2.value, c1.value]
            };
            Ok(pair.cell_total(&coords)?)
        }
        _ => Err(ExploreError::Invalid(format!(
            "unsupported conjunction width {}",
            conds.len()
        ))),
    }
}

/// Upper bound on `|rows(a) ∩ rows(b)|` within the sliced population.
///
/// The union of the two condition sets (plus the slice) either
/// conflicts on an attribute (overlap is exactly 0), fits in a single
/// cube cell (≤ 2 conditions: exact), or is bounded by the minimum
/// support over all its condition pairs — a Bonferroni bound. Because
/// this *over*-estimates overlap, every greedy marginal is a lower
/// bound and accumulated coverage never exceeds the universe.
pub(crate) fn overlap_upper(
    store: &CubeStore,
    a: &[Cond],
    b: &[Cond],
    slice: Option<Cond>,
) -> Result<u64, ExploreError> {
    let mut merged: Vec<Cond> = Vec::with_capacity(a.len() + b.len() + 1);
    for &c in slice.iter().chain(a.iter()).chain(b.iter()) {
        match merged.iter().find(|m| m.attr == c.attr) {
            Some(m) if m.value != c.value => return Ok(0),
            Some(_) => {}
            None => merged.push(c),
        }
    }
    merged.sort_unstable();
    if merged.len() <= 2 {
        return support_exact(store, &merged);
    }
    let mut best = u64::MAX;
    for i in 0..merged.len() {
        for j in (i + 1)..merged.len() {
            // om-lint: allow(panic-path) — i < j < merged.len() by the loop bounds
            best = best.min(support_exact(store, &[merged[i], merged[j]])?);
            if best == 0 {
                return Ok(0);
            }
        }
    }
    Ok(best)
}

/// The one-dimensional cube over `b` restricted to rows matching `s` —
/// answered through [`om_cube::conditioned_one_dim`]: an already-built
/// `(s.attr, b)` pair cube is sliced, otherwise the store's counting
/// kernel does one masked column scan instead of materializing the full
/// pair. Counts are identical either way.
pub(crate) fn conditioned(
    store: &CubeStore,
    s: Cond,
    b: usize,
) -> Result<RuleCube, ExploreError> {
    Ok(om_cube::conditioned_one_dim(store, s.attr, s.value, b)?)
}

/// Append one candidate per non-empty value of `cube`'s first (and
/// only attribute) dimension, with `extra` prepended to the condition
/// set. `cube` must be one-dimensional (a one-dim store cube or a
/// sliced pair cube).
pub(crate) fn push_cands_from(
    cube: &RuleCube,
    extra: &[Cond],
    pool: &mut Vec<Arc<Cand>>,
) -> Result<(), ExploreError> {
    let dim = cube
        .dims()
        .first()
        .ok_or_else(|| ExploreError::Invalid("candidate cube has no dimensions".into()))?;
    let attr = dim.attr_index;
    for w in 0..dim.cardinality() {
        let v = ValueId::try_from(w)
            .map_err(|_| ExploreError::Invalid(format!("value index {w} overflows the id space")))?;
        let support = cube.cell_total(&[v])?;
        if support == 0 {
            continue;
        }
        let mut class_counts = Vec::with_capacity(cube.n_classes());
        for c in 0..cube.n_classes() {
            let cid = ValueId::try_from(c).map_err(|_| {
                ExploreError::Invalid(format!("class index {c} overflows the id space"))
            })?;
            class_counts.push(cube.count(&[v], cid)?);
        }
        let mut conds = extra.to_vec();
        conds.push(Cond { attr, value: v });
        conds.sort_unstable();
        pool.push(Arc::new(Cand {
            conds,
            support,
            class_counts,
        }));
    }
    Ok(())
}

/// Build the initial candidate pool: every single `attribute = value`
/// condition with non-zero support within the (optionally sliced)
/// population. One budget check and one `explore.scan` failpoint per
/// attribute, so a 600-attribute store degrades attribute-by-attribute.
pub(crate) fn build_pool(
    store: &CubeStore,
    slice: Option<Cond>,
    budget: &Budget,
) -> Result<Vec<Arc<Cand>>, ExploreError> {
    let mut pool = Vec::new();
    match slice {
        None => {
            for &a in store.attrs() {
                budget.check()?;
                fail::inject("explore.scan")?;
                let one = store.one_dim(a)?;
                push_cands_from(&one, &[], &mut pool)?;
            }
        }
        Some(s) => {
            for &b in store.attrs() {
                if b == s.attr {
                    continue;
                }
                budget.check()?;
                fail::inject("explore.scan")?;
                let sub = conditioned(store, s, b)?;
                push_cands_from(&sub, &[], &mut pool)?;
            }
        }
    }
    Ok(pool)
}
