//! Smart drill-down over the rule-cube store (arxiv 1412.0364), chained
//! with the comparator.
//!
//! The operator answers "where should I look first?": given an optional
//! slice of the population, [`explore`] returns the top-k rule
//! *summaries* — conjunctions of `attribute = value` conditions with
//! every other attribute wildcarded — chosen greedily to maximize
//! **weighted coverage**:
//!
//! ```text
//! score(S) = Σ_r w(r) · marginal-coverage(r, S)
//! ```
//!
//! where a row covered by a summary with `s` non-⋆ conditions counts
//! with weight `s`, and the marginal of a candidate only credits weight
//! *above* what already-selected summaries gave the row. The objective
//! is monotone submodular, so the greedy loop carries the classic
//! `(1 − 1/e)` approximation guarantee.
//!
//! Everything is computed from the store's one- and two-dimensional
//! cubes — no row scans. Supports of single conditions and pairs are
//! exact cube cells; the residual overlap of wider conjunctions is
//! upper-bounded by the minimum over their pair supports (a Bonferroni
//! bound), which makes every reported marginal a *lower* bound on the
//! true marginal and keeps accumulated coverage within the weighted
//! total `max_conditions × universe` by construction.
//!
//! Budgets degrade, never panic: the greedy loop checks its
//! [`Budget`] once per candidate and once per step. An expired budget
//! with at least one summary selected returns a partial report with
//! `truncated = true`; expiring before anything completes surfaces the
//! fault to the caller (a typed 503 at the service layer).
//!
//! The second mode, [`explore_compare`](compare), drills *both*
//! sub-populations of a comparison and interleaves the two summary
//! streams by where the distinguishing mass (the paper's
//! `W_k = max(F_k, 0) · N_2k` contribution weights) concentrates. The
//! two candidate pools are built in one shared scan — each `(selected,
//! other)` pair cube is fetched once and sliced twice, the same
//! memoization `om-exec::run_batch` applies to batched drills.

mod compare;
mod error;
mod greedy;
mod pool;
mod query;
mod report;

pub use error::ExploreError;
pub use pool::Cond;
pub use query::{CompareNames, ExploreQuery};
pub use report::{CompareMeta, CondLabel, ExploreReport, SummaryRow};

use om_compare::CompareConfig;
use om_cube::CubeStore;
use om_data::ValueId;
use om_exec::{Executor, StoreRef};
use om_fault::Budget;

use crate::greedy::greedy;
use crate::pool::{build_pool, support_exact};

/// Upper bound on `k`; keeps a hostile request from asking for an
/// unbounded greedy loop.
pub const MAX_K: usize = 1_000;

/// Widest conjunction a summary can carry. The store holds one- and
/// two-dimensional cubes, so supports and overlaps of up to two
/// conditions are exact; requests asking for more are clamped here.
pub const MAX_CONDITIONS: usize = 2;

/// Run a smart drill-down query against `store`.
///
/// Candidate scoring is sharded across `exec`'s workers; the result is
/// byte-identical for every worker count (u64 gain arithmetic, content-
/// keyed tie-breaking). `config` parameterizes the embedded comparison
/// when `query.compare` is set.
///
/// # Errors
/// [`ExploreError::Invalid`] for malformed queries,
/// [`ExploreError::Unknown`] for names absent from the store,
/// [`ExploreError::Fault`] when the budget expires before any summary
/// completes (later expiry truncates instead), and
/// [`ExploreError::Cube`] when the store itself fails.
pub fn explore<S: StoreRef>(
    exec: &Executor,
    store: &S,
    config: &CompareConfig,
    query: &ExploreQuery,
    budget: &Budget,
) -> Result<ExploreReport, ExploreError> {
    budget.check()?;
    let cs = store.store();
    validate(query)?;
    if let Some(names) = &query.compare {
        return compare::explore_compare(exec, store, config, names, query, budget);
    }
    let slice = resolve_slice(cs, &query.slice)?;
    let max_conditions = effective_max_conditions(query, slice.is_some())?;
    let universe = match slice {
        None => cs.total_records(),
        Some(s) => support_exact(cs, &[s])?,
    };
    let pool = build_pool(cs, slice, budget)?;
    let expand = slice.is_none() && max_conditions >= 2;
    let outcome = greedy(exec, store, pool, slice, query.k, expand, budget)?;
    report::assemble(cs, universe, &outcome, None)
}

fn validate(query: &ExploreQuery) -> Result<(), ExploreError> {
    if query.k == 0 {
        return Err(ExploreError::Invalid("k must be at least 1".into()));
    }
    if query.k > MAX_K {
        return Err(ExploreError::Invalid(format!(
            "k {} exceeds the maximum of {MAX_K}",
            query.k
        )));
    }
    if query.compare.is_some() && !query.slice.is_empty() {
        return Err(ExploreError::Invalid(
            "compare mode drills both compared sub-populations; a slice cannot be combined with it"
                .into(),
        ));
    }
    Ok(())
}

/// Clamp `max_conditions` to what the store can answer exactly.
///
/// The bound counts *all* conditions of a reported summary, including
/// the slice condition, so a sliced exploration needs room for the
/// slice plus at least one drill condition.
fn effective_max_conditions(query: &ExploreQuery, sliced: bool) -> Result<usize, ExploreError> {
    let mc = query.max_conditions.unwrap_or(MAX_CONDITIONS);
    if mc == 0 {
        return Err(ExploreError::Invalid("max_conditions must be at least 1".into()));
    }
    if sliced && mc < 2 {
        return Err(ExploreError::Invalid(
            "max_conditions must exceed the slice width".into(),
        ));
    }
    Ok(mc.min(MAX_CONDITIONS))
}

fn resolve_slice(
    cs: &CubeStore,
    slice: &[(String, String)],
) -> Result<Option<Cond>, ExploreError> {
    match slice {
        [] => Ok(None),
        [(attr, value)] => {
            let a = attr_by_name(cs, attr)?;
            let one = cs.one_dim(a)?;
            let dim = one.dims().first().ok_or_else(|| {
                ExploreError::Invalid(format!("one-dim cube for attribute {attr:?} has no dimension"))
            })?;
            let v = value_by_label(dim, value)?;
            Ok(Some(Cond { attr: a, value: v }))
        }
        _ => Err(ExploreError::Invalid(
            "slice supports at most one condition (the store holds one- and two-dimensional cubes)"
                .into(),
        )),
    }
}

/// Resolve an attribute by schema name, store-side.
///
/// The lookup goes through the one-dim cube dimensions rather than a
/// dataset schema so it works identically on a coordinator's merged
/// store, which has no dataset behind it.
pub(crate) fn attr_by_name(cs: &CubeStore, name: &str) -> Result<usize, ExploreError> {
    for &a in cs.attrs() {
        let one = cs.one_dim(a)?;
        if one.dims().first().is_some_and(|d| d.name == name) {
            return Ok(a);
        }
    }
    Err(ExploreError::Unknown(format!("unknown attribute {name:?}")))
}

pub(crate) fn value_by_label(
    dim: &om_cube::CubeDim,
    label: &str,
) -> Result<ValueId, ExploreError> {
    let pos = dim
        .labels
        .iter()
        .position(|l| l == label)
        .ok_or_else(|| {
            ExploreError::Unknown(format!(
                "unknown value {label:?} for attribute {:?}",
                dim.name
            ))
        })?;
    ValueId::try_from(pos)
        .map_err(|_| ExploreError::Invalid(format!("value index {pos} overflows the id space")))
}

pub(crate) fn class_by_label(cs: &CubeStore, label: &str) -> Result<ValueId, ExploreError> {
    let pos = cs
        .class_labels()
        .iter()
        .position(|l| l == label)
        .ok_or_else(|| ExploreError::Unknown(format!("unknown class {label:?}")))?;
    ValueId::try_from(pos)
        .map_err(|_| ExploreError::Invalid(format!("class index {pos} overflows the id space")))
}
