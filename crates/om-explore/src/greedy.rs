//! The budgeted greedy selection loop.
//!
//! Each step scores every remaining candidate's *marginal* weighted
//! coverage against the already-selected set, picks the strict maximum
//! under a content-keyed tie-break (gain desc, fewer conditions first,
//! then lexicographic `(attr, value)`), and — in whole-population mode —
//! expands the chosen single condition into its two-condition
//! refinements, which re-cover the same rows at weight 2 exactly as the
//! smart drill-down paper prescribes.
//!
//! Determinism: gains are u64, candidates are compared by content (never
//! by pool position), and shards are gathered in order — the selected
//! sequence is byte-identical for every `ExecConfig.workers`.

use std::collections::HashSet;
use std::sync::Arc;

use om_cube::CubeStore;
use om_exec::{gather_in_order, Executor, StoreRef};
use om_fault::{fail, Budget};

use crate::error::ExploreError;
use crate::pool::{conditioned, overlap_upper, push_cands_from, Cand, Cond};

/// One selected summary and the marginal weighted coverage it earned at
/// selection time.
#[derive(Debug, Clone)]
pub(crate) struct Picked {
    pub cand: Arc<Cand>,
    pub gain: u64,
}

/// What a greedy run produced.
#[derive(Debug, Clone, Default)]
pub(crate) struct GreedyOutcome {
    pub picks: Vec<Picked>,
    /// Sum of marginal gains (weighted coverage accumulated).
    pub covered: u64,
    /// Greedy steps actually executed (≤ k; fewer when the pool dries
    /// up or the budget truncates).
    pub steps: u64,
    /// Whether the budget (or an injected step fault) cut the loop
    /// short after at least one summary completed.
    pub truncated: bool,
}

/// Marginal weighted coverage of `cand` given the chosen sets.
///
/// A row covered by a summary with `s` conditions is worth `s`; the
/// marginal only credits weight above the row's current best. With
/// conjunction width capped at 2 this closes to:
///
/// ```text
/// s = 1:  support − min(support, Σ_T overlap(cand, T))
/// s = 2:  the above  +  support − min(support, Σ_{|T| = 2} overlap)
/// ```
///
/// using the Bonferroni overlap upper bound, so the result is a lower
/// bound on the true marginal and never negative.
fn marginal_gain(
    store: &CubeStore,
    cand: &Cand,
    chosen: &[Vec<Cond>],
    slice: Option<Cond>,
) -> Result<u64, ExploreError> {
    let sup = cand.support;
    let mut sum_all: u64 = 0;
    let mut sum_deep: u64 = 0;
    for t in chosen {
        let ov = overlap_upper(store, &cand.conds, t, slice)?;
        sum_all = sum_all.saturating_add(ov);
        if t.len() >= 2 {
            sum_deep = sum_deep.saturating_add(ov);
        }
    }
    let g1 = sup - sum_all.min(sup);
    if cand.conds.len() < 2 {
        return Ok(g1);
    }
    let g2 = sup - sum_deep.min(sup);
    Ok(g1 + g2)
}

fn score_shard(
    store: &CubeStore,
    shard: &[Arc<Cand>],
    chosen: &[Vec<Cond>],
    slice: Option<Cond>,
    budget: &Budget,
) -> Result<Vec<u64>, ExploreError> {
    let mut out = Vec::with_capacity(shard.len());
    for cand in shard {
        budget.check()?;
        out.push(marginal_gain(store, cand, chosen, slice)?);
    }
    Ok(out)
}

/// Score the whole pool (sharded across `exec`) and return the index
/// and gain of the best candidate, or `None` when nothing adds
/// coverage. The winner is keyed on candidate *content*, so the answer
/// is independent of pool order and worker count.
fn best_candidate<S: StoreRef>(
    exec: &Executor,
    store: &S,
    pool: &[Arc<Cand>],
    chosen: &Arc<Vec<Vec<Cond>>>,
    slice: Option<Cond>,
    budget: &Budget,
) -> Result<Option<(usize, u64)>, ExploreError> {
    if pool.is_empty() {
        return Ok(None);
    }
    let shards = exec.width().min(pool.len()).max(1);
    let gains: Vec<u64> = if shards <= 1 {
        score_shard(store.store(), pool, chosen, slice, budget)?
    } else {
        type Job = Box<dyn FnOnce() -> Result<Vec<u64>, ExploreError> + Send>;
        let chunk = pool.len().div_ceil(shards);
        let jobs: Vec<Job> = pool
            .chunks(chunk)
            .map(|shard| {
                let shard: Vec<Arc<Cand>> = shard.to_vec();
                let store = store.clone();
                let chosen = Arc::clone(chosen);
                let budget = budget.clone();
                Box::new(move || score_shard(store.store(), &shard, &chosen, slice, &budget))
                    as Job
            })
            .collect();
        gather_in_order(exec.scatter(jobs))?
            .into_iter()
            .flatten()
            .collect()
    };
    let mut best: Option<(usize, u64)> = None;
    for (i, &g) in gains.iter().enumerate() {
        let better = match best {
            None => true,
            Some((bi, bg)) => {
                // om-lint: allow(panic-path) — gains has one entry per pool candidate, so i and bi index in range
                let (ci, cb) = (&pool[i].conds, &pool[bi].conds);
                g > bg || (g == bg && (ci.len(), ci) < (cb.len(), cb))
            }
        };
        if better {
            best = Some((i, g));
        }
    }
    Ok(best.filter(|&(_, g)| g > 0))
}

/// Spawn the two-condition refinements of a just-selected single
/// condition into the pool, deduplicating against everything already
/// generated (two parents can refine to the same child).
fn expand_children(
    store: &CubeStore,
    parent: &Cand,
    seen: &mut HashSet<Vec<Cond>>,
    pool: &mut Vec<Arc<Cand>>,
    budget: &Budget,
) -> Result<(), ExploreError> {
    let Some(&p) = parent.conds.first() else {
        return Ok(());
    };
    for &b in store.attrs() {
        if b == p.attr {
            continue;
        }
        budget.check()?;
        fail::inject("explore.scan")?;
        let sub = conditioned(store, p, b)?;
        let mut fresh = Vec::new();
        push_cands_from(&sub, &[p], &mut fresh)?;
        for cand in fresh {
            if seen.insert(cand.conds.clone()) {
                pool.push(cand);
            }
        }
    }
    Ok(())
}

/// Run the greedy loop for up to `k` summaries over a prebuilt pool.
///
/// Degradation contract: a budget expiry (or injected `explore.step`
/// fault) after at least one summary completed returns a partial
/// outcome with `truncated = true`; before anything completed, the
/// fault propagates so the service layer can answer with a typed
/// overload envelope.
pub(crate) fn greedy<S: StoreRef>(
    exec: &Executor,
    store: &S,
    mut pool: Vec<Arc<Cand>>,
    slice: Option<Cond>,
    k: usize,
    expand: bool,
    budget: &Budget,
) -> Result<GreedyOutcome, ExploreError> {
    let cs = store.store();
    let mut seen: HashSet<Vec<Cond>> = pool.iter().map(|c| c.conds.clone()).collect();
    let mut chosen_conds: Vec<Vec<Cond>> = Vec::new();
    let mut out = GreedyOutcome::default();
    while out.picks.len() < k && !pool.is_empty() {
        if let Err(e) = budget.check() {
            if out.picks.is_empty() {
                return Err(e.into());
            }
            out.truncated = true;
            break;
        }
        out.steps += 1;
        let shared = Arc::new(chosen_conds.clone());
        let best = match best_candidate(exec, store, &pool, &shared, slice, budget) {
            Ok(b) => b,
            Err(e @ ExploreError::Fault(_)) => {
                if out.picks.is_empty() {
                    return Err(e);
                }
                out.truncated = true;
                break;
            }
            Err(e) => return Err(e),
        };
        let Some((idx, gain)) = best else { break };
        let cand = pool.swap_remove(idx);
        chosen_conds.push(cand.conds.clone());
        out.covered += gain;
        let expand_this = expand && cand.conds.len() == 1;
        out.picks.push(Picked {
            cand: Arc::clone(&cand),
            gain,
        });
        if expand_this {
            match expand_children(cs, &cand, &mut seen, &mut pool, budget) {
                Ok(()) => {}
                Err(ExploreError::Fault(_)) => {
                    out.truncated = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if fail::inject("explore.step").is_err() {
            out.truncated = true;
            break;
        }
    }
    Ok(out)
}
