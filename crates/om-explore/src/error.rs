//! Error type for exploration.

use std::error::Error;
use std::fmt;

use om_compare::CompareError;
use om_cube::CubeError;
use om_fault::FaultError;

/// Why an exploration failed.
#[derive(Debug)]
pub enum ExploreError {
    /// The underlying cube store failed.
    Cube(CubeError),
    /// A named attribute, value or class is absent from the store.
    Unknown(String),
    /// The query itself is malformed (k out of range, slice too wide…).
    Invalid(String),
    /// Budget expiry, cancellation, or an injected fault before any
    /// summary completed. Later expiry truncates the report instead of
    /// surfacing here.
    Fault(FaultError),
}

impl ExploreError {
    /// Whether this failure is load-induced (deadline / cancellation)
    /// rather than a caller or data error — the service layer maps
    /// overloads to 503 + Retry-After.
    pub fn is_overload(&self) -> bool {
        matches!(self, ExploreError::Fault(f) if f.is_overload())
    }
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Cube(e) => write!(f, "cube store error: {e}"),
            ExploreError::Unknown(m) | ExploreError::Invalid(m) => f.write_str(m),
            ExploreError::Fault(e) => write!(f, "exploration fault: {e}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Cube(e) => Some(e),
            ExploreError::Fault(e) => Some(e),
            ExploreError::Unknown(_) | ExploreError::Invalid(_) => None,
        }
    }
}

impl From<CubeError> for ExploreError {
    fn from(e: CubeError) -> Self {
        match e {
            CubeError::Fault(f) => ExploreError::Fault(f),
            other => ExploreError::Cube(other),
        }
    }
}

impl From<FaultError> for ExploreError {
    fn from(e: FaultError) -> Self {
        ExploreError::Fault(e)
    }
}

impl From<CompareError> for ExploreError {
    fn from(e: CompareError) -> Self {
        match e {
            CompareError::Cube(c) => c.into(),
            CompareError::Fault(f) => ExploreError::Fault(f),
            CompareError::InvalidSpec(m) => ExploreError::Invalid(m),
            other => ExploreError::Invalid(other.to_string()),
        }
    }
}
