//! `explore_compare`: drill both sub-populations of a comparison and
//! interleave the two summary streams by distinguishing mass.
//!
//! The anchoring comparison runs through `om-exec::rank_parallel` (so
//! it shards like every other comparison and stays byte-identical at
//! any width). Both candidate pools are then built in one shared scan:
//! for each candidate attribute the `(selected, other)` pair cube is
//! fetched once and sliced twice — the conditioned-population
//! memoization `om-exec::run_batch` applies to batched drills.

use std::cmp::Ordering;

use om_compare::{subpop_slices, CompareConfig, ComparisonResult, ComparisonSpec};
use om_data::ValueId;
use om_exec::{rank_parallel, Executor, StoreRef};
use om_fault::{fail, Budget};

use crate::error::ExploreError;
use crate::greedy::{greedy, GreedyOutcome, Picked};
use crate::pool::{push_cands_from, Cand, Cond};
use crate::query::{CompareNames, ExploreQuery};
use crate::report::{row_for, CompareMeta, ExploreReport};
use crate::{attr_by_name, class_by_label, value_by_label};

use std::sync::Arc;

/// Distinguishing mass `W_k = max(F_k, 0) · N_2k` of one condition in
/// the anchoring comparison; 0 when the attribute or value did not
/// contribute.
fn mass_for(result: &ComparisonResult, attr: usize, value: ValueId) -> f64 {
    result
        .ranked
        .iter()
        .chain(result.property_attrs.iter())
        .find(|a| a.attr == attr)
        .and_then(|a| a.contributions.get(value as usize))
        .map_or(0.0, |c| c.w)
}

pub(crate) fn explore_compare<S: StoreRef>(
    exec: &Executor,
    store: &S,
    config: &CompareConfig,
    names: &CompareNames,
    query: &ExploreQuery,
    budget: &Budget,
) -> Result<ExploreReport, ExploreError> {
    let cs = store.store();
    let attr = attr_by_name(cs, &names.attr)?;
    let one = cs.one_dim(attr)?;
    let dim = one.dims().first().ok_or_else(|| {
        ExploreError::Invalid(format!(
            "one-dim cube for attribute {:?} has no dimension",
            names.attr
        ))
    })?;
    let spec = ComparisonSpec {
        attr,
        value_1: value_by_label(dim, &names.value_1)?,
        value_2: value_by_label(dim, &names.value_2)?,
        class: class_by_label(cs, &names.class)?,
    };
    let result = rank_parallel(exec, store, config, &spec, budget)?;

    // Shared scan: each pair cube serves both sides' candidate pools.
    let mut pool1: Vec<Arc<Cand>> = Vec::new();
    let mut pool2: Vec<Arc<Cand>> = Vec::new();
    for &b in cs.attrs() {
        if b == attr {
            continue;
        }
        budget.check()?;
        fail::inject("explore.scan")?;
        let (_labels, d1, d2) = subpop_slices(cs, attr, b, result.value_1, result.value_2)?;
        push_cands_from(&d1, &[], &mut pool1)?;
        push_cands_from(&d2, &[], &mut pool2)?;
    }

    let s1 = Cond {
        attr,
        value: result.value_1,
    };
    let s2 = Cond {
        attr,
        value: result.value_2,
    };
    let out1 = greedy(exec, store, pool1, Some(s1), query.k, false, budget)?;
    let out2 = match greedy(exec, store, pool2, Some(s2), query.k, false, budget) {
        Ok(o) => o,
        // Side 1 already produced summaries; a budget fault on side 2
        // degrades to a truncated partial instead of losing them.
        Err(ExploreError::Fault(_)) if !out1.picks.is_empty() => GreedyOutcome {
            truncated: true,
            ..GreedyOutcome::default()
        },
        Err(e) => return Err(e),
    };

    let mut tagged: Vec<(Picked, u8, f64)> = Vec::with_capacity(out1.picks.len() + out2.picks.len());
    for p in &out1.picks {
        let m = mass_of(&result, p);
        tagged.push((p.clone(), 1, m));
    }
    for p in &out2.picks {
        let m = mass_of(&result, p);
        tagged.push((p.clone(), 2, m));
    }
    // Interleave by where the distinguishing mass concentrates; ties
    // fall back to coverage, then side, then condition content — all
    // deterministic.
    tagged.sort_by(|x, y| {
        y.2.total_cmp(&x.2)
            .then_with(|| y.0.gain.cmp(&x.0.gain))
            .then_with(|| x.1.cmp(&y.1))
            .then_with(|| x.0.cand.conds.cmp(&y.0.cand.conds))
    });
    tagged.truncate(query.k);

    let mut summaries = Vec::with_capacity(tagged.len());
    for (p, side, m) in &tagged {
        summaries.push(row_for(cs, p, Some(*side), Some(*m))?);
    }
    debug_assert!(tagged.windows(2).all(|w| {
        // om-lint: allow(panic-path) — windows(2) always yields 2-element slices
        w[0].2.total_cmp(&w[1].2) != Ordering::Less
    }));
    Ok(ExploreReport {
        classes: cs.class_labels().to_vec(),
        universe: result.n1 + result.n2,
        covered: out1.covered + out2.covered,
        steps: out1.steps + out2.steps,
        truncated: out1.truncated || out2.truncated,
        summaries,
        compare: Some(CompareMeta {
            attr: result.attr_name.clone(),
            value_1: result.value_1_label.clone(),
            value_2: result.value_2_label.clone(),
            class: result.class_label.clone(),
            swapped: result.swapped,
        }),
    })
}

/// Mass of a picked summary's (single) condition.
fn mass_of(result: &ComparisonResult, p: &Picked) -> f64 {
    p.cand
        .conds
        .first()
        .map_or(0.0, |c| mass_for(result, c.attr, c.value))
}
