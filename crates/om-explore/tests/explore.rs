//! Behavior and determinism suite for smart drill-down.
//!
//! The determinism properties mirror om-exec's contract: reports are
//! compared with `==` over the fully-labeled result type, so equality
//! here is byte-equality of any serialization.

use std::sync::Arc;

use om_compare::CompareConfig;
use om_cube::{CubeStore, StoreBuildOptions};
use om_exec::{ExecConfig, Executor};
use om_explore::{explore, CompareNames, ExploreError, ExploreQuery, ExploreReport};
use om_fault::Budget;
use om_synth::paper_scenario;
use proptest::prelude::*;

fn fixture(n: usize, seed: u64) -> (Arc<CubeStore>, om_synth::GroundTruth) {
    let (ds, truth) = paper_scenario(n, seed);
    let store = Arc::new(CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap());
    (store, truth)
}

fn run(store: &Arc<CubeStore>, query: &ExploreQuery, workers: usize) -> ExploreReport {
    let exec = Executor::new(&ExecConfig { workers });
    explore(
        &exec,
        store,
        &CompareConfig::default(),
        query,
        &Budget::unlimited(),
    )
    .unwrap()
}

fn compare_query(truth: &om_synth::GroundTruth, k: usize) -> ExploreQuery {
    ExploreQuery {
        slice: Vec::new(),
        k,
        max_conditions: None,
        compare: Some(CompareNames {
            attr: truth.compare_attr.clone(),
            value_1: truth.baseline_value.clone(),
            value_2: truth.target_value.clone(),
            class: truth.target_class.clone(),
        }),
    }
}

#[test]
fn top_k_whole_population() {
    let (store, _) = fixture(8_000, 7);
    let report = run(&store, &ExploreQuery::top_k(5), 1);
    assert_eq!(report.universe, store.total_records());
    assert!(!report.summaries.is_empty());
    assert!(report.summaries.len() <= 5);
    assert!(!report.truncated);
    assert!(report.steps >= report.summaries.len() as u64);
    // Weighted coverage: bounded by max_conditions x universe.
    assert!(report.covered <= 2 * report.universe);
    assert_eq!(report.covered, report.summaries.iter().map(|s| s.coverage).sum::<u64>());
    for s in &report.summaries {
        assert!(s.support > 0);
        assert!(s.coverage > 0, "greedy never selects a zero-gain summary");
        assert!(s.coverage <= 2 * s.support);
        assert_eq!(s.confidences.len(), report.classes.len());
        let total: f64 = s.confidences.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "confidences sum to 1, got {total}");
        assert!(s.side.is_none() && s.mass.is_none());
    }
    // Greedy marginals are non-increasing in selection order only for
    // equal-width summaries; across the report they are positive and
    // the first summary dominates.
    let first = &report.summaries[0];
    assert!(report.summaries.iter().all(|s| s.coverage <= first.coverage));
}

#[test]
fn sliced_exploration_excludes_the_sliced_attribute() {
    let (store, truth) = fixture(8_000, 7);
    let query = ExploreQuery {
        slice: vec![(truth.compare_attr.clone(), truth.target_value.clone())],
        k: 4,
        max_conditions: None,
        compare: None,
    };
    let report = run(&store, &query, 1);
    assert!(report.universe < store.total_records());
    assert!(!report.summaries.is_empty());
    for s in &report.summaries {
        assert_eq!(s.conds.len(), 1, "sliced summaries drill exactly one new condition");
        assert_ne!(s.conds[0].attr, truth.compare_attr);
        assert!(s.support <= report.universe);
    }
    // Plain coverage within a slice: bounded by the slice population.
    assert!(report.covered <= report.universe);
}

#[test]
fn max_conditions_one_disables_expansion() {
    let (store, _) = fixture(8_000, 7);
    let query = ExploreQuery {
        max_conditions: Some(1),
        ..ExploreQuery::top_k(6)
    };
    let report = run(&store, &query, 1);
    assert!(report.summaries.iter().all(|s| s.conds.len() == 1));
}

#[test]
fn expansion_can_surface_two_condition_summaries() {
    let (store, _) = fixture(8_000, 7);
    let report = run(&store, &ExploreQuery::top_k(12), 1);
    assert!(
        report.summaries.iter().any(|s| s.conds.len() == 2),
        "with k=12 over the paper scenario, refinements of chosen summaries should win steps"
    );
}

#[test]
fn compare_mode_interleaves_both_sides() {
    let (store, truth) = fixture(8_000, 7);
    let report = run(&store, &compare_query(&truth, 8), 1);
    let meta = report.compare.as_ref().expect("compare meta");
    assert_eq!(meta.attr, truth.compare_attr);
    assert!(!report.summaries.is_empty());
    let sides: Vec<u8> = report.summaries.iter().map(|s| s.side.unwrap()).collect();
    assert!(sides.iter().all(|&s| s == 1 || s == 2));
    assert!(sides.contains(&1) && sides.contains(&2), "both sides represented: {sides:?}");
    let masses: Vec<f64> = report.summaries.iter().map(|s| s.mass.unwrap()).collect();
    assert!(
        masses.windows(2).all(|w| w[0] >= w[1]),
        "interleaved by non-increasing distinguishing mass: {masses:?}"
    );
    for s in &report.summaries {
        assert_ne!(s.conds[0].attr, truth.compare_attr);
    }
}

#[test]
fn unknown_names_are_typed_errors() {
    let (store, _) = fixture(2_000, 7);
    let exec = Executor::serial();
    let q = ExploreQuery {
        slice: vec![("no-such-attribute".into(), "x".into())],
        ..ExploreQuery::top_k(3)
    };
    let err = explore(&exec, &store, &CompareConfig::default(), &q, &Budget::unlimited())
        .unwrap_err();
    assert!(matches!(err, ExploreError::Unknown(_)), "{err:?}");
}

#[test]
fn invalid_queries_are_rejected() {
    let (store, truth) = fixture(2_000, 7);
    let exec = Executor::serial();
    let cfg = CompareConfig::default();
    let b = Budget::unlimited();
    for q in [
        ExploreQuery::top_k(0),
        ExploreQuery::top_k(om_explore::MAX_K + 1),
        ExploreQuery {
            max_conditions: Some(0),
            ..ExploreQuery::top_k(3)
        },
        ExploreQuery {
            slice: vec![
                (truth.compare_attr.clone(), truth.target_value.clone()),
                (truth.compare_attr.clone(), truth.baseline_value.clone()),
            ],
            ..ExploreQuery::top_k(3)
        },
        ExploreQuery {
            slice: vec![(truth.compare_attr.clone(), truth.target_value.clone())],
            ..compare_query(&truth, 3)
        },
    ] {
        let err = explore(&exec, &store, &cfg, &q, &b).unwrap_err();
        assert!(matches!(err, ExploreError::Invalid(_)), "{q:?} -> {err:?}");
    }
}

#[test]
fn expired_budget_before_any_summary_is_an_overload() {
    let (store, _) = fixture(2_000, 7);
    let exec = Executor::serial();
    let spent = Budget::with_timeout(std::time::Duration::ZERO);
    let err = explore(
        &exec,
        &store,
        &CompareConfig::default(),
        &ExploreQuery::top_k(3),
        &spent,
    )
    .unwrap_err();
    assert!(err.is_overload(), "{err:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Byte-identical reports across worker widths and repeated runs,
    /// in every mode.
    #[test]
    fn deterministic_across_widths_and_runs(seed in 0u64..500, k in 1usize..10) {
        let (store, truth) = fixture(3_000, seed);
        let queries = [
            ExploreQuery::top_k(k),
            ExploreQuery {
                slice: vec![(truth.compare_attr.clone(), truth.target_value.clone())],
                ..ExploreQuery::top_k(k)
            },
            compare_query(&truth, k),
        ];
        for query in &queries {
            let baseline = run(&store, query, 1);
            let again = run(&store, query, 1);
            prop_assert_eq!(&baseline, &again, "repeat run diverged");
            for workers in [2, 8] {
                let wide = run(&store, query, workers);
                prop_assert_eq!(&baseline, &wide, "width {} diverged", workers);
            }
        }
    }

    /// Asking for k+1 summaries never changes the first k (greedy
    /// prefix stability).
    #[test]
    fn k_plus_one_is_prefix_stable(seed in 0u64..500, k in 1usize..8) {
        let (store, truth) = fixture(3_000, seed);
        for query in [ExploreQuery::top_k(k), ExploreQuery {
            slice: vec![(truth.compare_attr.clone(), truth.target_value.clone())],
            ..ExploreQuery::top_k(k)
        }] {
            let base = run(&store, &query, 2);
            let bigger = run(&store, &ExploreQuery { k: k + 1, ..query }, 2);
            prop_assert!(bigger.summaries.len() >= base.summaries.len());
            prop_assert_eq!(
                &base.summaries[..],
                &bigger.summaries[..base.summaries.len()],
                "first k summaries changed when asking for k+1"
            );
        }
    }
}

#[cfg(feature = "failpoints")]
mod chaos {
    use super::*;
    use om_fault::fail;
    use std::sync::{Mutex, OnceLock};

    /// Failpoint arming is process-global; serialize chaos tests.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let m = LOCK.get_or_init(|| Mutex::new(()));
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn step_fault_truncates_with_a_partial_prefix() {
        let _g = guard();
        let (store, _) = fixture(4_000, 7);
        let full = run(&store, &ExploreQuery::top_k(5), 1);
        fail::configure("explore.step", fail::Action::Error("injected".into()));
        let exec = Executor::serial();
        let partial = explore(
            &exec,
            &store,
            &CompareConfig::default(),
            &ExploreQuery::top_k(5),
            &Budget::unlimited(),
        );
        fail::remove("explore.step");
        let partial = partial.unwrap();
        assert!(partial.truncated);
        assert_eq!(partial.summaries.len(), 1, "one step completed before the fault");
        assert_eq!(partial.summaries[0], full.summaries[0], "partial is a prefix");
    }

    #[test]
    fn scan_fault_before_any_summary_propagates() {
        let _g = guard();
        let (store, _) = fixture(4_000, 7);
        fail::configure("explore.scan", fail::Action::Error("injected".into()));
        let exec = Executor::serial();
        let r = explore(
            &exec,
            &store,
            &CompareConfig::default(),
            &ExploreQuery::top_k(5),
            &Budget::unlimited(),
        );
        fail::remove("explore.scan");
        assert!(matches!(r, Err(ExploreError::Fault(_))), "{r:?}");
    }
}
