//! Property-based rendering tests: every view must render (no panics,
//! non-empty, deterministic) for arbitrary cube contents.

use om_cube::{CubeDim, CubeStore, CubeView, RuleCube, StoreBuildOptions};
use om_data::{Cell, DatasetBuilder};
use om_viz::bars::{hbar, sparkline};
use om_viz::detailed::{render_detailed, DetailedOptions};
use om_viz::overall::{render_overall, OverallOptions};
use om_viz::pair_view::{render_pair_heatmap, PairViewOptions};
use proptest::prelude::*;

fn arb_pair_cube() -> impl Strategy<Value = RuleCube> {
    (
        2usize..5,
        2usize..5,
        2usize..4,
        proptest::collection::vec(0u64..500, 8..80),
    )
        .prop_map(|(ca, cb, nc, counts)| {
            let dims = vec![
                CubeDim {
                    attr_index: 0,
                    name: "A".into(),
                    labels: (0..ca).map(|i| format!("a{i}")).collect(),
                },
                CubeDim {
                    attr_index: 1,
                    name: "B".into(),
                    labels: (0..cb).map(|i| format!("b{i}")).collect(),
                },
            ];
            let class_labels: Vec<String> = (0..nc).map(|i| format!("c{i}")).collect();
            let mut cube = RuleCube::new(dims, class_labels);
            let mut it = counts.into_iter();
            for a in 0..ca as u32 {
                for b in 0..cb as u32 {
                    for c in 0..nc as u32 {
                        if let Some(count) = it.next() {
                            cube.add(&[a, b], c, count).unwrap();
                        }
                    }
                }
            }
            cube
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sparkline_width_matches_input(heights in proptest::collection::vec(-1.0f64..2.0, 0..40)) {
        let s = sparkline(&heights);
        prop_assert_eq!(s.chars().count(), heights.len());
    }

    #[test]
    fn hbar_width_is_constant(v in -1.0f64..2.0, w in 1usize..40) {
        prop_assert_eq!(hbar(v, w).chars().count(), w);
    }

    #[test]
    fn heatmap_renders_every_class(cube in arb_pair_cube()) {
        for c in 0..cube.n_classes() as u32 {
            let text = render_pair_heatmap(&cube, c, &PairViewOptions::default()).unwrap();
            prop_assert!(text.contains("A × B"));
            prop_assert!(text.contains("columns:"));
            // Deterministic.
            let again = render_pair_heatmap(&cube, c, &PairViewOptions::default()).unwrap();
            prop_assert_eq!(text, again);
        }
    }

    #[test]
    fn detailed_view_renders_random_data(
        rows in proptest::collection::vec((0u8..4, 0u8..3), 1..80)
    ) {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        let al = ["a0", "a1", "a2", "a3"];
        let cl = ["c0", "c1", "c2"];
        for (a, c) in rows {
            b.push_row(&[Cell::Str(al[a as usize]), Cell::Str(cl[c as usize])]).unwrap();
        }
        let ds = b.finish().unwrap();
        let cube = om_cube::build_cube(&ds, &[0]).unwrap();
        let view = CubeView::from_cube(&cube).unwrap();
        let text = render_detailed(&view, &DetailedOptions::default());
        prop_assert!(text.contains("Detailed view: A"));
    }

    #[test]
    fn overall_view_renders_random_data(
        rows in proptest::collection::vec((0u8..3, 0u8..3, 0u8..2), 5..100)
    ) {
        let mut b = DatasetBuilder::new()
            .categorical("A")
            .categorical("B")
            .class("C");
        let l = ["x", "y", "z"];
        let cl = ["c0", "c1"];
        for (a, bb, c) in rows {
            b.push_row(&[
                Cell::Str(l[a as usize]),
                Cell::Str(l[bb as usize]),
                Cell::Str(cl[c as usize]),
            ]).unwrap();
        }
        let ds = b.finish().unwrap();
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let text = render_overall(&store, &OverallOptions::default());
        prop_assert!(text.lines().count() >= 3);
    }
}
