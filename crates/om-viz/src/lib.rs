//! Visualization of rule cubes and comparison results.
//!
//! "Good visualization is a must for real-life applications"
//! (Section III-B). The deployed Opportunity Map GUI renders every screen
//! as a 2-dimensional matrix of grids (Section V-A); this crate reproduces
//! the same views deterministically:
//!
//! * [`overall`] — the overall visualization mode of Fig. 5: all 2-D rule
//!   cubes side by side, one row per class, with per-attribute data
//!   distributions, automatic class scaling, and trend arrows (green
//!   increasing / red decreasing / gray stable);
//! * [`detailed`] — the detailed mode of Fig. 6: one attribute's exact
//!   counts, percentages and drop rates;
//! * [`compare_view`] — the comparison view of Fig. 7 (side-by-side bars
//!   for the two sub-populations with confidence-interval whiskers) and
//!   the property-attribute view of Fig. 8;
//! * [`bars`] / [`color`] — Unicode bar and ANSI color primitives;
//! * [`svg`] — an SVG backend for the same charts (no external crates).

pub mod bars;
pub mod color;
pub mod compare_view;
pub mod detailed;
pub mod gi_view;
pub mod overall;
pub mod pair_view;
pub mod svg;

pub use color::ColorMode;
