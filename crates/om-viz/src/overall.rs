//! The overall visualization mode (Fig. 5): every 2-D rule cube at once.
//!
//! "The X axis is associated with all attributes in the data. The Y axis
//! is associated with all the classes. For each attribute (a column), each
//! grid shows all one-conditional rules of the corresponding class value
//! … this screen simply shows all the 2-dimensional rule cubes"
//! (Section V-B). Each grid is rendered as a sparkline; the data
//! distribution of each attribute tops its column; trend arrows annotate
//! strong unit trends; automatic class scaling keeps minority classes
//! visible.

use std::fmt::Write as _;

use om_cube::scaling::ClassScaling;
use om_cube::{CubeStore, CubeView};
use om_gi::{mine_trends, Trend, TrendConfig, TrendResult};

use crate::bars::sparkline;
use crate::color::{paint, Color, ColorMode};

/// Options for the overall view.
#[derive(Debug, Clone)]
pub struct OverallOptions {
    pub color: ColorMode,
    /// Apply automatic class scaling (Fig. 5 has it on; "Otherwise, we
    /// will not see anything for the minority classes").
    pub class_scaling: bool,
    /// Maximum sparkline width per grid; attributes with more values are
    /// marked with `+` (the GUI uses light blue for this).
    pub max_grid_width: usize,
    pub trend_config: TrendConfig,
}

impl Default for OverallOptions {
    fn default() -> Self {
        Self {
            color: ColorMode::Plain,
            class_scaling: true,
            max_grid_width: 8,
            trend_config: TrendConfig::default(),
        }
    }
}

fn trend_arrow(trend: Trend, color: ColorMode) -> String {
    match trend {
        Trend::Increasing => paint(color, Color::Green, "↑"),
        Trend::Decreasing => paint(color, Color::Red, "↓"),
        Trend::Stable => paint(color, Color::Gray, "→"),
        Trend::None => " ".to_owned(),
    }
}

/// Render the overall visualization of the whole store.
pub fn render_overall(store: &CubeStore, options: &OverallOptions) -> String {
    let views: Vec<CubeView> = store
        .attrs()
        .iter()
        .map(|&a| {
            CubeView::from_cube(&store.one_dim(a).expect("attr in store"))
                .expect("one-dim cube")
        })
        .collect();
    let trends: Vec<TrendResult> = mine_trends(store, &options.trend_config);
    let class_labels = store.class_labels();

    // Global per-class maxima drive the scaling, as the GUI scales the
    // whole screen consistently.
    let scaling = if options.class_scaling {
        let mut maxima = vec![0.0f64; class_labels.len()];
        for v in views.iter() {
            for (m, vm) in maxima.iter_mut().zip(v.max_confidences()) {
                *m = m.max(vm);
            }
        }
        ClassScaling::from_max_confidences(&maxima)
    } else {
        ClassScaling::identity(class_labels.len())
    };

    let grid_w = options.max_grid_width;
    let name_w = 14usize;
    let mut out = String::new();

    // Header: attribute names (truncated) and data distributions.
    let _ = write!(out, "{:<name_w$} ", "");
    for v in &views {
        let mut name = v.attr_name().to_owned();
        if name.len() > grid_w {
            name.truncate(grid_w);
        }
        let _ = write!(out, "{name:<w$}  ", w = grid_w + 1);
    }
    out.push('\n');
    let _ = write!(out, "{:<name_w$} ", "data dist.");
    for v in &views {
        let mut dist = v.value_distribution();
        let overflow = dist.len() > grid_w;
        dist.truncate(grid_w);
        let max = dist.iter().copied().fold(0.0, f64::max);
        let heights: Vec<f64> = dist
            .iter()
            .map(|&d| if max > 0.0 { d / max } else { 0.0 })
            .collect();
        let spark = sparkline(&heights);
        let marker = if overflow {
            paint(options.color, Color::LightBlue, "+")
        } else {
            " ".to_owned()
        };
        let pad = grid_w.saturating_sub(heights.len());
        let _ = write!(out, "{spark}{}{marker} ", " ".repeat(pad));
    }
    out.push('\n');

    // One row per class.
    let class_counts = store.class_counts();
    let total: u64 = class_counts.iter().sum();
    for (c, label) in class_labels.iter().enumerate() {
        let share = if total > 0 {
            class_counts[c] as f64 / total as f64 * 100.0
        } else {
            0.0
        };
        let mut row_label = format!("{label} ({share:.1}%)");
        if row_label.len() > name_w {
            row_label.truncate(name_w);
        }
        let _ = write!(out, "{row_label:<name_w$} ");
        for v in &views {
            let mut confs = v.class_confidences(c as u32);
            let overflow = confs.len() > grid_w;
            confs.truncate(grid_w);
            let heights: Vec<f64> = confs
                .iter()
                .map(|&cf| scaling.display_height(c, cf))
                .collect();
            let spark = sparkline(&heights);
            let trend = trends
                .iter()
                .find(|t| t.attr_name == v.attr_name() && t.class == c as u32)
                .map(|t| t.trend)
                .unwrap_or(Trend::None);
            let arrow = trend_arrow(trend, options.color);
            let marker = if overflow {
                paint(options.color, Color::LightBlue, "+")
            } else {
                " ".to_owned()
            };
            let pad = grid_w.saturating_sub(heights.len());
            let _ = write!(out, "{spark}{}{arrow}{marker}", " ".repeat(pad));
        }
        out.push('\n');
    }
    if options.class_scaling {
        let _ = writeln!(
            out,
            "(class scaling on: each class row is stretched to its own maximum)"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_cube::StoreBuildOptions;
    use om_synth::{generate_call_log, CallLogConfig};

    fn store() -> CubeStore {
        let ds = generate_call_log(&CallLogConfig {
            n_records: 10_000,
            n_extra_attrs: 2,
            ..CallLogConfig::default()
        });
        CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap()
    }

    #[test]
    fn renders_all_attributes_and_classes() {
        let store = store();
        let text = render_overall(&store, &OverallOptions::default());
        // Attribute names are truncated to the grid width (8 by default).
        assert!(text.contains("PhoneMod"), "{text}");
        assert!(text.contains("TimeOfCa"), "{text}");
        assert!(text.contains("ended-ok"), "{text}");
        assert!(text.contains("dropped"), "{text}");
        assert!(text.contains("data dist."), "{text}");
        assert!(text.contains("class scaling on"));
    }

    #[test]
    fn scaling_note_absent_when_disabled() {
        let store = store();
        let text = render_overall(
            &store,
            &OverallOptions {
                class_scaling: false,
                ..Default::default()
            },
        );
        assert!(!text.contains("class scaling on"));
    }

    #[test]
    fn minority_class_visible_only_with_scaling() {
        let store = store();
        let scaled = render_overall(&store, &OverallOptions::default());
        let unscaled = render_overall(
            &store,
            &OverallOptions {
                class_scaling: false,
                ..Default::default()
            },
        );
        // The dropped row should carry taller bars when scaled: sum the
        // block levels (▁ = 1 … █ = 8) rather than counting glyphs.
        let row_ink = |text: &str| {
            const BLOCKS: &str = "▁▂▃▄▅▆▇█";
            text.lines()
                .find(|l| l.starts_with("dropped"))
                .map(|l| {
                    l.chars()
                        .filter_map(|c| BLOCKS.chars().position(|b| b == c))
                        .map(|i| i + 1)
                        .sum::<usize>()
                })
                .unwrap_or(0)
        };
        assert!(
            row_ink(&scaled) > row_ink(&unscaled),
            "scaled {} vs unscaled {}",
            row_ink(&scaled),
            row_ink(&unscaled)
        );
    }

    #[test]
    fn ansi_mode_emits_escapes() {
        let store = store();
        let text = render_overall(
            &store,
            &OverallOptions {
                color: ColorMode::Ansi,
                ..Default::default()
            },
        );
        assert!(text.contains("\x1b["));
    }

    #[test]
    fn deterministic_output() {
        let store = store();
        let opts = OverallOptions::default();
        assert_eq!(render_overall(&store, &opts), render_overall(&store, &opts));
    }
}
