//! A minimal self-contained SVG backend for the same charts the text
//! views render: grouped bars with optional confidence-interval whiskers.
//!
//! No external crates; the output is deterministic and viewable in any
//! browser. Used by the examples to save Fig. 7-style charts to disk.

use std::fmt::Write as _;

/// One bar series (e.g. one phone model) across all attribute values.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    /// Bar heights (rates in `[0, 1]` typically).
    pub values: Vec<f64>,
    /// Optional symmetric whisker half-heights, aligned with `values`.
    pub margins: Option<Vec<f64>>,
    /// Fill color (SVG color string).
    pub color: String,
}

/// Chart-level options.
#[derive(Debug, Clone)]
pub struct ChartOptions {
    pub width: u32,
    pub height: u32,
    pub title: String,
}

impl Default for ChartOptions {
    fn default() -> Self {
        Self {
            width: 720,
            height: 360,
            title: String::new(),
        }
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Render a grouped bar chart.
///
/// # Panics
/// Panics if series lengths disagree with `labels` or margins misalign.
pub fn grouped_bar_chart(labels: &[String], series: &[Series], options: &ChartOptions) -> String {
    for s in series {
        assert_eq!(
            s.values.len(),
            labels.len(),
            "series {:?} length mismatch",
            s.name
        );
        if let Some(m) = &s.margins {
            assert_eq!(m.len(), labels.len(), "margins misaligned for {:?}", s.name);
        }
    }
    let w = options.width as f64;
    let h = options.height as f64;
    let margin_left = 50.0;
    let margin_bottom = 50.0;
    let margin_top = 34.0;
    let plot_w = w - margin_left - 16.0;
    let plot_h = h - margin_top - margin_bottom;

    let max_val = series
        .iter()
        .flat_map(|s| {
            s.values.iter().enumerate().map(|(i, &v)| {
                v + s.margins.as_ref().map_or(0.0, |m| m[i])
            })
        })
        .fold(0.0f64, f64::max)
        .max(1e-9);

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        options.width, options.height, options.width, options.height
    );
    let _ = writeln!(
        out,
        r#"<rect width="100%" height="100%" fill="white"/>"#
    );
    if !options.title.is_empty() {
        let _ = writeln!(
            out,
            r#"<text x="{}" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">{}</text>"#,
            w / 2.0,
            esc(&options.title)
        );
    }

    // Y axis with 4 gridlines.
    for i in 0..=4 {
        let frac = i as f64 / 4.0;
        let y = margin_top + plot_h * (1.0 - frac);
        let _ = writeln!(
            out,
            r##"<line x1="{margin_left}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            margin_left + plot_w
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="end">{:.2}%</text>"#,
            margin_left - 4.0,
            y + 3.0,
            max_val * frac * 100.0
        );
    }

    let n_groups = labels.len().max(1);
    let group_w = plot_w / n_groups as f64;
    let bar_w = (group_w * 0.8) / series.len().max(1) as f64;

    for (g, label) in labels.iter().enumerate() {
        let gx = margin_left + group_w * g as f64 + group_w * 0.1;
        for (si, s) in series.iter().enumerate() {
            let v = s.values[g];
            let bh = (v / max_val) * plot_h;
            let x = gx + bar_w * si as f64;
            let y = margin_top + plot_h - bh;
            let _ = writeln!(
                out,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{bh:.1}" fill="{}"/>"#,
                bar_w * 0.92,
                esc(&s.color)
            );
            if let Some(m) = &s.margins {
                // Grey CI region at the top of the bar (per Fig. 7).
                let mh = (m[g] / max_val) * plot_h;
                if mh > 0.0 {
                    let cy = (y - mh).max(margin_top);
                    let _ = writeln!(
                        out,
                        r##"<rect x="{x:.1}" y="{cy:.1}" width="{:.1}" height="{:.1}" fill="#bbb" opacity="0.7"/>"##,
                        bar_w * 0.92,
                        (y + mh).min(margin_top + plot_h) - cy
                    );
                }
                // Red line at the measured rate.
                let _ = writeln!(
                    out,
                    r#"<line x1="{x:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="red" stroke-width="1.5"/>"#,
                    x + bar_w * 0.92
                );
            }
        }
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="10" text-anchor="middle">{}</text>"#,
            gx + (bar_w * series.len() as f64) / 2.0,
            margin_top + plot_h + 14.0,
            esc(label)
        );
    }

    // Legend.
    let mut lx = margin_left;
    let ly = h - 16.0;
    for s in series {
        let _ = writeln!(
            out,
            r#"<rect x="{lx:.1}" y="{:.1}" width="10" height="10" fill="{}"/>"#,
            ly - 9.0,
            esc(&s.color)
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{ly:.1}" font-family="sans-serif" font-size="11">{}</text>"#,
            lx + 14.0,
            esc(&s.name)
        );
        lx += 20.0 + 7.0 * s.name.len() as f64;
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<String>, Vec<Series>) {
        let labels = vec!["morning".into(), "afternoon".into(), "evening".into()];
        let series = vec![
            Series {
                name: "ph1".into(),
                values: vec![0.02, 0.02, 0.02],
                margins: Some(vec![0.004, 0.004, 0.004]),
                color: "#4472c4".into(),
            },
            Series {
                name: "ph2".into(),
                values: vec![0.10, 0.021, 0.02],
                margins: Some(vec![0.006, 0.004, 0.004]),
                color: "#ed7d31".into(),
            },
        ];
        (labels, series)
    }

    #[test]
    fn emits_valid_svg_skeleton() {
        let (labels, series) = sample();
        let svg = grouped_bar_chart(&labels, &series, &ChartOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("morning"));
        assert!(svg.contains("ph2"));
        // 3 groups × 2 series bars + CI rects exist.
        assert!(svg.matches("<rect").count() >= 7);
        // Red measured-rate lines present.
        assert!(svg.contains("stroke=\"red\""));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let labels = vec!["<b>&x\"".to_string()];
        let series = vec![Series {
            name: "a<b".into(),
            values: vec![0.5],
            margins: None,
            color: "#000".into(),
        }];
        let svg = grouped_bar_chart(&labels, &series, &ChartOptions::default());
        assert!(!svg.contains("<b>"));
        assert!(svg.contains("&lt;b&gt;"));
    }

    #[test]
    fn deterministic() {
        let (labels, series) = sample();
        let o = ChartOptions::default();
        assert_eq!(
            grouped_bar_chart(&labels, &series, &o),
            grouped_bar_chart(&labels, &series, &o)
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn misaligned_series_panics() {
        let labels = vec!["a".to_string()];
        let series = vec![Series {
            name: "s".into(),
            values: vec![0.1, 0.2],
            margins: None,
            color: "#000".into(),
        }];
        grouped_bar_chart(&labels, &series, &ChartOptions::default());
    }
}
