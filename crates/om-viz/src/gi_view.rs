//! Rendering of general-impressions results: trend, exception and
//! influence tables, plus the interaction exceptions of
//! `om_gi::pair_exception`.

use std::fmt::Write as _;

use om_gi::{Exception, InfluenceResult, PairException, Trend, TrendResult};

use crate::color::{paint, Color, ColorMode};

/// Render the trends table; only strong (increasing/decreasing) trends
/// unless `include_stable`.
pub fn render_trends(trends: &[TrendResult], include_stable: bool, color: ColorMode) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Trends (per attribute x class):");
    let mut any = false;
    for t in trends {
        let arrow = match t.trend {
            Trend::Increasing => paint(color, Color::Green, "↑ increasing"),
            Trend::Decreasing => paint(color, Color::Red, "↓ decreasing"),
            Trend::Stable if include_stable => paint(color, Color::Gray, "→ stable"),
            _ => continue,
        };
        any = true;
        let _ = writeln!(
            out,
            "  {:<24} {:<16} {arrow}  (slope {:+.5}, r2 {:.2})",
            t.attr_name, t.class_label, t.slope, t.r_squared
        );
    }
    if !any {
        let _ = writeln!(out, "  (no strong unit trends)");
    }
    out
}

/// Render the exceptions table (top `n`).
pub fn render_exceptions(exceptions: &[Exception], n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Exceptions (value vs rest of its attribute):");
    if exceptions.is_empty() {
        let _ = writeln!(out, "  (none)");
        return out;
    }
    for e in exceptions.iter().take(n) {
        let _ = writeln!(
            out,
            "  {}={} on {}: {:.3}% vs rest {:.3}% (z {:+.1}, {:?})",
            e.attr_name,
            e.value_label,
            e.class_label,
            e.confidence * 100.0,
            e.rest_confidence * 100.0,
            e.z,
            e.kind
        );
    }
    if exceptions.len() > n {
        let _ = writeln!(out, "  ... {} more", exceptions.len() - n);
    }
    out
}

/// Render the influence ranking (top `n`).
pub fn render_influence(influence: &[InfluenceResult], n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Influential attributes (chi-square with the class):");
    for i in influence.iter().take(n) {
        let _ = writeln!(
            out,
            "  {:<24} chi2 {:>12.1}  p {:.2e}  info-gain {:.4}",
            i.attr_name, i.chi2, i.p_value, i.info_gain
        );
    }
    out
}

/// Render interaction exceptions from the pair cubes (top `n`).
pub fn render_pair_exceptions(exceptions: &[PairException], n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Interaction exceptions (pair-cube cells beyond independence):");
    if exceptions.is_empty() {
        let _ = writeln!(out, "  (none)");
        return out;
    }
    for e in exceptions.iter().take(n) {
        let _ = writeln!(
            out,
            "  {}={} × {}={} on {}: {:.2}% observed vs {:.2}% expected (lift {:.1}, n={})",
            e.attr_a_name,
            e.value_a_label,
            e.attr_b_name,
            e.value_b_label,
            e.class_label,
            e.observed * 100.0,
            e.expected * 100.0,
            e.lift,
            e.n
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_cube::{CubeStore, StoreBuildOptions};
    use om_gi::{
        mine_exceptions, mine_influence, mine_pair_exceptions, mine_trends,
        ExceptionConfig, PairExceptionConfig, TrendConfig,
    };
    use om_synth::paper_scenario;

    fn store() -> CubeStore {
        let (ds, _) = paper_scenario(40_000, 66);
        CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap()
    }

    #[test]
    fn trends_render() {
        let store = store();
        let trends = mine_trends(&store, &TrendConfig::default());
        let text = render_trends(&trends, false, ColorMode::Plain);
        assert!(text.contains("Trends"));
        let with_stable = render_trends(&trends, true, ColorMode::Plain);
        assert!(with_stable.len() >= text.len());
    }

    #[test]
    fn exceptions_render_and_truncate() {
        let store = store();
        let exceptions = mine_exceptions(&store, &ExceptionConfig::default());
        let text = render_exceptions(&exceptions, 2);
        assert!(text.contains("Exceptions"));
        if exceptions.len() > 2 {
            assert!(text.contains("more"));
        }
        let empty = render_exceptions(&[], 5);
        assert!(empty.contains("(none)"));
    }

    #[test]
    fn influence_renders() {
        let store = store();
        let influence = mine_influence(&store);
        let text = render_influence(&influence, 3);
        assert!(text.contains("chi2"));
    }

    #[test]
    fn pair_exceptions_render() {
        let store = store();
        let pe = mine_pair_exceptions(&store, &PairExceptionConfig::default());
        let text = render_pair_exceptions(&pe, 5);
        assert!(text.contains("Interaction exceptions"));
        // The planted ph2 × morning interaction shows up in the rendering.
        assert!(
            text.contains("morning") || pe.is_empty(),
            "{text}"
        );
    }
}
