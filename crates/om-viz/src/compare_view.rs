//! The comparison view (Fig. 7) and property-attribute view (Fig. 8).
//!
//! Fig. 7: "each grid visualizes the drop rates of the two selected
//! phones … the first one (on the left) is the good phone (lower drop
//! rate) and the second one (on the right) is the bad phone (higher drop
//! rate). The red lines are the actual drop rates computed based on the
//! data. The grey region at the top of each bar is the confidence
//! interval." The text rendering shows, per attribute value, both rates
//! with their ± margins and flags the values whose adjusted excess `F_k`
//! is positive — exactly where "the bad phone is particularly bad".

use std::fmt::Write as _;

use om_compare::{AttrScore, ComparisonResult};

use crate::bars::hbar;
use crate::color::{paint, Color, ColorMode};

/// Options for comparison rendering.
#[derive(Debug, Clone)]
pub struct CompareViewOptions {
    pub color: ColorMode,
    pub bar_width: usize,
}

impl Default for CompareViewOptions {
    fn default() -> Self {
        Self {
            color: ColorMode::Plain,
            bar_width: 14,
        }
    }
}

/// Render one ranked attribute's per-value comparison (Fig. 7).
pub fn render_attr_comparison(
    result: &ComparisonResult,
    score: &AttrScore,
    options: &CompareViewOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} vs {} on class {:?} — attribute {} (M = {:.2}, {:.1}% of max)",
        result.value_1_label,
        result.value_2_label,
        result.class_label,
        score.attr_name,
        score.score,
        score.normalized * 100.0
    );
    let label_w = score
        .contributions
        .iter()
        .map(|c| c.label.len())
        .max()
        .unwrap_or(5)
        .max(5);
    // Scale both columns to the largest revised-or-raw rate in view.
    let max_rate = score
        .contributions
        .iter()
        .flat_map(|c| [c.cf1.unwrap_or(0.0), c.cf2.unwrap_or(0.0), c.rcf1, c.rcf2])
        .fold(0.0f64, f64::max)
        .max(1e-12);

    for c in &score.contributions {
        let fmt_side = |cf: Option<f64>, n: u64| match cf {
            Some(cf) => format!("{:>6.2}% (n={n})", cf * 100.0),
            None => format!("   --   (n={n})"),
        };
        let bar1 = hbar(c.cf1.unwrap_or(0.0) / max_rate, options.bar_width);
        let bar2 = hbar(c.cf2.unwrap_or(0.0) / max_rate, options.bar_width);
        let flag = if c.f > 0.0 {
            paint(options.color, Color::Red, " <-- excess")
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  {:<label_w$}  good |{bar1}| {:<18} bad |{bar2}| {:<18}{flag}",
            c.label,
            fmt_side(c.cf1, c.n1),
            fmt_side(c.cf2, c.n2),
        );
    }
    let _ = writeln!(
        out,
        "  (bars share one scale; 'excess' marks F_k > 0 after the CI adjustment)"
    );
    out
}

/// Render the top-ranked attribute of a result (the screen the user sees
/// first after pressing "compare").
pub fn render_top_attribute(result: &ComparisonResult, options: &CompareViewOptions) -> String {
    match result.top() {
        Some(top) => render_attr_comparison(result, top, options),
        None => "no non-property attributes to compare".to_owned(),
    }
}

/// Render the property-attribute view (Fig. 8): per value, the two
/// sub-population counts, with the zero side highlighted.
pub fn render_property_view(
    result: &ComparisonResult,
    score: &AttrScore,
    options: &CompareViewOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Property attribute {} (P = {}, T = {}, P/(P+T) = {:.2}):",
        score.attr_name,
        score.property.p,
        score.property.t,
        score.property.ratio()
    );
    let label_w = score
        .contributions
        .iter()
        .map(|c| c.label.len())
        .max()
        .unwrap_or(5)
        .max(5);
    for c in &score.contributions {
        let mark = |n: u64| {
            if n == 0 {
                paint(options.color, Color::Yellow, "0 (never used)")
            } else {
                n.to_string()
            }
        };
        let _ = writeln!(
            out,
            "  {:<label_w$}  {}={:<18} {}={}",
            c.label,
            result.value_1_label,
            mark(c.n1),
            result.value_2_label,
            mark(c.n2),
        );
    }
    let _ = writeln!(
        out,
        "  (usually an artefact of the data rather than a true pattern)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_compare::{Comparator, ComparisonSpec};
    use om_cube::{CubeStore, StoreBuildOptions};
    use om_synth::paper_scenario;

    fn result() -> ComparisonResult {
        let (ds, truth) = paper_scenario(40_000, 9);
        let s = ds.schema();
        let attr = s.attr_index(&truth.compare_attr).unwrap();
        let spec = ComparisonSpec {
            attr,
            value_1: s.attribute(attr).domain().get("ph1").unwrap(),
            value_2: s.attribute(attr).domain().get("ph2").unwrap(),
            class: s.class().domain().get("dropped").unwrap(),
        };
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        Comparator::new(&store).compare(&spec).unwrap()
    }

    #[test]
    fn top_attribute_view_shows_excess_marker() {
        let r = result();
        let text = render_top_attribute(&r, &CompareViewOptions::default());
        assert!(text.contains("TimeOfCall"), "{text}");
        assert!(text.contains("excess"), "{text}");
        assert!(text.contains("good |"), "{text}");
        assert!(text.contains("bad |"), "{text}");
    }

    #[test]
    fn property_view_marks_never_used() {
        let r = result();
        let hw = r
            .property_attrs
            .iter()
            .find(|s| s.attr_name == "PhoneHardwareVersion")
            .expect("hardware version is a property attribute");
        let text = render_property_view(&r, hw, &CompareViewOptions::default());
        assert!(text.contains("never used"), "{text}");
        assert!(text.contains("P/(P+T) = 1.00"), "{text}");
    }

    #[test]
    fn deterministic() {
        let r = result();
        let o = CompareViewOptions::default();
        assert_eq!(render_top_attribute(&r, &o), render_top_attribute(&r, &o));
    }
}
