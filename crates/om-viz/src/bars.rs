//! Unicode bar primitives.

/// The eight block characters used for sparklines, lowest to highest.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// A one-character-per-value sparkline of heights in `[0, 1]`.
///
/// Heights are clamped; exact zeros render as a space so empty cells are
/// visually distinct from tiny-but-present bars (the paper's "holes"
/// discussion makes this distinction matter).
pub fn sparkline(heights: &[f64]) -> String {
    heights
        .iter()
        .map(|&h| {
            if h <= 0.0 {
                ' '
            } else {
                let h = h.clamp(0.0, 1.0);
                let idx = ((h * 8.0).ceil() as usize).clamp(1, 8) - 1;
                BLOCKS[idx]
            }
        })
        .collect()
}

/// A horizontal bar of `width` cells filled proportionally to `value` in
/// `[0, 1]`, using eighth-block characters for the fractional cell.
pub fn hbar(value: f64, width: usize) -> String {
    let value = value.clamp(0.0, 1.0);
    let cells = value * width as f64;
    let full = cells.floor() as usize;
    let frac = cells - full as f64;
    let mut out = String::with_capacity(width * 3);
    for _ in 0..full {
        out.push('█');
    }
    if full < width {
        let eighths = (frac * 8.0).round() as usize;
        if eighths > 0 {
            // Left-to-right partial blocks: ▏▎▍▌▋▊▉█
            const PARTIAL: [char; 8] = ['▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'];
            out.push(PARTIAL[eighths - 1]);
        } else {
            out.push(' ');
        }
        for _ in full + 1..width {
            out.push(' ');
        }
    }
    out
}

/// Count of visible (non-space) glyphs in a rendered bar — used by layout
/// code and tests.
pub fn visible_width(bar: &str) -> usize {
    bar.chars().filter(|c| !c.is_whitespace()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], ' ', "exact zero is a hole");
        assert_eq!(chars[1], '█');
    }

    #[test]
    fn sparkline_monotone_heights_monotone_glyphs() {
        let heights: Vec<f64> = (1..=8).map(|i| i as f64 / 8.0).collect();
        let s: Vec<char> = sparkline(&heights).chars().collect();
        assert_eq!(s, BLOCKS.to_vec());
    }

    #[test]
    fn sparkline_clamps() {
        let s = sparkline(&[-0.5, 2.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[1], '█');
    }

    #[test]
    fn tiny_positive_value_is_visible() {
        let s = sparkline(&[1e-6]);
        assert_eq!(s.chars().next().unwrap(), '▁');
    }

    #[test]
    fn hbar_full_and_empty() {
        assert_eq!(hbar(1.0, 4), "████");
        assert_eq!(hbar(0.0, 4), "    ");
    }

    #[test]
    fn hbar_half() {
        let s = hbar(0.5, 4);
        assert!(s.starts_with("██"));
        assert_eq!(s.chars().count(), 4);
    }

    #[test]
    fn hbar_fractional_cells() {
        // 0.3 of width 10 = 3 cells exactly.
        assert_eq!(visible_width(&hbar(0.3, 10)), 3);
        // 0.25 of width 10 = 2.5 cells: 2 full + 1 half block.
        let s = hbar(0.25, 10);
        assert_eq!(visible_width(&s), 3);
        assert!(s.contains('▌'), "{s:?}");
    }

    #[test]
    fn hbar_constant_display_width() {
        for v in [0.0, 0.1, 0.33, 0.5, 0.99, 1.0] {
            assert_eq!(hbar(v, 12).chars().count(), 12);
        }
    }
}
