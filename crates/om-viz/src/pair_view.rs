//! Heatmap view of a 3-D rule cube: one attribute on each axis, cell
//! shade = confidence of the chosen class.
//!
//! This is the "detailed visualization \[of\] a 3-dimensional rule cube"
//! the paper mentions alongside Fig. 6 — the screen an analyst studies
//! before invoking the comparator, and where interaction exceptions
//! (`om_gi::pair_exception`) become visible as hot cells.

use std::fmt::Write as _;

use om_cube::{CubeError, RuleCube};
use om_data::ValueId;

/// Options for the pair heatmap.
#[derive(Debug, Clone)]
pub struct PairViewOptions {
    /// Shade cells relative to the maximum confidence in view (true) or
    /// to 100% (false).
    pub scale_to_max: bool,
    /// Mark cells with fewer records than this as unreliable (`·`).
    pub min_cell_count: u64,
}

impl Default for PairViewOptions {
    fn default() -> Self {
        Self {
            scale_to_max: true,
            min_cell_count: 10,
        }
    }
}

const SHADES: [char; 5] = ['░', '▒', '▓', '█', '█'];

/// Render the heatmap of `class` over a 2-attribute cube.
///
/// # Errors
/// Fails if the cube is not 2-attribute or the class id is out of range.
pub fn render_pair_heatmap(
    cube: &RuleCube,
    class: ValueId,
    options: &PairViewOptions,
) -> Result<String, CubeError> {
    if cube.n_attr_dims() != 2 {
        return Err(CubeError::Invalid(format!(
            "pair heatmap requires a 2-attribute cube, got {} dims",
            cube.n_attr_dims()
        )));
    }
    if class as usize >= cube.n_classes() {
        return Err(CubeError::OutOfRange {
            dim: "class".into(),
            value: class,
            card: cube.n_classes(),
        });
    }
    let [dim_a, dim_b] = [&cube.dims()[0], &cube.dims()[1]];
    let card_a = dim_a.cardinality();
    let card_b = dim_b.cardinality();

    // Gather confidences.
    let mut confs = vec![vec![None::<f64>; card_b]; card_a];
    let mut counts = vec![vec![0u64; card_b]; card_a];
    let mut max_conf = 0.0f64;
    for a in 0..card_a as ValueId {
        for b in 0..card_b as ValueId {
            let n = cube.cell_total(&[a, b])?;
            counts[a as usize][b as usize] = n;
            if let Some(cf) = cube.confidence(&[a, b], class)? {
                confs[a as usize][b as usize] = Some(cf);
                max_conf = max_conf.max(cf);
            }
        }
    }
    let denom = if options.scale_to_max {
        max_conf.max(1e-12)
    } else {
        1.0
    };

    let row_w = dim_a
        .labels
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} × {} — confidence of class {:?} (max in view: {:.3}%)",
        dim_a.name,
        dim_b.name,
        cube.class_labels()[class as usize],
        max_conf * 100.0
    );
    // Column header: first letters, plus an index legend below.
    let _ = write!(out, "  {:<row_w$} ", "");
    for b in 0..card_b {
        let _ = write!(out, "{:>3}", format!("c{b}"));
    }
    out.push('\n');
    for a in 0..card_a {
        let _ = write!(out, "  {:<row_w$} ", dim_a.labels[a]);
        for b in 0..card_b {
            let glyph = match confs[a][b] {
                None => "  —".to_owned(),
                Some(_) if counts[a][b] < options.min_cell_count => "  ·".to_owned(),
                Some(cf) => {
                    let level = ((cf / denom) * 4.0).round() as usize;
                    format!("  {}", SHADES[level.min(4)])
                }
            };
            out.push_str(&glyph);
        }
        out.push('\n');
    }
    let _ = writeln!(out, "  columns:");
    for (b, label) in dim_b.labels.iter().enumerate() {
        let _ = writeln!(out, "    c{b} = {label}");
    }
    let _ = writeln!(
        out,
        "  shading: ░ low → █ high; · = fewer than {} records; — = empty cell",
        options.min_cell_count
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_cube::{build_cube, CubeStore, StoreBuildOptions};
    use om_synth::paper_scenario;

    fn pair() -> om_cube::RuleCube {
        let (ds, _) = paper_scenario(40_000, 88);
        let s = ds.schema();
        let phone = s.attr_index("PhoneModel").unwrap();
        let time = s.attr_index("TimeOfCall").unwrap();
        build_cube(&ds, &[phone, time]).unwrap()
    }

    #[test]
    fn heatmap_renders_and_flags_hot_cell() {
        let cube = pair();
        let (ds, _) = paper_scenario(1_000, 88);
        let dropped = ds.schema().class().domain().get("dropped").unwrap();
        let text = render_pair_heatmap(&cube, dropped, &PairViewOptions::default()).unwrap();
        assert!(text.contains("PhoneModel × TimeOfCall"), "{text}");
        assert!(text.contains("ph2"), "{text}");
        assert!(text.contains("columns:"), "{text}");
        // The planted ph2×morning cell is the maximum: a full block exists.
        assert!(text.contains('█'), "{text}");
    }

    #[test]
    fn store_pair_cube_renders_too() {
        let (ds, _) = paper_scenario(20_000, 89);
        let s = ds.schema();
        let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        let cube = store
            .pair(
                s.attr_index("PhoneModel").unwrap(),
                s.attr_index("NetworkLoad").unwrap(),
            )
            .unwrap();
        let text =
            render_pair_heatmap(&cube, 1, &PairViewOptions::default()).unwrap();
        assert!(text.contains("NetworkLoad"), "{text}");
    }

    #[test]
    fn wrong_dimensionality_rejected() {
        let (ds, _) = paper_scenario(1_000, 90);
        let one = build_cube(&ds, &[0]).unwrap();
        assert!(render_pair_heatmap(&one, 0, &PairViewOptions::default()).is_err());
        let cube = pair();
        assert!(render_pair_heatmap(&cube, 99, &PairViewOptions::default()).is_err());
    }

    #[test]
    fn deterministic() {
        let cube = pair();
        let o = PairViewOptions::default();
        assert_eq!(
            render_pair_heatmap(&cube, 1, &o).unwrap(),
            render_pair_heatmap(&cube, 1, &o).unwrap()
        );
    }
}
