//! The detailed visualization mode (Fig. 6): one attribute's exact
//! numbers.
//!
//! "It reveals the following detailed pieces of knowledge: 1. The exact
//! drop rates of individual phones. 2. The exact counts and percentages
//! (which are not shown in the overall visualization)" (Section V-B).

use std::fmt::Write as _;

use om_cube::CubeView;

use crate::bars::hbar;
use crate::color::ColorMode;

/// Options for the detailed view.
#[derive(Debug, Clone)]
pub struct DetailedOptions {
    pub color: ColorMode,
    /// Width of each confidence bar, in cells.
    pub bar_width: usize,
    /// Scale bars to the per-class maximum instead of 100%.
    pub scale_to_max: bool,
}

impl Default for DetailedOptions {
    fn default() -> Self {
        Self {
            color: ColorMode::Plain,
            bar_width: 16,
            scale_to_max: true,
        }
    }
}

/// Render one attribute's detailed view.
pub fn render_detailed(view: &CubeView, options: &DetailedOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Detailed view: {} ({} values, {} records)",
        view.attr_name(),
        view.n_values(),
        view.total()
    );
    let value_w = view
        .value_labels()
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(5)
        .max(5);

    for (c, class_label) in view.class_labels().iter().enumerate() {
        let confs = view.class_confidences(c as u32);
        let max = if options.scale_to_max {
            confs.iter().copied().fold(0.0, f64::max).max(1e-12)
        } else {
            1.0
        };
        let _ = writeln!(out, "  class {class_label}:");
        for (v, label) in view.value_labels().iter().enumerate() {
            let n = view.value_total(v as u32);
            let count = view.count(v as u32, c as u32);
            match view.confidence(v as u32, c as u32) {
                Some(cf) => {
                    let _ = writeln!(
                        out,
                        "    {label:<value_w$}  n={n:<8} count={count:<8} conf={:>7.3}%  |{}|",
                        cf * 100.0,
                        hbar(cf / max, options.bar_width)
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "    {label:<value_w$}  n={n:<8} (no data)",
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_cube::{build_cube, CubeView};
    use om_data::{Cell, DatasetBuilder};

    fn view() -> CubeView {
        let mut b = DatasetBuilder::new().categorical("Phone").class("Out");
        for (p, drops, total) in [("ph1", 2, 100), ("ph2", 8, 200)] {
            for i in 0..total {
                b.push_row(&[
                    Cell::Str(p),
                    Cell::Str(if i < drops { "drop" } else { "ok" }),
                ])
                .unwrap();
            }
        }
        let ds = b.finish().unwrap();
        CubeView::from_cube(&build_cube(&ds, &[0]).unwrap()).unwrap()
    }

    #[test]
    fn shows_exact_counts_and_rates() {
        let text = render_detailed(&view(), &DetailedOptions::default());
        assert!(text.contains("Detailed view: Phone"), "{text}");
        assert!(text.contains("n=100"), "{text}");
        assert!(text.contains("n=200"), "{text}");
        assert!(text.contains("conf=  2.000%"), "{text}");
        assert!(text.contains("conf=  4.000%"), "{text}");
        assert!(text.contains("class drop"), "{text}");
    }

    #[test]
    fn empty_value_marked_no_data() {
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        b.push_row(&[Cell::Str("used"), Cell::Str("y")]).unwrap();
        let mut ds = b.finish().unwrap();
        // Intern an extra never-used label by rebuilding with both labels.
        drop(ds);
        let mut b = DatasetBuilder::new().categorical("A").class("C");
        b.push_row(&[Cell::Str("used"), Cell::Str("y")]).unwrap();
        b.push_row(&[Cell::Str("unused"), Cell::Str("y")]).unwrap();
        ds = b.finish().unwrap();
        let filtered = ds.take_rows(&[0]).unwrap();
        let view = CubeView::from_cube(&build_cube(&filtered, &[0]).unwrap()).unwrap();
        let text = render_detailed(&view, &DetailedOptions::default());
        assert!(text.contains("(no data)"), "{text}");
    }

    #[test]
    fn deterministic() {
        let v = view();
        let o = DetailedOptions::default();
        assert_eq!(render_detailed(&v, &o), render_detailed(&v, &o));
    }
}
