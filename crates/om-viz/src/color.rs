//! ANSI color primitives with a plain-text fallback.

/// Whether to emit ANSI escape codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorMode {
    /// Emit ANSI color escapes (interactive terminals).
    Ansi,
    /// Plain text (tests, files, pipes).
    Plain,
}

/// The palette used by the views (mirrors the paper's figures: red for
/// decreasing trends, green for increasing, gray for stable, blue for
/// default bars, light blue for overflow grids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    Red,
    Green,
    Gray,
    Blue,
    LightBlue,
    Yellow,
}

impl Color {
    fn code(self) -> &'static str {
        match self {
            Color::Red => "31",
            Color::Green => "32",
            Color::Gray => "90",
            Color::Blue => "34",
            Color::LightBlue => "96",
            Color::Yellow => "33",
        }
    }
}

/// Wrap `text` in the color when `mode` is ANSI; pass through otherwise.
pub fn paint(mode: ColorMode, color: Color, text: &str) -> String {
    match mode {
        ColorMode::Ansi => format!("\x1b[{}m{}\x1b[0m", color.code(), text),
        ColorMode::Plain => text.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_is_identity() {
        assert_eq!(paint(ColorMode::Plain, Color::Red, "x"), "x");
    }

    #[test]
    fn ansi_wraps_and_resets() {
        let s = paint(ColorMode::Ansi, Color::Green, "up");
        assert!(s.starts_with("\x1b[32m"));
        assert!(s.ends_with("\x1b[0m"));
        assert!(s.contains("up"));
    }

    #[test]
    fn distinct_codes() {
        use std::collections::HashSet;
        let codes: HashSet<_> = [
            Color::Red,
            Color::Green,
            Color::Gray,
            Color::Blue,
            Color::LightBlue,
            Color::Yellow,
        ]
        .iter()
        .map(|c| c.code())
        .collect();
        assert_eq!(codes.len(), 6);
    }
}
