//! The Mann–Kendall nonparametric trend test.
//!
//! The trend miner's default linear fit assumes roughly linear confidence
//! movement; Mann–Kendall only asks whether the series is *monotone*,
//! making it robust to curvature and outliers. `S = Σ_{i<j} sign(y_j −
//! y_i)`; under no trend `S` is asymptotically normal with the classical
//! tie-corrected variance.

use crate::normal::normal_cdf;

/// Result of a Mann–Kendall test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannKendallTest {
    /// The S statistic (positive = upward tendency).
    pub s: i64,
    /// Normalized test statistic (0 when |S| <= 1 or n < 3).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Run the test on a series in time order. Fewer than 3 points, or a
/// constant series, yields no evidence (`z = 0`, `p = 1`).
pub fn mann_kendall(ys: &[f64]) -> MannKendallTest {
    let n = ys.len();
    if n < 3 {
        return MannKendallTest { s: 0, z: 0.0, p_value: 1.0 };
    }
    let mut s: i64 = 0;
    for i in 0..n - 1 {
        for j in (i + 1)..n {
            s += match ys[j].partial_cmp(&ys[i]) {
                Some(std::cmp::Ordering::Greater) => 1,
                Some(std::cmp::Ordering::Less) => -1,
                _ => 0,
            };
        }
    }
    // Tie correction: group sizes of equal values.
    let mut sorted: Vec<f64> = ys.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut tie_term = 0f64;
    let mut run = 1usize;
    for i in 1..=sorted.len() {
        if i < sorted.len() && sorted[i] == sorted[i - 1] {
            run += 1;
        } else {
            if run > 1 {
                let t = run as f64;
                tie_term += t * (t - 1.0) * (2.0 * t + 5.0);
            }
            run = 1;
        }
    }
    let n_f = n as f64;
    let var = (n_f * (n_f - 1.0) * (2.0 * n_f + 5.0) - tie_term) / 18.0;
    if var <= 0.0 {
        return MannKendallTest { s, z: 0.0, p_value: 1.0 };
    }
    // Continuity correction.
    let z = if s > 0 {
        (s as f64 - 1.0) / var.sqrt()
    } else if s < 0 {
        (s as f64 + 1.0) / var.sqrt()
    } else {
        0.0
    };
    let p_value = 2.0 * normal_cdf(-z.abs());
    MannKendallTest { s, z, p_value }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictly_increasing_is_significant() {
        let ys: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let t = mann_kendall(&ys);
        assert_eq!(t.s, (12 * 11 / 2) as i64);
        assert!(t.z > 3.0);
        assert!(t.p_value < 0.01);
    }

    #[test]
    fn strictly_decreasing_mirrors() {
        let up: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let down: Vec<f64> = up.iter().rev().copied().collect();
        let tu = mann_kendall(&up);
        let td = mann_kendall(&down);
        assert_eq!(tu.s, -td.s);
        assert!((tu.p_value - td.p_value).abs() < 1e-12);
        assert!(td.z < 0.0);
    }

    #[test]
    fn constant_series_no_evidence() {
        let t = mann_kendall(&[5.0; 10]);
        assert_eq!(t.s, 0);
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn alternating_series_not_significant() {
        let ys = [1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0];
        let t = mann_kendall(&ys);
        assert!(t.p_value > 0.1, "p = {}", t.p_value);
    }

    #[test]
    fn short_series_vacuous() {
        assert_eq!(mann_kendall(&[]).p_value, 1.0);
        assert_eq!(mann_kendall(&[1.0, 2.0]).p_value, 1.0);
    }

    #[test]
    fn monotone_but_nonlinear_detected() {
        // Exponential growth: a linear fit has mediocre r²; MK is exact.
        let ys: Vec<f64> = (0..10).map(|i| (i as f64 / 2.0).exp()).collect();
        let t = mann_kendall(&ys);
        assert!(t.p_value < 0.01);
    }

    #[test]
    fn ties_handled() {
        let ys = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0];
        let t = mann_kendall(&ys);
        assert!(t.s > 0);
        assert!(t.p_value < 0.05, "p = {}", t.p_value);
    }
}
