//! Small descriptive-statistics helpers shared across the workspace.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`); `0.0` for fewer than one element.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by `n - 1`); `0.0` for fewer than two elements.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    population_variance(xs).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn mean_basic() {
        close(mean(&[1.0, 2.0, 3.0]), 2.0, 1e-12);
        close(mean(&[]), 0.0, 1e-12);
    }

    #[test]
    fn variance_basic() {
        close(population_variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]), 4.0, 1e-12);
        close(sample_variance(&[2.0, 4.0]), 2.0, 1e-12);
        close(sample_variance(&[5.0]), 0.0, 1e-12);
    }

    #[test]
    fn std_dev_basic() {
        close(std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]), 2.0, 1e-12);
    }

    #[test]
    fn constant_slice_has_zero_variance() {
        close(population_variance(&[3.0; 10]), 0.0, 1e-12);
        close(sample_variance(&[3.0; 10]), 0.0, 1e-12);
    }
}
