//! The standard normal distribution, built from scratch.
//!
//! Table I of the paper lists the z values used for the confidence-interval
//! adjustment of Section IV-B (0.90 → 1.645, 0.95 → 1.96, 0.99 → 2.576).
//! Rather than hard-coding the table, we implement the error function and
//! the inverse normal CDF so the table is reproduced analytically (see
//! `exp_table1` in `om-bench`).

use std::f64::consts::{PI, SQRT_2};

/// The error function `erf(x)`, accurate to near double precision.
///
/// Uses the identity `erf(x) = P(1/2, x²)` for `x >= 0`, where `P` is the
/// regularized lower incomplete gamma function implemented in
/// [`crate::gamma`] with a convergence tolerance of `3e-14`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = crate::gamma::reg_gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// For `x >= 0` this uses `Q(1/2, x²)` directly, which stays accurate deep
/// into the tail where `1 - erf(x)` would underflow.
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        crate::gamma::reg_gamma_q(0.5, x * x)
    } else {
        2.0 - crate::gamma::reg_gamma_q(0.5, x * x)
    }
}

/// Probability density of the standard normal distribution at `x`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Cumulative distribution of the standard normal at `x`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Inverse of the standard normal CDF (the quantile / probit function).
///
/// Implemented with Acklam's rational approximation followed by one step of
/// Halley refinement, giving full double precision over `(0, 1)`.
///
/// # Panics
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inverse_normal_cdf requires p in (0,1), got {p}"
    );

    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the high-precision CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// The two-sided z value for a statistical confidence `level` (e.g. 0.95).
///
/// This reproduces Table I of the paper: `z_for_confidence(0.95)` is
/// (up to rounding) the paper's 1.96.
///
/// ```
/// let z = om_stats::z_for_confidence(0.95);
/// assert!((z - 1.96).abs() < 1e-3);
/// ```
///
/// # Panics
/// Panics if `level` is not strictly inside `(0, 1)`.
pub fn z_for_confidence(level: f64) -> f64 {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1), got {level}"
    );
    inverse_normal_cdf(0.5 + level / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-12);
        close(erf(1.0), 0.842_700_792_949_715, 1e-6);
        close(erf(-1.0), -0.842_700_792_949_715, 1e-6);
        close(erf(2.0), 0.995_322_265_018_953, 1e-6);
        close(erf(3.5), 0.999_999_256_901_628, 1e-6);
    }

    #[test]
    fn erf_is_odd() {
        for i in 0..100 {
            let x = i as f64 / 10.0;
            close(erf(x), -erf(-x), 1e-12);
        }
    }

    #[test]
    fn cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        close(normal_cdf(1.96), 0.975_002_104_851_78, 1e-6);
        close(normal_cdf(-1.96), 0.024_997_895_148_22, 1e-6);
        close(normal_cdf(2.576), 0.995_002_467, 1e-6);
    }

    #[test]
    fn pdf_known_values() {
        close(normal_pdf(0.0), 0.398_942_280_401_432_7, 1e-12);
        close(normal_pdf(1.0), 0.241_970_724_519_143_37, 1e-12);
    }

    #[test]
    fn quantile_round_trips_cdf() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            let x = inverse_normal_cdf(p);
            close(normal_cdf(x), p, 1e-9);
        }
    }

    #[test]
    fn quantile_extreme_tails() {
        let x = inverse_normal_cdf(1e-10);
        close(normal_cdf(x), 1e-10, 1e-13);
        let x = inverse_normal_cdf(1.0 - 1e-10);
        assert!(x > 6.0);
    }

    #[test]
    fn table_one_z_values() {
        // Table I of the paper.
        close(z_for_confidence(0.90), 1.645, 5e-4);
        close(z_for_confidence(0.95), 1.960, 5e-4);
        close(z_for_confidence(0.99), 2.576, 5e-4);
    }

    #[test]
    #[should_panic(expected = "confidence level must be in (0,1)")]
    fn z_rejects_unit_level() {
        z_for_confidence(1.0);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn quantile_rejects_zero() {
        inverse_normal_cdf(0.0);
    }

    #[test]
    fn z_is_monotone_in_level() {
        let mut prev = 0.0;
        for i in 1..100 {
            let z = z_for_confidence(i as f64 / 100.0);
            assert!(z > prev);
            prev = z;
        }
    }
}
