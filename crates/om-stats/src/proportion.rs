//! Confidence intervals for population proportions (Section IV-B).
//!
//! The paper adjusts every rule confidence `cf_jk` by the margin
//!
//! ```text
//! e_jk = z * sqrt( cf_jk * (1 - cf_jk) / N_jk )
//! ```
//!
//! which is the classical **Wald interval**. We also provide the **Wilson
//! score interval** as a more robust alternative for an ablation: Wald
//! collapses to a zero-width interval at `cf = 0` or `cf = 1`, which is
//! exactly the regime the paper's "property attributes" (Section IV-C) live
//! in; Wilson does not.

use crate::normal::z_for_confidence;

/// A two-sided confidence interval for a proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionInterval {
    /// Point estimate `p̂` of the proportion.
    pub estimate: f64,
    /// Lower bound, clamped to `[0, 1]`.
    pub lower: f64,
    /// Upper bound, clamped to `[0, 1]`.
    pub upper: f64,
}

impl ProportionInterval {
    /// Half-width of the interval.
    pub fn margin(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Whether two intervals overlap.
    pub fn overlaps(&self, other: &ProportionInterval) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }
}

/// The Wald margin `e = z * sqrt(p(1-p)/n)` used by the paper's formula.
///
/// Returns `0.0` when `n == 0` (empty cell: no evidence, no margin — the
/// caller is expected to treat zero-count cells separately, as the paper's
/// property-attribute procedure does).
///
/// ```
/// // A 10% rate over 1000 records is known to within about ±1.9 points.
/// let e = om_stats::proportion_margin(0.10, 1000, 0.95);
/// assert!((e - 0.0186).abs() < 1e-3);
/// ```
///
/// # Panics
/// Panics if `p` is outside `[0, 1]` or `level` outside `(0, 1)`.
pub fn proportion_margin(p: f64, n: u64, level: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "proportion must be in [0,1], got {p}");
    if n == 0 {
        return 0.0;
    }
    let z = z_for_confidence(level);
    z * (p * (1.0 - p) / n as f64).sqrt()
}

/// Wald interval for a proportion `p` observed over `n` trials.
pub fn wald_interval(p: f64, n: u64, level: f64) -> ProportionInterval {
    let e = proportion_margin(p, n, level);
    ProportionInterval {
        estimate: p,
        lower: (p - e).max(0.0),
        upper: (p + e).min(1.0),
    }
}

/// Wilson score interval for `successes` out of `n` trials.
///
/// Unlike Wald, this is well-behaved at `p = 0` and `p = 1` and for small
/// `n`; used in the `interval-method` ablation of `om-compare`.
pub fn wilson_interval(successes: u64, n: u64, level: f64) -> ProportionInterval {
    assert!(successes <= n, "successes ({successes}) must be <= n ({n})");
    if n == 0 {
        return ProportionInterval {
            estimate: 0.0,
            lower: 0.0,
            upper: 1.0,
        };
    }
    let z = z_for_confidence(level);
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = (p + z2 / (2.0 * n_f)) / denom;
    let half = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt() / denom;
    // Clamp to [0,1] and snap to the estimate: mathematically the interval
    // always contains p, but at p = 0 or 1 floating point can land an ulp
    // short.
    ProportionInterval {
        estimate: p,
        lower: (center - half).max(0.0).min(p),
        upper: (center + half).min(1.0).max(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn margin_matches_paper_formula() {
        // cf = 10%, N = 1000, level 0.95 -> e = 1.96 * sqrt(0.1*0.9/1000)
        let e = proportion_margin(0.10, 1000, 0.95);
        close(e, 1.96 * (0.1f64 * 0.9 / 1000.0).sqrt(), 1e-4);
    }

    #[test]
    fn margin_zero_for_empty_cell() {
        assert_eq!(proportion_margin(0.5, 0, 0.95), 0.0);
    }

    #[test]
    fn margin_shrinks_with_n() {
        let mut prev = f64::INFINITY;
        for n in [10u64, 100, 1000, 10000] {
            let e = proportion_margin(0.3, n, 0.95);
            assert!(e < prev);
            prev = e;
        }
    }

    #[test]
    fn margin_grows_with_level() {
        let e90 = proportion_margin(0.3, 100, 0.90);
        let e95 = proportion_margin(0.3, 100, 0.95);
        let e99 = proportion_margin(0.3, 100, 0.99);
        assert!(e90 < e95 && e95 < e99);
    }

    #[test]
    fn wald_clamps_to_unit_interval() {
        let iv = wald_interval(0.01, 10, 0.99);
        assert!(iv.lower >= 0.0);
        let iv = wald_interval(0.99, 10, 0.99);
        assert!(iv.upper <= 1.0);
    }

    #[test]
    fn wald_degenerate_at_extremes() {
        // The known pathology motivating the Wilson ablation.
        let iv = wald_interval(0.0, 100, 0.95);
        assert_eq!(iv.lower, 0.0);
        assert_eq!(iv.upper, 0.0);
    }

    #[test]
    fn wilson_not_degenerate_at_extremes() {
        let iv = wilson_interval(0, 100, 0.95);
        close(iv.lower, 0.0, 1e-12);
        assert!(iv.upper > 0.01, "Wilson upper bound must exceed 0 at p=0");
        let iv = wilson_interval(100, 100, 0.95);
        assert!(iv.lower < 0.99);
        close(iv.upper, 1.0, 1e-12);
    }

    #[test]
    fn wilson_contains_estimate() {
        for s in 0..=50u64 {
            let iv = wilson_interval(s, 50, 0.95);
            assert!(iv.contains(iv.estimate), "estimate outside interval for s={s}");
        }
    }

    #[test]
    fn wilson_empty_n_is_vacuous() {
        let iv = wilson_interval(0, 0, 0.95);
        assert_eq!((iv.lower, iv.upper), (0.0, 1.0));
    }

    #[test]
    fn overlap_detection() {
        let a = wald_interval(0.10, 1000, 0.95);
        let b = wald_interval(0.12, 1000, 0.95);
        let c = wald_interval(0.50, 1000, 0.95);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn margin_rejects_bad_p() {
        proportion_margin(1.5, 10, 0.95);
    }
}
