//! Pearson chi-square test of independence on contingency tables.
//!
//! Used by the general impressions miner to rank *influential attributes*
//! (attribute vs class association), and by `om-compare::baselines` as a
//! baseline attribute ranker to compare against the paper's measure.

use crate::gamma::reg_gamma_q;

/// Result of a chi-square independence test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The Pearson chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom `(rows-1)(cols-1)`.
    pub dof: u64,
    /// Upper-tail p-value `P(X² >= statistic)`.
    pub p_value: f64,
}

/// Upper-tail p-value of a chi-square statistic with `dof` degrees of freedom.
///
/// # Panics
/// Panics if `dof == 0` or `statistic < 0`.
pub fn chi2_p_value(statistic: f64, dof: u64) -> f64 {
    assert!(dof > 0, "chi-square needs at least 1 degree of freedom");
    assert!(statistic >= 0.0, "chi-square statistic must be >= 0");
    reg_gamma_q(dof as f64 / 2.0, statistic / 2.0)
}

/// Chi-square test of independence on an `r x c` contingency table of counts.
///
/// `table[i][j]` is the observed count of row category `i`, column category
/// `j`. Rows or columns whose marginal total is zero are ignored (they carry
/// no information and would otherwise produce 0/0); if fewer than two
/// informative rows or columns remain, the statistic is 0 with `dof = 1` and
/// p-value 1 (no evidence of association — matches how the paper's system
/// treats all-empty attribute values as uninformative).
pub fn chi2_independence(table: &[Vec<u64>]) -> Chi2Result {
    let rows = table.len();
    assert!(rows > 0, "contingency table must have at least one row");
    let cols = table[0].len();
    assert!(
        table.iter().all(|r| r.len() == cols),
        "contingency table rows must have equal length"
    );

    let row_totals: Vec<u64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_totals: Vec<u64> = (0..cols)
        .map(|j| table.iter().map(|r| r[j]).sum())
        .collect();
    let grand: u64 = row_totals.iter().sum();

    let live_rows: Vec<usize> = (0..rows).filter(|&i| row_totals[i] > 0).collect();
    let live_cols: Vec<usize> = (0..cols).filter(|&j| col_totals[j] > 0).collect();

    if live_rows.len() < 2 || live_cols.len() < 2 || grand == 0 {
        return Chi2Result {
            statistic: 0.0,
            dof: 1,
            p_value: 1.0,
        };
    }

    let grand_f = grand as f64;
    let mut stat = 0.0;
    for &i in &live_rows {
        for &j in &live_cols {
            let expected = row_totals[i] as f64 * col_totals[j] as f64 / grand_f;
            let diff = table[i][j] as f64 - expected;
            stat += diff * diff / expected;
        }
    }
    let dof = ((live_rows.len() - 1) * (live_cols.len() - 1)) as u64;
    Chi2Result {
        statistic: stat,
        dof,
        p_value: chi2_p_value(stat, dof),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn independent_table_has_zero_statistic() {
        // Perfectly proportional rows.
        let t = vec![vec![10, 20, 30], vec![20, 40, 60]];
        let r = chi2_independence(&t);
        close(r.statistic, 0.0, 1e-9);
        close(r.p_value, 1.0, 1e-9);
        assert_eq!(r.dof, 2);
    }

    #[test]
    fn textbook_two_by_two() {
        // Classic example: chi2 = sum (O-E)^2/E.
        let t = vec![vec![90, 60], vec![30, 120]];
        let r = chi2_independence(&t);
        // E = [[60,90],[60,90]]; chi2 = 30^2/60*2 + 30^2/90*2 = 30+20 = 50.
        close(r.statistic, 50.0, 1e-9);
        assert_eq!(r.dof, 1);
        assert!(r.p_value < 1e-10);
    }

    #[test]
    fn p_value_known_quantiles() {
        // chi2(3.841, 1) ~ 0.05; chi2(5.991, 2) ~ 0.05.
        close(chi2_p_value(3.841, 1), 0.05, 1e-3);
        close(chi2_p_value(5.991, 2), 0.05, 1e-3);
        close(chi2_p_value(6.635, 1), 0.01, 1e-3);
    }

    #[test]
    fn empty_rows_are_ignored() {
        let with_empty = vec![vec![90, 60], vec![0, 0], vec![30, 120]];
        let without = vec![vec![90, 60], vec![30, 120]];
        let a = chi2_independence(&with_empty);
        let b = chi2_independence(&without);
        close(a.statistic, b.statistic, 1e-12);
        assert_eq!(a.dof, b.dof);
    }

    #[test]
    fn degenerate_table_is_no_evidence() {
        let t = vec![vec![5, 7]];
        let r = chi2_independence(&t);
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn all_zero_table_is_no_evidence() {
        let t = vec![vec![0, 0], vec![0, 0]];
        let r = chi2_independence(&t);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_table_rejected() {
        chi2_independence(&[vec![1, 2], vec![3]]);
    }
}
