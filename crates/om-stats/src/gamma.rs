//! Gamma-family special functions needed for chi-square p-values.
//!
//! The chi-square CDF with `k` degrees of freedom is the regularized lower
//! incomplete gamma function `P(k/2, x/2)`. We implement `ln Γ` via the
//! Lanczos approximation and `P`/`Q` via the standard series / continued
//! fraction split (Numerical Recipes, section 6.2).

/// Natural log of the gamma function for `x > 0` (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_5e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)` for `a > 0`, `x >= 0`.
pub fn reg_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cont_frac(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 - P(a, x)`.
pub fn reg_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cont_frac(a, x)
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 3.0e-14;
const FPMIN: f64 = 1.0e-300;

/// Series representation of `P(a, x)`; converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

/// Continued-fraction representation of `Q(a, x)`; converges for `x >= a + 1`.
fn gamma_q_cont_frac(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            close(ln_gamma(n as f64), fact.ln(), 1e-9);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.0, 0.1, 1.0, 5.0, 25.0, 80.0] {
                close(reg_gamma_p(a, x) + reg_gamma_q(a, x), 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 0.5, 1.0, 2.0, 10.0] {
            close(reg_gamma_p(1.0, x), 1.0 - (-x_f(x)).exp(), 1e-12);
        }
        fn x_f(x: f64) -> f64 {
            x
        }
    }

    #[test]
    fn p_is_monotone_in_x() {
        let mut prev = -1.0;
        for i in 0..200 {
            let p = reg_gamma_p(3.0, i as f64 / 10.0);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "requires a > 0")]
    fn p_rejects_bad_a() {
        reg_gamma_p(0.0, 1.0);
    }
}
