//! Multiple-testing correction: Benjamini–Hochberg false discovery rate.
//!
//! The exception miner tests every (attribute, value, class) cell — easily
//! thousands of hypotheses on a wide dataset, so a fixed per-test α leaks
//! false "exceptions". BH adjustment keeps the *expected fraction* of
//! false discoveries below the chosen level.

/// Benjamini–Hochberg adjusted p-values (a.k.a. q-values), in the input
/// order. Each adjusted value is `min_{j >= rank(i)} ( p_(j) * m / j )`,
/// clamped to 1.
pub fn bh_adjust(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    assert!(
        p_values.iter().all(|p| (0.0..=1.0).contains(p)),
        "p-values must lie in [0, 1]"
    );
    // Sort indices by p ascending.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        p_values[a]
            .partial_cmp(&p_values[b])
            .expect("p-values are not NaN")
    });
    // Walk from the largest p down, taking the running minimum of p*m/rank.
    let mut adjusted = vec![0.0f64; m];
    let mut running_min = 1.0f64;
    for rank in (1..=m).rev() {
        let idx = order[rank - 1];
        let candidate = (p_values[idx] * m as f64 / rank as f64).min(1.0);
        running_min = running_min.min(candidate);
        adjusted[idx] = running_min;
    }
    adjusted
}

/// Which hypotheses survive BH at FDR level `q` (boolean mask, input
/// order).
pub fn bh_reject(p_values: &[f64], q: f64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&q), "FDR level must be in [0, 1]");
    bh_adjust(p_values).into_iter().map(|a| a <= q).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_p_value_unchanged() {
        assert_eq!(bh_adjust(&[0.03]), vec![0.03]);
    }

    #[test]
    fn textbook_example() {
        // Classic BH worked example.
        let ps = [0.01, 0.04, 0.03, 0.005];
        let adj = bh_adjust(&ps);
        // Sorted: 0.005, 0.01, 0.03, 0.04 → raw adj 0.02, 0.02, 0.04, 0.04.
        assert!((adj[3] - 0.02).abs() < 1e-12);
        assert!((adj[0] - 0.02).abs() < 1e-12);
        assert!((adj[2] - 0.04).abs() < 1e-12);
        assert!((adj[1] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn adjustment_is_monotone_and_bounded() {
        let ps = [0.9, 0.001, 0.5, 0.02, 0.02, 1.0];
        let adj = bh_adjust(&ps);
        for (p, a) in ps.iter().zip(&adj) {
            assert!(*a >= *p - 1e-15, "adjusted below raw");
            assert!(*a <= 1.0);
        }
        // Order of adjusted values follows order of raw values.
        let mut pairs: Vec<(f64, f64)> = ps.iter().copied().zip(adj.iter().copied()).collect();
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-15);
        }
    }

    #[test]
    fn rejection_mask() {
        let ps = [0.001, 0.2, 0.011, 0.9];
        let mask = bh_reject(&ps, 0.05);
        assert_eq!(mask, vec![true, false, true, false]);
    }

    #[test]
    fn empty_input() {
        assert!(bh_adjust(&[]).is_empty());
        assert!(bh_reject(&[], 0.05).is_empty());
    }

    #[test]
    fn all_null_hypotheses_mostly_survive() {
        // Uniform-ish p-values: nothing should be rejected at q = 0.05.
        let ps: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let mask = bh_reject(&ps, 0.05);
        assert!(mask.iter().all(|&r| !r));
    }

    #[test]
    #[should_panic(expected = "p-values must lie")]
    fn rejects_out_of_range() {
        bh_adjust(&[1.5]);
    }
}
