//! Simple linear regression, used by the trend miner (`om-gi::trend`) to
//! detect increasing / decreasing / stable confidence trends across the
//! ordered values of an attribute (the colored arrows of Fig. 5).

/// Ordinary least squares fit `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    pub slope: f64,
    pub intercept: f64,
    /// Pearson correlation coefficient `r` in `[-1, 1]`; `0` when either
    /// variable is constant.
    pub r: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Coefficient of determination `r²`.
    pub fn r_squared(&self) -> f64 {
        self.r * self.r
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Least-squares regression of `y` on `x`.
///
/// With fewer than two points, or a constant `x`, the fit is flat
/// (`slope = 0`, `intercept = mean(y)`, `r = 0`).
///
/// # Panics
/// Panics if `xs` and `ys` have different lengths.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
    let n = xs.len();
    if n < 2 {
        return LinearFit {
            slope: 0.0,
            intercept: ys.first().copied().unwrap_or(0.0),
            r: 0.0,
            n,
        };
    }
    let n_f = n as f64;
    let mean_x = xs.iter().sum::<f64>() / n_f;
    let mean_y = ys.iter().sum::<f64>() / n_f;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 {
        return LinearFit {
            slope: 0.0,
            intercept: mean_y,
            r: 0.0,
            n,
        };
    }
    let slope = sxy / sxx;
    let r = if syy == 0.0 { 0.0 } else { sxy / (sxx * syy).sqrt() };
    LinearFit {
        slope,
        intercept: mean_y - slope * mean_x,
        r,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let fit = linear_regression(&xs, &ys);
        close(fit.slope, 3.0, 1e-12);
        close(fit.intercept, -2.0, 1e-12);
        close(fit.r, 1.0, 1e-12);
        close(fit.r_squared(), 1.0, 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [9.0, 7.0, 5.0, 3.0];
        let fit = linear_regression(&xs, &ys);
        close(fit.slope, -2.0, 1e-12);
        close(fit.r, -1.0, 1e-12);
    }

    #[test]
    fn constant_y_is_flat() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [4.0, 4.0, 4.0];
        let fit = linear_regression(&xs, &ys);
        close(fit.slope, 0.0, 1e-12);
        close(fit.intercept, 4.0, 1e-12);
        close(fit.r, 0.0, 1e-12);
    }

    #[test]
    fn constant_x_is_flat() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        let fit = linear_regression(&xs, &ys);
        close(fit.slope, 0.0, 1e-12);
        close(fit.intercept, 2.0, 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let fit = linear_regression(&[], &[]);
        assert_eq!(fit.n, 0);
        let fit = linear_regression(&[1.0], &[7.0]);
        assert_eq!(fit.n, 1);
        close(fit.intercept, 7.0, 1e-12);
    }

    #[test]
    fn predict_interpolates() {
        let fit = linear_regression(&[0.0, 2.0], &[0.0, 4.0]);
        close(fit.predict(1.0), 2.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_rejected() {
        linear_regression(&[1.0], &[1.0, 2.0]);
    }
}
