//! Class entropy and information gain.
//!
//! Used by the entropy-MDL discretizer (Fayyad–Irani) and by the
//! information-gain baseline ranker in `om-compare::baselines`.

/// Shannon entropy (base 2) of a count distribution. Zero counts contribute
/// nothing; an empty or all-zero distribution has entropy 0.
pub fn entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total_f;
            -p * p.log2()
        })
        .sum()
}

/// Weighted entropy of a partition: `sum_k (n_k / n) * H(part_k)`.
pub fn split_entropy(parts: &[Vec<u64>]) -> f64 {
    let total: u64 = parts.iter().map(|p| p.iter().sum::<u64>()).sum();
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    parts
        .iter()
        .map(|p| {
            let n: u64 = p.iter().sum();
            n as f64 / total_f * entropy(p)
        })
        .sum()
}

/// Information gain of splitting the pooled class distribution into `parts`.
///
/// `IG = H(pooled) - split_entropy(parts)`; always `>= 0` up to floating
/// point noise (clamped at 0).
pub fn info_gain(parts: &[Vec<u64>]) -> f64 {
    if parts.is_empty() {
        return 0.0;
    }
    let classes = parts[0].len();
    assert!(
        parts.iter().all(|p| p.len() == classes),
        "all partitions must have the same number of classes"
    );
    let mut pooled = vec![0u64; classes];
    for p in parts {
        for (acc, &c) in pooled.iter_mut().zip(p) {
            *acc += c;
        }
    }
    (entropy(&pooled) - split_entropy(parts)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn uniform_binary_entropy_is_one() {
        close(entropy(&[50, 50]), 1.0, 1e-12);
    }

    #[test]
    fn pure_distribution_entropy_is_zero() {
        close(entropy(&[100, 0, 0]), 0.0, 1e-12);
        close(entropy(&[]), 0.0, 1e-12);
        close(entropy(&[0, 0]), 0.0, 1e-12);
    }

    #[test]
    fn uniform_k_ary_entropy_is_log_k() {
        close(entropy(&[10, 10, 10, 10]), 2.0, 1e-12);
        close(entropy(&[7, 7, 7, 7, 7, 7, 7, 7]), 3.0, 1e-12);
    }

    #[test]
    fn entropy_invariant_to_scaling() {
        close(entropy(&[3, 7]), entropy(&[30, 70]), 1e-12);
    }

    #[test]
    fn perfect_split_gains_full_entropy() {
        // Pooled is 50/50 (H=1); each part is pure (H=0).
        let g = info_gain(&[vec![50, 0], vec![0, 50]]);
        close(g, 1.0, 1e-12);
    }

    #[test]
    fn useless_split_gains_nothing() {
        let g = info_gain(&[vec![25, 25], vec![25, 25]]);
        close(g, 0.0, 1e-12);
    }

    #[test]
    fn gain_is_nonnegative() {
        // A few arbitrary partitions.
        for parts in [
            vec![vec![1, 9], vec![9, 1]],
            vec![vec![5, 5], vec![1, 0], vec![0, 7]],
            vec![vec![0, 0], vec![3, 3]],
        ] {
            assert!(info_gain(&parts) >= 0.0);
        }
    }

    #[test]
    fn empty_parts_gain_zero() {
        close(info_gain(&[]), 0.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "same number of classes")]
    fn ragged_parts_rejected() {
        info_gain(&[vec![1, 2], vec![3]]);
    }
}
