//! Statistics substrate for the Opportunity Map reproduction.
//!
//! The paper ("Finding Actionable Knowledge via Automated Comparison",
//! ICDE 2009) relies on a handful of classical statistics:
//!
//! * **Section IV-B** computes Wald confidence intervals for rule
//!   confidences (population proportions) at a given statistical confidence
//!   level, using the z values of Table I. [`normal`] implements the normal
//!   distribution from scratch (erf, CDF, quantile) so that the z values of
//!   Table I are *derived*, not hard-coded, and [`proportion`] implements the
//!   interval itself.
//! * The **general impressions miner** (Section III-B, prior work \[20\])
//!   needs trend detection ([`regression`]), exception detection
//!   ([`ztest`]) and influential-attribute ranking ([`chi2`], [`mod@entropy`]).
//! * The **entropy-MDL discretizer** (Section III-A mentions discretization
//!   of continuous attributes) needs class entropy ([`mod@entropy`]).
//!
//! Everything here is implemented from first principles on `f64`; no
//! external numerical crates are used.

pub mod chi2;
pub mod descriptive;
pub mod entropy;
pub mod fdr;
pub mod gamma;
pub mod mann_kendall;
pub mod normal;
pub mod proportion;
pub mod regression;
pub mod ztest;

pub use chi2::{chi2_independence, chi2_p_value, Chi2Result};
pub use descriptive::{mean, population_variance, sample_variance, std_dev};
pub use entropy::{entropy, info_gain, split_entropy};
pub use fdr::{bh_adjust, bh_reject};
pub use mann_kendall::{mann_kendall, MannKendallTest};
pub use normal::{erf, inverse_normal_cdf, normal_cdf, normal_pdf, z_for_confidence};
pub use proportion::{
    proportion_margin, wald_interval, wilson_interval, ProportionInterval,
};
pub use regression::{linear_regression, LinearFit};
pub use ztest::{two_proportion_z, TwoProportionTest};
