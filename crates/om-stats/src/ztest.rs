//! Two-proportion z-test.
//!
//! Used by the exception miner (`om-gi::exception`) to decide whether a
//! cell's confidence differs significantly from its attribute-level base
//! rate, and available as a significance filter for comparison results.

use crate::normal::normal_cdf;

/// Result of a pooled two-proportion z-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoProportionTest {
    /// The z statistic; positive when `p1 > p2`.
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Pooled two-proportion z-test of `H0: p1 == p2` given `x1` successes out
/// of `n1` trials and `x2` out of `n2`.
///
/// If either sample is empty, or the pooled proportion is degenerate (0 or
/// 1, so no variance), the test reports `z = 0`, `p = 1` (no evidence).
pub fn two_proportion_z(x1: u64, n1: u64, x2: u64, n2: u64) -> TwoProportionTest {
    assert!(x1 <= n1, "x1 ({x1}) must be <= n1 ({n1})");
    assert!(x2 <= n2, "x2 ({x2}) must be <= n2 ({n2})");
    if n1 == 0 || n2 == 0 {
        return TwoProportionTest { z: 0.0, p_value: 1.0 };
    }
    let p1 = x1 as f64 / n1 as f64;
    let p2 = x2 as f64 / n2 as f64;
    let pooled = (x1 + x2) as f64 / (n1 + n2) as f64;
    let var = pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64);
    if var <= 0.0 {
        return TwoProportionTest { z: 0.0, p_value: 1.0 };
    }
    let z = (p1 - p2) / var.sqrt();
    let p_value = 2.0 * normal_cdf(-z.abs());
    TwoProportionTest { z, p_value }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn equal_proportions_no_evidence() {
        let t = two_proportion_z(50, 100, 500, 1000);
        close(t.z, 0.0, 1e-12);
        close(t.p_value, 1.0, 1e-9);
    }

    #[test]
    fn clearly_different_proportions() {
        let t = two_proportion_z(900, 1000, 100, 1000);
        assert!(t.z > 30.0);
        assert!(t.p_value < 1e-10);
    }

    #[test]
    fn sign_of_z_follows_direction() {
        let t = two_proportion_z(10, 100, 40, 100);
        assert!(t.z < 0.0);
        let t = two_proportion_z(40, 100, 10, 100);
        assert!(t.z > 0.0);
    }

    #[test]
    fn empty_samples_are_no_evidence() {
        let t = two_proportion_z(0, 0, 5, 10);
        close(t.p_value, 1.0, 1e-12);
    }

    #[test]
    fn degenerate_pooled_proportion() {
        // Everything succeeded: pooled p = 1, no variance.
        let t = two_proportion_z(10, 10, 20, 20);
        close(t.p_value, 1.0, 1e-12);
        let t = two_proportion_z(0, 10, 0, 20);
        close(t.p_value, 1.0, 1e-12);
    }

    #[test]
    fn moderate_difference_p_value() {
        // p1=0.5 vs p2=0.4 with n=200 each: z ≈ 2.01, p ≈ 0.044.
        let t = two_proportion_z(100, 200, 80, 200);
        assert!(t.p_value > 0.01 && t.p_value < 0.1, "p={}", t.p_value);
    }

    #[test]
    #[should_panic(expected = "must be <= n1")]
    fn rejects_impossible_counts() {
        two_proportion_z(11, 10, 0, 10);
    }
}
