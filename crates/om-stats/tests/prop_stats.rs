//! Property-based tests for the statistics substrate.

use om_stats::*;
use proptest::prelude::*;

proptest! {
    #[test]
    fn erf_bounded(x in -10.0f64..10.0) {
        let v = erf(x);
        prop_assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    fn cdf_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf(p in 0.001f64..0.999) {
        let x = inverse_normal_cdf(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn wald_interval_contains_estimate(p in 0.0f64..=1.0, n in 1u64..100_000) {
        let iv = wald_interval(p, n, 0.95);
        prop_assert!(iv.contains(p));
        prop_assert!(iv.lower >= 0.0 && iv.upper <= 1.0);
    }

    #[test]
    fn wilson_interval_well_formed(s in 0u64..1000, extra in 0u64..1000) {
        let n = s + extra;
        if n > 0 {
            let iv = wilson_interval(s, n, 0.95);
            prop_assert!(iv.lower <= iv.upper);
            prop_assert!(iv.contains(s as f64 / n as f64));
        }
    }

    #[test]
    fn margin_nonnegative(p in 0.0f64..=1.0, n in 0u64..1_000_000) {
        prop_assert!(proportion_margin(p, n, 0.95) >= 0.0);
    }

    #[test]
    fn chi2_statistic_nonnegative(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u64..500, 2..5), 2..5)
    ) {
        let cols = rows[0].len();
        let table: Vec<Vec<u64>> = rows.into_iter()
            .map(|mut r| { r.resize(cols, 0); r })
            .collect();
        let r = chi2_independence(&table);
        prop_assert!(r.statistic >= 0.0);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn entropy_bounded_by_log_k(counts in proptest::collection::vec(0u64..10_000, 1..10)) {
        let h = entropy(&counts);
        let k = counts.iter().filter(|&&c| c > 0).count().max(1);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (k as f64).log2() + 1e-9);
    }

    #[test]
    fn info_gain_nonnegative(
        parts in proptest::collection::vec(
            proptest::collection::vec(0u64..1000, 3), 1..6)
    ) {
        prop_assert!(info_gain(&parts) >= 0.0);
    }

    #[test]
    fn regression_r_bounded(
        pts in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..50)
    ) {
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let fit = linear_regression(&xs, &ys);
        prop_assert!(fit.r.abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn ztest_symmetric(x1 in 0u64..100, n1e in 0u64..100, x2 in 0u64..100, n2e in 0u64..100) {
        let n1 = x1 + n1e;
        let n2 = x2 + n2e;
        let a = two_proportion_z(x1, n1, x2, n2);
        let b = two_proportion_z(x2, n2, x1, n1);
        prop_assert!((a.z + b.z).abs() < 1e-9);
        prop_assert!((a.p_value - b.p_value).abs() < 1e-9);
    }
}
