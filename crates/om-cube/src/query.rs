//! Rule queries over cubes: enumerate or rank the rules a cube stores.
//!
//! Rule cubes *are* rule sets ("a rule cube … represents 24 rules",
//! Fig. 1); this module provides the read-side API the related-work
//! section calls *rule querying* — but over cubes, so the answers carry
//! their full context and cost nothing to recompute.

use om_data::ValueId;
use om_fault::{Budget, Pacer};

use crate::cube::{CubeError, RuleCube};
use crate::store::CubeStore;

/// The 1-D cube over `attr` restricted to rows where `cond_attr =
/// cond_value` — the conditioned-population read behind `om-explore`'s
/// sliced scans.
///
/// Reads whichever source is cheapest without changing the answer: a
/// pair cube that is already materialized is sliced in place; otherwise,
/// when the store carries a kernel index, a masked single-column scan
/// answers directly (no pair cube is materialized or cached); failing
/// both, the pair cube is built (lazily, through the store) and sliced.
/// All three produce identical counts — they read the same rows.
///
/// # Errors
/// Fails if either attribute is outside the store or `cond_value` is out
/// of the conditioning attribute's domain.
pub fn conditioned_one_dim(
    store: &CubeStore,
    cond_attr: usize,
    cond_value: ValueId,
    attr: usize,
) -> Result<RuleCube, CubeError> {
    if !store.pair_ready(cond_attr, attr) {
        if let Some(index) = store.index() {
            if store.attrs().contains(&cond_attr) && store.attrs().contains(&attr) {
                if let Ok(sel) = index.selector().narrow(cond_attr, cond_value) {
                    return sel.one_dim_cube(attr);
                }
                // Invalid condition: fall through so the error comes from
                // the same pair-cube path as before the kernel existed.
            }
        }
    }
    let pair = store.pair(cond_attr, attr)?;
    let sel_dim = pair
        .dims()
        .iter()
        .position(|d| d.attr_index == cond_attr)
        .ok_or_else(|| {
            CubeError::NoSuchDim(format!(
                "pair cube ({cond_attr}, {attr}) lacks the conditioning dimension"
            ))
        })?;
    crate::olap::slice(&pair, sel_dim, cond_value)
}

/// How many cells a query loop walks between budget checks.
const CELL_STRIDE: u64 = 1024;

/// One rule materialized out of a cube cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CubeRule {
    /// Coordinates in the cube's dimension order.
    pub coords: Vec<ValueId>,
    /// Class id.
    pub class: ValueId,
    /// Support count (`sup(X, y)` as a count).
    pub count: u64,
    /// Condition-set count (`sup(X)` as a count).
    pub cell_total: u64,
    /// Support as a fraction of the cube's records.
    pub support: f64,
    /// Confidence per Eq. (1).
    pub confidence: f64,
}

impl CubeRule {
    /// Render using the cube's labels: `A=a, B=b -> class [sup, conf]`.
    pub fn display(&self, cube: &RuleCube) -> String {
        let conds: Vec<String> = self
            .coords
            .iter()
            .zip(cube.dims())
            .map(|(&v, d)| format!("{}={}", d.name, d.labels[v as usize]))
            .collect();
        format!(
            "{} -> {} [sup={:.4}, conf={:.4}]",
            if conds.is_empty() {
                "(true)".to_owned()
            } else {
                conds.join(", ")
            },
            cube.class_labels()[self.class as usize],
            self.support,
            self.confidence
        )
    }
}

/// The `k` highest-confidence rules for `class` with at least
/// `min_count` condition-set records. Ties broken by higher support then
/// coordinate order, so results are deterministic.
///
/// # Errors
/// Fails if `class` is out of range.
pub fn top_k_by_confidence(
    cube: &RuleCube,
    class: ValueId,
    k: usize,
    min_count: u64,
) -> Result<Vec<CubeRule>, CubeError> {
    top_k_by_confidence_budgeted(cube, class, k, min_count, &Budget::unlimited())
}

/// [`top_k_by_confidence`] under a cooperative [`Budget`]: the cell walk
/// checks the deadline every [`CELL_STRIDE`] cells.
///
/// # Errors
/// Fails if `class` is out of range, or with [`CubeError::Fault`] when
/// the budget expires or the request is cancelled.
pub fn top_k_by_confidence_budgeted(
    cube: &RuleCube,
    class: ValueId,
    k: usize,
    min_count: u64,
    budget: &Budget,
) -> Result<Vec<CubeRule>, CubeError> {
    if class as usize >= cube.n_classes() {
        return Err(CubeError::OutOfRange {
            dim: "class".into(),
            value: class,
            card: cube.n_classes(),
        });
    }
    budget.check()?;
    let total = cube.total();
    let mut pacer = Pacer::new(budget, CELL_STRIDE);
    let mut rules: Vec<CubeRule> = Vec::new();
    for (coords, cell_class, count) in cube.iter_cells() {
        pacer.tick()?;
        if cell_class != class {
            continue;
        }
        let cell_total = cube.cell_total(&coords)?;
        if cell_total < min_count.max(1) {
            continue;
        }
        rules.push(CubeRule {
            coords,
            class,
            count,
            cell_total,
            support: if total > 0 {
                count as f64 / total as f64
            } else {
                0.0
            },
            confidence: count as f64 / cell_total as f64,
        });
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.count.cmp(&a.count))
            .then(a.coords.cmp(&b.coords))
    });
    rules.truncate(k);
    Ok(rules)
}

/// All rules of the cube whose confidence for their class is at least
/// `min_confidence` and whose condition set covers at least `min_count`
/// records — the min-sup/min-conf filter of classic CAR mining, applied
/// *after* the fact ("setting the two thresholds to 0 … removes holes",
/// then filter on read).
///
/// Results are in descending confidence order.
pub fn filter_rules(cube: &RuleCube, min_confidence: f64, min_count: u64) -> Vec<CubeRule> {
    filter_rules_budgeted(cube, min_confidence, min_count, &Budget::unlimited())
        .expect("unlimited budget never trips")
}

/// [`filter_rules`] under a cooperative [`Budget`]: the cell walk checks
/// the deadline every [`CELL_STRIDE`] cells.
///
/// # Errors
/// [`CubeError::Fault`] when the budget expires or the request is
/// cancelled.
pub fn filter_rules_budgeted(
    cube: &RuleCube,
    min_confidence: f64,
    min_count: u64,
    budget: &Budget,
) -> Result<Vec<CubeRule>, CubeError> {
    budget.check()?;
    let total = cube.total();
    let mut pacer = Pacer::new(budget, CELL_STRIDE);
    let mut rules: Vec<CubeRule> = Vec::new();
    for (coords, class, count) in cube.iter_cells() {
        pacer.tick()?;
        let cell_total = cube.cell_total(&coords)?;
        if cell_total < min_count.max(1) {
            continue;
        }
        let confidence = count as f64 / cell_total as f64;
        if confidence < min_confidence {
            continue;
        }
        rules.push(CubeRule {
            coords,
            class,
            count,
            cell_total,
            support: if total > 0 {
                count as f64 / total as f64
            } else {
                0.0
            },
            confidence,
        });
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.coords.cmp(&b.coords))
            .then(a.class.cmp(&b.class))
    });
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeDim;

    fn cube() -> RuleCube {
        let dims = vec![CubeDim {
            attr_index: 0,
            name: "Time".into(),
            labels: vec!["am".into(), "pm".into(), "eve".into()],
        }];
        let mut c = RuleCube::new(dims, vec!["ok".into(), "drop".into()]);
        c.add(&[0], 0, 80).unwrap();
        c.add(&[0], 1, 20).unwrap(); // am: 20% drop
        c.add(&[1], 0, 195).unwrap();
        c.add(&[1], 1, 5).unwrap(); // pm: 2.5% drop
        c.add(&[2], 1, 3).unwrap(); // eve: 100% drop but tiny
        c
    }

    #[test]
    fn top_k_orders_by_confidence() {
        let c = cube();
        let top = top_k_by_confidence(&c, 1, 2, 1).unwrap();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].coords, vec![2]); // eve at 100%
        assert_eq!(top[0].confidence, 1.0);
        assert_eq!(top[1].coords, vec![0]); // am at 20%
    }

    #[test]
    fn min_count_filters_tiny_cells() {
        let c = cube();
        let top = top_k_by_confidence(&c, 1, 5, 50).unwrap();
        assert_eq!(top.len(), 2, "eve (n=3) filtered out");
        assert_eq!(top[0].coords, vec![0]);
        assert!((top[0].confidence - 0.2).abs() < 1e-12);
    }

    #[test]
    fn filter_rules_threshold_semantics() {
        let c = cube();
        let rules = filter_rules(&c, 0.5, 1);
        // ok@am (0.8), ok@pm (0.975), drop@eve (1.0) clear 0.5.
        assert_eq!(rules.len(), 3);
        assert!(rules.windows(2).all(|w| w[0].confidence >= w[1].confidence));
        for r in &rules {
            assert!(r.confidence >= 0.5);
            assert!(r.support <= 1.0);
        }
    }

    #[test]
    fn display_renders_labels() {
        let c = cube();
        let top = top_k_by_confidence(&c, 1, 1, 1).unwrap();
        let s = top[0].display(&c);
        assert!(s.contains("Time=eve"), "{s}");
        assert!(s.contains("drop"), "{s}");
    }

    #[test]
    fn bad_class_rejected() {
        let c = cube();
        assert!(top_k_by_confidence(&c, 9, 1, 1).is_err());
    }

    #[test]
    fn expired_budget_surfaces_as_fault() {
        use std::time::Duration;
        let c = cube();
        let spent = Budget::with_timeout(Duration::ZERO);
        let e = filter_rules_budgeted(&c, 0.0, 1, &spent).unwrap_err();
        assert!(matches!(e, CubeError::Fault(_)), "{e}");
        let e = top_k_by_confidence_budgeted(&c, 1, 5, 1, &spent).unwrap_err();
        assert!(matches!(e, CubeError::Fault(_)), "{e}");
    }

    #[test]
    fn empty_cube_yields_nothing() {
        let dims = vec![CubeDim {
            attr_index: 0,
            name: "X".into(),
            labels: vec!["a".into()],
        }];
        let c = RuleCube::new(dims, vec!["y".into()]);
        assert!(top_k_by_confidence(&c, 0, 5, 1).unwrap().is_empty());
        assert!(filter_rules(&c, 0.0, 1).is_empty());
    }
}
