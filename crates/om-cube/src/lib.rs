//! Rule cubes and OLAP operations (Section III-B of the paper).
//!
//! A **rule cube** is "like a data cube but stores rules": for a set of
//! attributes `{A_i1, …, A_ip}` plus the class attribute `C`, the cube has
//! `p + 1` dimensions and each cell holds the support count of the class
//! association rule `A_i1 = v_1, …, A_ip = v_p → C = c_k`. Crucially, both
//! minimum support and minimum confidence are **zero** — every cell is
//! materialized, removing the "holes in the knowledge space" the paper
//! blames on the classic rule-mining paradigm.
//!
//! Per Section III-B, the deployed system stores **all 3-dimensional rule
//! cubes** (two attributes × class; i.e. all two-condition rules) plus the
//! 2-dimensional cubes (one attribute × class); longer rules are produced
//! on demand by restricted mining (`om-car`). [`store::CubeStore`]
//! implements exactly that layout, with a parallel eager build (the paper
//! generates cubes "off-line, e.g., in the evening") and an optional lazy
//! mode.
//!
//! OLAP operations — slice, dice, roll-up — are in [`olap`], implemented
//! without multiple aggregation levels ("our cubes have no hierarchy",
//! Section II).

pub mod bitmap;
pub mod build;
pub mod cube;
pub mod kernel;
pub mod merge;
pub mod olap;
pub mod persist;
pub mod query;
pub mod scaling;
pub mod snapshot;
pub mod store;
pub mod view;

pub use build::build_cube;
pub use merge::merge_cubes;
pub use snapshot::{SharedStore, StoreSnapshot};
pub use query::{
    filter_rules, filter_rules_budgeted, top_k_by_confidence, top_k_by_confidence_budgeted,
    CubeRule,
};
pub use bitmap::Bitmap;
pub use cube::{CubeDim, CubeError, RuleCube};
pub use kernel::{ColumnIndex, PopulationSelector};
pub use query::conditioned_one_dim;
pub use store::{CubeStore, StoreBuildOptions};
pub use view::CubeView;
