//! The columnar shared-aggregate counting kernel (COMPARE-style).
//!
//! The reproduction's conditioned paths — drill-down levels, batch
//! drills, cluster shard `level` fetches — used to answer every request
//! by materializing a sub-population (`Dataset::sub_population` copies
//! every column) and rebuilding cubes from the copy. Following COMPARE
//! (arxiv 2107.11967), this module replaces that record walk with a
//! columnar kernel built once per store generation:
//!
//! * [`ColumnIndex`] retains each categorical `ValueId` column plus one
//!   compressed [`Bitmap`](crate::bitmap::Bitmap) per `(attribute,
//!   value)` pair, so
//! * a sub-population is a bitmap AND ([`PopulationSelector::narrow`]),
//! * a cell count is a popcount ([`PopulationSelector::count`]), and
//! * one shared masked column scan fills *every* cube a drill level or
//!   batch item needs ([`PopulationSelector::build_store`]), instead of
//!   one pass per cube.
//!
//! Counts are exact — the kernel reads the same rows the record walk
//! did, in the same order — so results are byte-identical end to end;
//! the om-exec determinism proptests and the cluster `--verify` harness
//! enforce that.

use std::collections::HashMap;
use std::sync::Arc;

use om_data::{DataError, Dataset, Schema, ValueId};

use crate::bitmap::{column_bitmaps, Bitmap};
use crate::cube::{CubeDim, CubeError, RuleCube};
use crate::store::CubeStore;

/// Per-column bitmap index over one dataset generation: the raw
/// categorical columns (for masked scans) plus one compressed bitmap per
/// `(attribute, value)` (for conditioning). Built once, shared via
/// [`Arc`] by every [`PopulationSelector`] cut from it.
pub struct ColumnIndex {
    schema: Schema,
    n_rows: usize,
    /// Retained `ValueId` columns for every categorical attribute
    /// (class included) — the masked scans read these.
    columns: HashMap<usize, Vec<ValueId>>,
    /// One bitmap per value of every categorical attribute (class
    /// included) — `narrow` ANDs these.
    bitmaps: HashMap<usize, Vec<Bitmap>>,
}

impl ColumnIndex {
    /// Index every categorical column of `ds` (continuous attributes are
    /// skipped; conditioning on them fails exactly like the record walk
    /// did). One forward pass per column.
    ///
    /// # Errors
    /// Fails if the dataset has more rows than a `u32` position can
    /// address.
    pub fn build(ds: &Dataset) -> Result<Self, CubeError> {
        let n_rows = ds.n_rows();
        if u32::try_from(n_rows).is_err() {
            return Err(CubeError::Invalid(format!(
                "dataset has {n_rows} rows; the bitmap kernel addresses at most 2^32"
            )));
        }
        let schema = ds.schema().clone();
        let mut columns = HashMap::new();
        let mut bitmaps = HashMap::new();
        for idx in 0..schema.n_attributes() {
            let attr = schema.attribute(idx);
            let col: Vec<ValueId> = if idx == schema.class_index() {
                ds.class_values().to_vec()
            } else if attr.is_categorical() {
                match ds.column(idx).as_categorical() {
                    Some(c) => c.to_vec(),
                    None => continue,
                }
            } else {
                continue;
            };
            bitmaps.insert(idx, column_bitmaps(&col, attr.cardinality()));
            columns.insert(idx, col);
        }
        Ok(Self {
            schema,
            n_rows,
            columns,
            bitmaps,
        })
    }

    /// The dataset schema the index was built over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows in the indexed generation.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The unconditioned selector over the whole population.
    pub fn selector(self: &Arc<Self>) -> PopulationSelector {
        PopulationSelector {
            index: Arc::clone(self),
            conditions: Vec::new(),
            mask: None,
        }
    }

    /// Approximate heap bytes of the retained columns (bitmap containers
    /// add roughly `n_rows / 8` bytes per attribute on top).
    pub fn memory_bytes(&self) -> usize {
        self.columns
            .values()
            .map(|c| c.len() * std::mem::size_of::<ValueId>())
            .sum()
    }

    fn column(&self, attr: usize) -> Result<&[ValueId], CubeError> {
        self.columns.get(&attr).map(Vec::as_slice).ok_or_else(|| {
            CubeError::Invalid(format!(
                "attribute {:?} is continuous; discretize before cube construction",
                self.schema.attribute(attr).name()
            ))
        })
    }
}

impl std::fmt::Debug for ColumnIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnIndex")
            .field("n_rows", &self.n_rows)
            .field("indexed_attrs", &self.bitmaps.len())
            .finish()
    }
}

/// Which pair cubes a kernel-built store materializes during its one
/// shared scan; everything else builds lazily from the selector.
enum PairPlan {
    /// No pairs up front (pure lazy).
    None,
    /// The pairs involving one anchor attribute — exactly the set a
    /// ranked comparison against that attribute reads.
    Anchored(usize),
    /// Every pair (for stores that get wire-shipped whole).
    All,
}

/// A (possibly conditioned) sub-population over a [`ColumnIndex`]: the
/// one public way to condition a population. Conditioning never copies
/// records — [`narrow`](Self::narrow) ANDs bitmaps, and cube builds scan
/// only the rows in the mask.
#[derive(Clone, Debug)]
pub struct PopulationSelector {
    index: Arc<ColumnIndex>,
    conditions: Vec<(usize, ValueId)>,
    /// `None` = the whole population (no AND has happened yet).
    mask: Option<Bitmap>,
}

impl PopulationSelector {
    /// The schema (identical at every conditioning depth).
    pub fn schema(&self) -> &Schema {
        &self.index.schema
    }

    /// The shared index this selector cuts from.
    pub fn index(&self) -> &Arc<ColumnIndex> {
        &self.index
    }

    /// The `(attribute, value)` conditions applied so far, in order.
    pub fn conditions(&self) -> &[(usize, ValueId)] {
        &self.conditions
    }

    /// Records in the sub-population — a popcount, not a scan.
    pub fn count(&self) -> u64 {
        match &self.mask {
            None => self.index.n_rows as u64,
            Some(m) => m.len(),
        }
    }

    /// Add one `attr = value` condition: a single bitmap AND.
    ///
    /// # Errors
    /// The same errors [`Dataset::sub_population`] raised on the record
    /// walk (out-of-domain value, continuous attribute), so callers that
    /// render them keep byte-identical messages.
    pub fn narrow(&self, attr: usize, value: ValueId) -> Result<PopulationSelector, DataError> {
        let card = self.index.schema.attribute(attr).cardinality() as ValueId;
        if value >= card {
            return Err(DataError::UnknownValue {
                attribute: self.index.schema.attribute(attr).name().to_owned(),
                value: format!("id {value} (domain size {card})"),
            });
        }
        let maps = self.index.bitmaps.get(&attr).ok_or_else(|| {
            DataError::Invalid(format!(
                "attribute {:?} is continuous; discretize first",
                self.index.schema.attribute(attr).name()
            ))
        })?;
        let value_rows = maps.get(value as usize).cloned().unwrap_or_default();
        let mask = match &self.mask {
            None => value_rows,
            Some(m) => m.and(&value_rows),
        };
        let mut conditions = self.conditions.clone();
        conditions.push((attr, value));
        Ok(PopulationSelector {
            index: Arc::clone(&self.index),
            conditions,
            mask: Some(mask),
        })
    }

    /// Build the cube store a drill level or comparison reads: all 1-D
    /// cubes from one shared masked scan, pair cubes lazily from this
    /// selector on first access. `attrs: None` = every categorical
    /// non-class attribute (same contract as
    /// [`StoreBuildOptions::attrs`](crate::StoreBuildOptions)).
    ///
    /// # Errors
    /// The same validation errors as [`CubeStore::build`].
    pub fn build_store(&self, attrs: Option<Vec<usize>>) -> Result<CubeStore, CubeError> {
        self.build_store_with(attrs, PairPlan::None)
    }

    /// [`build_store`](Self::build_store), but the one shared scan also
    /// fills the pair cubes involving `anchor` — exactly the cubes a
    /// comparison ranked against `anchor` reads, so the whole level is
    /// served by a single pass. Other pairs still build lazily.
    ///
    /// # Errors
    /// The same validation errors as [`CubeStore::build`].
    pub fn build_store_anchored(
        &self,
        attrs: Option<Vec<usize>>,
        anchor: usize,
    ) -> Result<CubeStore, CubeError> {
        self.build_store_with(attrs, PairPlan::Anchored(anchor))
    }

    /// [`build_store`](Self::build_store) with *every* pair cube filled
    /// by the one shared scan — for stores that leave the process whole
    /// (a cluster shard's `level` response is encoded and merged on the
    /// coordinator, and the codec ships only materialized cubes).
    ///
    /// # Errors
    /// The same validation errors as [`CubeStore::build`].
    pub fn build_store_eager(&self, attrs: Option<Vec<usize>>) -> Result<CubeStore, CubeError> {
        self.build_store_with(attrs, PairPlan::All)
    }

    /// The conditioned 1-D cube `attr × C` alone (no store) — one masked
    /// single-column scan. What `om-explore` reads when the pair cube it
    /// would otherwise slice is not already materialized.
    ///
    /// # Errors
    /// Fails if `attr` is the class, continuous, or out of range.
    pub fn one_dim_cube(&self, attr: usize) -> Result<RuleCube, CubeError> {
        let schema = &self.index.schema;
        if attr >= schema.n_attributes() {
            return Err(CubeError::NoSuchDim(format!("attribute index {attr}")));
        }
        if attr == schema.class_index() {
            return Err(CubeError::Invalid(
                "the class attribute is always the last cube dimension; do not list it".into(),
            ));
        }
        let mut unit = self.scan_unit(&[attr])?;
        self.scan(std::slice::from_mut(&mut unit))?;
        Ok(unit.cube)
    }

    /// The conditioned pair cube `A_a × A_b × C` (dimensions in the given
    /// order) — the lazy build behind kernel-backed stores.
    ///
    /// # Errors
    /// Fails if either attribute is the class, continuous, or out of
    /// range.
    pub(crate) fn pair_cube(&self, a: usize, b: usize) -> Result<RuleCube, CubeError> {
        let mut unit = self.scan_unit(&[a, b])?;
        self.scan(std::slice::from_mut(&mut unit))?;
        Ok(unit.cube)
    }

    fn build_store_with(
        &self,
        attrs: Option<Vec<usize>>,
        plan: PairPlan,
    ) -> Result<CubeStore, CubeError> {
        let schema = &self.index.schema;
        let attrs = CubeStore::resolve_attrs(
            schema,
            &crate::store::StoreBuildOptions {
                attrs,
                ..Default::default()
            },
        )?;

        let mut units: Vec<ScanUnit<'_>> = Vec::with_capacity(attrs.len());
        for &a in &attrs {
            units.push(self.scan_unit(&[a])?);
        }
        let n_one_d = units.len();
        match plan {
            PairPlan::None => {}
            PairPlan::Anchored(anchor) => {
                if attrs.contains(&anchor) {
                    for &b in &attrs {
                        if b != anchor {
                            units.push(self.scan_unit(&[anchor.min(b), anchor.max(b)])?);
                        }
                    }
                }
            }
            PairPlan::All => {
                for (i, &a) in attrs.iter().enumerate() {
                    for &b in attrs.iter().skip(i + 1) {
                        units.push(self.scan_unit(&[a.min(b), a.max(b)])?);
                    }
                }
            }
        }

        let class_counts = self.scan(&mut units)?;

        let mut one_d = HashMap::with_capacity(n_one_d);
        let mut pairs = HashMap::new();
        for unit in units {
            match *unit.attrs.as_slice() {
                [a] => {
                    one_d.insert(a, Arc::new(unit.cube));
                }
                [a, b] => {
                    pairs.insert((a, b), Arc::new(unit.cube));
                }
                _ => {}
            }
        }

        let lazy_source = match plan {
            PairPlan::All => None,
            PairPlan::None | PairPlan::Anchored(_) => Some(self.clone()),
        };
        Ok(CubeStore::from_kernel(
            attrs,
            schema.class().domain().labels().to_vec(),
            class_counts,
            self.count(),
            one_d,
            pairs,
            lazy_source,
        ))
    }

    /// An empty cube over `attrs` plus the column/stride plan to fill it.
    fn scan_unit(&self, attrs: &[usize]) -> Result<ScanUnit<'_>, CubeError> {
        let schema = &self.index.schema;
        let dims: Vec<CubeDim> = attrs
            .iter()
            .map(|&a| CubeDim::from_schema(schema, a))
            .collect();
        let cube = RuleCube::new(dims, schema.class().domain().labels().to_vec());
        let strides = cube.strides().to_vec();
        let mut cols = Vec::with_capacity(attrs.len());
        for (&a, &s) in attrs.iter().zip(&strides) {
            cols.push((self.index.column(a)?, s));
        }
        Ok(ScanUnit {
            attrs: attrs.to_vec(),
            cube,
            cols,
        })
    }

    /// The one shared scan: every masked row feeds every unit's cube (and
    /// the class tally) in a single pass over the columns.
    fn scan(&self, units: &mut [ScanUnit<'_>]) -> Result<Vec<u64>, CubeError> {
        let schema = &self.index.schema;
        let classes = self.index.column(schema.class_index())?;
        let mut class_counts = vec![0u64; schema.n_classes()];
        let mut visit = |r: usize| {
            // om-lint: allow(panic-path) — r < n_rows and every ValueId <
            // its cardinality by ColumnIndex construction; this is the
            // kernel's hot loop.
            let c = classes[r] as usize;
            // om-lint: allow(panic-path) — c < n_classes: class ids come
            // from the schema's own domain.
            class_counts[c] += 1;
            for unit in units.iter_mut() {
                let mut off = c;
                for &(col, stride) in &unit.cols {
                    // om-lint: allow(panic-path) — same row/stride invariant.
                    off += col[r] as usize * stride;
                }
                unit.cube.add_flat(off, 1);
            }
        };
        match &self.mask {
            None => (0..self.index.n_rows).for_each(&mut visit),
            Some(m) => m.for_each(|r| visit(r as usize)),
        }
        Ok(class_counts)
    }
}

struct ScanUnit<'a> {
    attrs: Vec<usize>,
    cube: RuleCube,
    cols: Vec<(&'a [ValueId], usize)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cube;
    use crate::store::StoreBuildOptions;
    use om_synth::{generate_scaleup, ScaleUpConfig};

    fn dataset() -> Dataset {
        generate_scaleup(&ScaleUpConfig {
            n_attrs: 6,
            n_records: 4_000,
            seed: 21,
            ..ScaleUpConfig::default()
        })
    }

    fn kernel(ds: &Dataset) -> Arc<ColumnIndex> {
        Arc::new(ColumnIndex::build(ds).unwrap())
    }

    #[test]
    fn root_store_matches_record_walk() {
        let ds = dataset();
        let sel = kernel(&ds).selector();
        let kernel_store = sel.build_store_eager(None).unwrap();
        let walk_store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        assert_eq!(kernel_store.attrs(), walk_store.attrs());
        assert_eq!(kernel_store.class_counts(), walk_store.class_counts());
        assert_eq!(kernel_store.total_records(), walk_store.total_records());
        for &a in walk_store.attrs() {
            assert_eq!(*kernel_store.one_dim(a).unwrap(), *walk_store.one_dim(a).unwrap());
            for &b in walk_store.attrs() {
                if a < b {
                    assert_eq!(*kernel_store.pair(a, b).unwrap(), *walk_store.pair(a, b).unwrap());
                }
            }
        }
    }

    #[test]
    fn narrowed_store_matches_sub_population_walk() {
        let ds = dataset();
        let sel = kernel(&ds).selector().narrow(2, 1).unwrap();
        let sub = ds.sub_population(2, 1).unwrap();
        assert_eq!(sel.count(), sub.n_rows() as u64);

        let attrs: Vec<usize> = vec![0, 1, 3, 4, 5];
        let kernel_store = sel.build_store(Some(attrs.clone())).unwrap();
        let walk_store = CubeStore::build(
            &sub,
            &StoreBuildOptions {
                attrs: Some(attrs.clone()),
                n_threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(kernel_store.class_counts(), walk_store.class_counts());
        for &a in &attrs {
            assert_eq!(*kernel_store.one_dim(a).unwrap(), *walk_store.one_dim(a).unwrap());
        }
        // Pair cubes build lazily through the selector; counts must still
        // match the record walk exactly.
        assert_eq!(kernel_store.n_pair_cubes(), 0);
        assert_eq!(*kernel_store.pair(0, 3).unwrap(), *walk_store.pair(0, 3).unwrap());
        assert_eq!(kernel_store.lazy_builds(), 1);
    }

    #[test]
    fn anchored_store_prebuilds_exactly_the_anchor_pairs() {
        let ds = dataset();
        let sel = kernel(&ds).selector().narrow(5, 0).unwrap();
        let store = sel.build_store_anchored(None, 1).unwrap();
        assert_eq!(store.n_pair_cubes(), 5, "one pair per non-anchor attribute");
        assert_eq!(store.lazy_builds(), 0, "anchor pairs came from the shared scan");
        let sub = ds.sub_population(5, 0).unwrap();
        for b in [0usize, 2, 3, 4] {
            assert_eq!(*store.pair(1, b).unwrap(), build_cube(&sub, &[1.min(b), 1.max(b)]).unwrap());
        }
        // A non-anchor pair still resolves — lazily.
        assert_eq!(*store.pair(2, 3).unwrap(), build_cube(&sub, &[2, 3]).unwrap());
        assert_eq!(store.lazy_builds(), 1);
    }

    #[test]
    fn chained_narrow_matches_chained_sub_population() {
        let ds = dataset();
        let sel = kernel(&ds)
            .selector()
            .narrow(0, 1)
            .unwrap()
            .narrow(4, 2)
            .unwrap();
        let sub = ds.sub_population(0, 1).unwrap().sub_population(4, 2).unwrap();
        assert_eq!(sel.count(), sub.n_rows() as u64);
        assert_eq!(sel.conditions(), &[(0, 1), (4, 2)]);
        let cube = sel.one_dim_cube(3).unwrap();
        assert_eq!(cube, build_cube(&sub, &[3]).unwrap());
    }

    #[test]
    fn narrow_errors_match_sub_population_errors() {
        let ds = dataset();
        let sel = kernel(&ds).selector();
        let kernel_err = sel.narrow(2, 99).unwrap_err().to_string();
        let walk_err = ds.sub_population(2, 99).unwrap_err().to_string();
        assert_eq!(kernel_err, walk_err);
    }

    #[test]
    fn conflicting_conditions_select_nothing() {
        let ds = dataset();
        let sel = kernel(&ds)
            .selector()
            .narrow(1, 0)
            .unwrap()
            .narrow(1, 1)
            .unwrap();
        assert_eq!(sel.count(), 0);
        let store = sel.build_store(None).unwrap();
        assert_eq!(store.total_records(), 0);
        assert_eq!(store.one_dim(0).unwrap().total(), 0);
    }

    #[test]
    fn build_store_validates_like_the_record_walk() {
        let ds = dataset();
        let sel = kernel(&ds).selector();
        let class_idx = ds.schema().class_index();
        for bad in [vec![99usize], vec![class_idx]] {
            let kernel_err = match sel.build_store(Some(bad.clone())) {
                Err(e) => e.to_string(),
                Ok(_) => panic!("kernel build accepted invalid attrs {bad:?}"),
            };
            let walk_err = match CubeStore::build(
                &ds,
                &StoreBuildOptions {
                    attrs: Some(bad.clone()),
                    n_threads: 1,
                    ..Default::default()
                },
            ) {
                Err(e) => e.to_string(),
                Ok(_) => panic!("record-walk build accepted invalid attrs {bad:?}"),
            };
            assert_eq!(kernel_err, walk_err);
        }
    }
}
