//! Binary persistence for rule cubes, matching the offline-generation
//! workflow: cubes are built overnight (Fig. 10/11 cost) and reloaded for
//! interactive analysis.
//!
//! # Frame format (V2)
//!
//! Every encoded artifact is wrapped in an integrity frame:
//!
//! ```text
//! [magic: 4][version: 1][payload_len: u64 le][payload][crc32: u32 le]
//! ```
//!
//! The decoder requires the buffer to hold *exactly*
//! `payload_len + 4` bytes past the header and verifies the IEEE CRC32
//! of the payload, so truncation, trailing garbage, and any single-bit
//! flip (including in the length field) is rejected with a typed error —
//! never a panic and never a silently-wrong cube. Version-1 frames
//! (magic + version + raw payload, no checksum) are still readable.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use om_data::DataError;
use om_fault::fail;

use crate::cube::{CubeDim, RuleCube};

const MAGIC: &[u8; 4] = b"OMRC";
const STORE_MAGIC: &[u8; 4] = b"OMCS";
/// Legacy unchecksummed frames; still decodable.
const VERSION_V1: u8 = 1;
/// Current frames: length-prefixed payload followed by CRC32.
const VERSION: u8 = 2;

/// IEEE CRC32 (the ubiquitous zip/PNG polynomial), table-driven.
/// Hand-rolled because the build environment vendors no compression or
/// hashing crates. Public so `om-ingest` can frame its write-ahead log
/// with the same checksum discipline.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn put_str(buf: &mut BytesMut, s: &str) -> Result<(), DataError> {
    let len = u32::try_from(s.len()).map_err(|_| {
        DataError::Invalid(format!(
            "string of {} bytes exceeds the u32 length prefix",
            s.len()
        ))
    })?;
    buf.put_u32_le(len);
    buf.put_slice(s.as_bytes());
    Ok(())
}

fn get_str(buf: &mut Bytes) -> Result<String, DataError> {
    if buf.remaining() < 4 {
        return Err(DataError::Decode("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DataError::Decode("truncated string payload".into()));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|e| DataError::Decode(format!("invalid UTF-8: {e}")))
}

/// Wrap `payload` in the V2 integrity frame.
fn frame(magic: &[u8; 4], payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(payload.len() + 17);
    buf.put_slice(magic);
    buf.put_u8(VERSION);
    buf.put_u64_le(payload.len() as u64);
    buf.put_slice(payload);
    buf.put_u32_le(crc32(payload));
    buf.freeze()
}

/// Strip and verify a frame, returning the raw payload. Accepts both
/// the checksummed V2 frame and the legacy V1 header.
fn open_frame(mut buf: Bytes, magic: &[u8; 4], what: &str) -> Result<Bytes, DataError> {
    if buf.remaining() < 5 {
        return Err(DataError::Decode(format!("{what} payload too short")));
    }
    let mut m = [0u8; 4];
    buf.copy_to_slice(&mut m);
    if &m != magic {
        let tag = String::from_utf8_lossy(magic).into_owned();
        return Err(DataError::Decode(format!(
            "bad magic (not an {tag} payload)"
        )));
    }
    match buf.get_u8() {
        VERSION_V1 => Ok(buf),
        VERSION => {
            if buf.remaining() < 8 {
                return Err(DataError::Decode(format!("truncated {what} frame header")));
            }
            let len = buf.get_u64_le();
            // Exact-length check: a flipped bit in the length field (or
            // truncation, or trailing garbage) can never line up with
            // the bytes actually present.
            let expected_remaining = len.checked_add(4).ok_or_else(|| {
                DataError::Decode(format!("{what} frame length overflows"))
            })?;
            if buf.remaining() as u64 != expected_remaining {
                return Err(DataError::Decode(format!(
                    "{what} frame length mismatch: header says {len} payload bytes, {} present",
                    (buf.remaining() as u64).saturating_sub(4)
                )));
            }
            let payload = buf.copy_to_bytes(len as usize);
            let expected = buf.get_u32_le();
            let found = crc32(&payload);
            if expected != found {
                return Err(DataError::ChecksumMismatch { expected, found });
            }
            Ok(payload)
        }
        v => Err(DataError::Decode(format!("unsupported version {v}"))),
    }
}

fn encode_cube_body(cube: &RuleCube) -> Result<BytesMut, DataError> {
    let mut buf = BytesMut::with_capacity(64 + cube.n_cells() * 8);
    buf.put_u32_le(cube.n_attr_dims() as u32);
    for d in cube.dims() {
        buf.put_u32_le(d.attr_index as u32);
        put_str(&mut buf, &d.name)?;
        buf.put_u32_le(d.labels.len() as u32);
        for l in &d.labels {
            put_str(&mut buf, l)?;
        }
    }
    buf.put_u32_le(cube.n_classes() as u32);
    for l in cube.class_labels() {
        put_str(&mut buf, l)?;
    }
    for (_, _, count) in cube.iter_cells() {
        buf.put_u64_le(count);
    }
    Ok(buf)
}

fn decode_cube_body(mut buf: Bytes) -> Result<RuleCube, DataError> {
    if buf.remaining() < 4 {
        return Err(DataError::Decode("truncated dim count".into()));
    }
    let n_dims = buf.get_u32_le() as usize;
    let mut dims = Vec::with_capacity(n_dims);
    for _ in 0..n_dims {
        if buf.remaining() < 4 {
            return Err(DataError::Decode("truncated dim header".into()));
        }
        let attr_index = buf.get_u32_le() as usize;
        let name = get_str(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(DataError::Decode("truncated label count".into()));
        }
        let n_labels = buf.get_u32_le() as usize;
        let mut labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            labels.push(get_str(&mut buf)?);
        }
        if labels.is_empty() {
            return Err(DataError::Decode(format!(
                "dimension {name:?} has no labels"
            )));
        }
        dims.push(CubeDim {
            attr_index,
            name,
            labels,
        });
    }
    if buf.remaining() < 4 {
        return Err(DataError::Decode("truncated class count".into()));
    }
    let n_classes = buf.get_u32_le() as usize;
    if n_classes == 0 {
        return Err(DataError::Decode("cube has no classes".into()));
    }
    let mut class_labels = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        class_labels.push(get_str(&mut buf)?);
    }
    let mut cube = RuleCube::new(dims, class_labels);
    let n_cells = cube.n_cells();
    if buf.remaining() < n_cells * 8 {
        return Err(DataError::Decode("truncated count tensor".into()));
    }
    let mut total = 0u64;
    for slot in cube.counts_mut() {
        let v = buf.get_u64_le();
        *slot = v;
        total = total
            .checked_add(v)
            .ok_or_else(|| DataError::Decode("count tensor overflows u64 total".into()))?;
    }
    cube.set_total(total);
    Ok(cube)
}

/// Serialize a rule cube in the current (checksummed) frame format.
///
/// # Errors
/// Fails if any label is too large for its length prefix.
pub fn encode_cube(cube: &RuleCube) -> Result<Bytes, DataError> {
    Ok(frame(MAGIC, &encode_cube_body(cube)?))
}

/// Serialize a rule cube in the legacy V1 frame (no checksum). Exists so
/// compatibility with pre-V2 artifacts stays testable; new code should
/// use [`encode_cube`].
///
/// # Errors
/// Fails if any label is too large for its length prefix.
pub fn encode_cube_v1(cube: &RuleCube) -> Result<Bytes, DataError> {
    let body = encode_cube_body(cube)?;
    let mut buf = BytesMut::with_capacity(body.len() + 5);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION_V1);
    buf.put_slice(&body);
    Ok(buf.freeze())
}

/// Deserialize a rule cube produced by [`encode_cube`] (or the legacy
/// V1 encoder).
///
/// # Errors
/// Fails on bad magic/version, truncation, or checksum mismatch.
pub fn decode_cube(buf: Bytes) -> Result<RuleCube, DataError> {
    fail::inject("cube.decode").map_err(|e| DataError::Decode(e.to_string()))?;
    decode_cube_body(open_frame(buf, MAGIC, "cube")?)
}

fn encode_store_body(
    store: &crate::store::CubeStore,
    encode: fn(&RuleCube) -> Result<Bytes, DataError>,
) -> Result<BytesMut, DataError> {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_u32_le(store.attrs().len() as u32);
    for &a in store.attrs() {
        buf.put_u32_le(a as u32);
    }
    buf.put_u32_le(store.class_labels().len() as u32);
    for l in store.class_labels() {
        put_str(&mut buf, l)?;
    }
    for &c in store.class_counts() {
        buf.put_u64_le(c);
    }
    buf.put_u64_le(store.total_records());

    let put_cube = |buf: &mut BytesMut, cube: &RuleCube| -> Result<(), DataError> {
        let blob = encode(cube)?;
        buf.put_u64_le(blob.len() as u64);
        buf.put_slice(&blob);
        Ok(())
    };
    for &a in store.attrs() {
        put_cube(&mut buf, &store.one_dim(a).expect("attr present"))?;
    }
    let attrs = store.attrs().to_vec();
    let mut n_pairs: u32 = 0;
    let mut pair_buf = BytesMut::new();
    for (i, &a) in attrs.iter().enumerate() {
        for &b in &attrs[i + 1..] {
            if let Ok(cube) = store.pair(a, b) {
                pair_buf.put_u32_le(a as u32);
                pair_buf.put_u32_le(b as u32);
                put_cube(&mut pair_buf, &cube)?;
                n_pairs += 1;
            }
        }
    }
    buf.put_u32_le(n_pairs);
    buf.put_slice(&pair_buf);
    Ok(buf)
}

/// Serialize an entire cube store (the paper's overnight artifact): the
/// attribute list, class metadata, every 2-D cube, and every materialized
/// 3-D cube. Each nested cube keeps its own integrity frame, so
/// corruption is localized to a cube when reported.
///
/// # Errors
/// Fails if any label is too large for its length prefix.
pub fn encode_store(store: &crate::store::CubeStore) -> Result<Bytes, DataError> {
    Ok(frame(STORE_MAGIC, &encode_store_body(store, encode_cube)?))
}

/// Serialize a cube store in the legacy V1 frame (no checksums, nested
/// V1 cubes). Exists for compatibility testing; new code should use
/// [`encode_store`].
///
/// # Errors
/// Fails if any label is too large for its length prefix.
pub fn encode_store_v1(store: &crate::store::CubeStore) -> Result<Bytes, DataError> {
    let body = encode_store_body(store, encode_cube_v1)?;
    let mut buf = BytesMut::with_capacity(body.len() + 5);
    buf.put_slice(STORE_MAGIC);
    buf.put_u8(VERSION_V1);
    buf.put_slice(&body);
    Ok(buf.freeze())
}

fn decode_store_body(mut buf: Bytes) -> Result<crate::store::CubeStore, DataError> {
    use std::collections::HashMap;
    use std::sync::Arc;

    let need = |buf: &Bytes, n: usize, what: &str| -> Result<(), DataError> {
        if buf.remaining() < n {
            Err(DataError::Decode(format!("truncated {what}")))
        } else {
            Ok(())
        }
    };
    need(&buf, 4, "attr count")?;
    let n_attrs = buf.get_u32_le() as usize;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        need(&buf, 4, "attr index")?;
        attrs.push(buf.get_u32_le() as usize);
    }
    need(&buf, 4, "class count")?;
    let n_classes = buf.get_u32_le() as usize;
    let mut class_labels = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        class_labels.push(get_str(&mut buf)?);
    }
    let mut class_counts = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        need(&buf, 8, "class counts")?;
        class_counts.push(buf.get_u64_le());
    }
    need(&buf, 8, "total records")?;
    let total_records = buf.get_u64_le();

    let get_cube = |buf: &mut Bytes| -> Result<RuleCube, DataError> {
        if buf.remaining() < 8 {
            return Err(DataError::Decode("truncated cube length".into()));
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len {
            return Err(DataError::Decode("truncated cube blob".into()));
        }
        decode_cube(buf.copy_to_bytes(len))
    };
    let mut one_d = HashMap::with_capacity(n_attrs);
    for &a in &attrs {
        one_d.insert(a, Arc::new(get_cube(&mut buf)?));
    }
    need(&buf, 4, "pair count")?;
    let n_pairs = buf.get_u32_le() as usize;
    let mut pairs = HashMap::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        need(&buf, 8, "pair key")?;
        let a = buf.get_u32_le() as usize;
        let b = buf.get_u32_le() as usize;
        pairs.insert((a.min(b), a.max(b)), Arc::new(get_cube(&mut buf)?));
    }
    Ok(crate::store::CubeStore::assemble(
        attrs,
        class_labels,
        class_counts,
        total_records,
        one_d,
        pairs,
    ))
}

/// Deserialize a cube store written by [`encode_store`] (or the legacy
/// V1 encoder). The result is always an eager store.
///
/// # Errors
/// Fails on bad magic/version, truncation, checksum mismatch, or
/// inconsistent cube blobs.
pub fn decode_store(buf: Bytes) -> Result<crate::store::CubeStore, DataError> {
    fail::inject("store.decode").map_err(|e| DataError::Decode(e.to_string()))?;
    decode_store_body(open_frame(buf, STORE_MAGIC, "store")?)
}

#[cfg(test)]
mod store_tests {
    use super::*;
    use crate::store::{CubeStore, StoreBuildOptions};
    use om_synth::{generate_scaleup, ScaleUpConfig};

    fn store() -> CubeStore {
        let ds = generate_scaleup(&ScaleUpConfig {
            n_attrs: 5,
            n_records: 2_000,
            seed: 77,
            ..ScaleUpConfig::default()
        });
        CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap()
    }

    fn assert_stores_equal(back: &CubeStore, original: &CubeStore) {
        assert_eq!(back.attrs(), original.attrs());
        assert_eq!(back.class_labels(), original.class_labels());
        assert_eq!(back.class_counts(), original.class_counts());
        assert_eq!(back.total_records(), original.total_records());
        assert_eq!(back.n_pair_cubes(), original.n_pair_cubes());
        for &a in original.attrs() {
            assert_eq!(*back.one_dim(a).unwrap(), *original.one_dim(a).unwrap());
        }
        for (i, &a) in original.attrs().iter().enumerate() {
            for &b in &original.attrs()[i + 1..] {
                assert_eq!(*back.pair(a, b).unwrap(), *original.pair(a, b).unwrap());
            }
        }
    }

    #[test]
    fn store_round_trip() {
        let original = store();
        let back = decode_store(encode_store(&original).unwrap()).unwrap();
        assert_stores_equal(&back, &original);
    }

    #[test]
    fn legacy_v1_store_still_loads() {
        let original = store();
        let v1 = encode_store_v1(&original).unwrap();
        let v2 = encode_store(&original).unwrap();
        assert_ne!(v1, v2);
        assert_eq!(v1[4], 1, "legacy frame advertises version 1");
        let back = decode_store(v1).unwrap();
        assert_stores_equal(&back, &original);
    }

    #[test]
    fn store_truncation_rejected() {
        let full = encode_store(&store()).unwrap();
        // Sampled cuts (full scan is slow on a multi-KB payload).
        for cut in [0usize, 3, 4, 5, 9, 40, full.len() / 2, full.len() - 1] {
            assert!(decode_store(full.slice(0..cut)).is_err(), "cut {cut}");
        }
        assert!(decode_store(full).is_ok());
    }

    #[test]
    fn store_bit_flips_rejected() {
        let full = encode_store(&store()).unwrap();
        let stride = (full.len() / 64).max(1);
        for byte in (0..full.len()).step_by(stride) {
            for bit in 0..8 {
                let mut corrupt = full.to_vec();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    decode_store(Bytes::from(corrupt)).is_err(),
                    "flip of byte {byte} bit {bit} silently accepted"
                );
            }
        }
    }

    #[test]
    fn store_bad_magic() {
        assert!(decode_store(Bytes::from_static(b"XXXX\x01")).is_err());
    }

    #[test]
    fn reloaded_store_supports_comparison_workloads() {
        // The reloaded artifact must behave identically for reads.
        let original = store();
        let back = decode_store(encode_store(&original).unwrap()).unwrap();
        let pair = back.pair(0, 1).unwrap();
        assert!(pair.total() > 0);
        assert_eq!(
            pair.class_margin(),
            original.pair(0, 1).unwrap().class_margin()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RuleCube {
        let dims = vec![
            CubeDim {
                attr_index: 2,
                name: "Phone".into(),
                labels: vec!["ph1".into(), "ph2".into()],
            },
            CubeDim {
                attr_index: 5,
                name: "Time".into(),
                labels: vec!["am".into(), "pm".into(), "eve".into()],
            },
        ];
        let mut c = RuleCube::new(dims, vec!["ok".into(), "drop".into()]);
        for (i, (coords, class)) in [([0, 0], 0), ([0, 1], 1), ([1, 2], 0), ([1, 0], 1)]
            .iter()
            .enumerate()
        {
            c.add(&coords[..], *class, (i as u64 + 1) * 10).unwrap();
        }
        c
    }

    #[test]
    fn crc32_known_vectors() {
        // Check-value from the CRC catalogue: CRC-32/ISO-HDLC("123456789").
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn round_trip_identity() {
        let cube = sample();
        let back = decode_cube(encode_cube(&cube).unwrap()).unwrap();
        assert_eq!(back, cube);
        assert_eq!(back.total(), cube.total());
        assert_eq!(back.dims()[1].attr_index, 5);
    }

    #[test]
    fn legacy_v1_cube_still_loads() {
        let cube = sample();
        let v1 = encode_cube_v1(&cube).unwrap();
        assert_eq!(v1[4], 1, "legacy frame advertises version 1");
        assert_eq!(decode_cube(v1).unwrap(), cube);
    }

    #[test]
    fn truncation_always_errors() {
        let full = encode_cube(&sample()).unwrap();
        for cut in 0..full.len() {
            assert!(
                decode_cube(full.slice(0..cut)).is_err(),
                "truncation at {cut} silently accepted"
            );
        }
        assert!(decode_cube(full).is_ok());
    }

    #[test]
    fn every_single_bit_flip_errors() {
        let full = encode_cube(&sample()).unwrap();
        for byte in 0..full.len() {
            for bit in 0..8 {
                let mut corrupt = full.to_vec();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    decode_cube(Bytes::from(corrupt)).is_err(),
                    "flip of byte {byte} bit {bit} silently accepted"
                );
            }
        }
    }

    #[test]
    fn checksum_mismatch_is_typed() {
        let full = encode_cube(&sample()).unwrap();
        let mut corrupt = full.to_vec();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01; // flip a CRC bit: payload parses, checksum differs
        match decode_cube(Bytes::from(corrupt)) {
            Err(DataError::ChecksumMismatch { expected, found }) => assert_ne!(expected, found),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let full = encode_cube(&sample()).unwrap();
        let mut padded = full.to_vec();
        padded.push(0);
        assert!(decode_cube(Bytes::from(padded)).is_err());
    }

    #[test]
    fn bad_magic_and_version() {
        assert!(decode_cube(Bytes::from_static(b"NOPE\x01")).is_err());
        assert!(decode_cube(Bytes::from_static(b"OMRC\x09")).is_err());
    }

    #[test]
    fn empty_cube_round_trips() {
        let dims = vec![CubeDim {
            attr_index: 0,
            name: "X".into(),
            labels: vec!["a".into()],
        }];
        let cube = RuleCube::new(dims, vec!["c".into()]);
        let back = decode_cube(encode_cube(&cube).unwrap()).unwrap();
        assert_eq!(back, cube);
        assert_eq!(back.total(), 0);
    }
}
