//! Binary persistence for rule cubes, matching the offline-generation
//! workflow: cubes are built overnight (Fig. 10/11 cost) and reloaded for
//! interactive analysis.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use om_data::DataError;

use crate::cube::{CubeDim, RuleCube};

const MAGIC: &[u8; 4] = b"OMRC";
const VERSION: u8 = 1;
const STORE_MAGIC: &[u8; 4] = b"OMCS";
const STORE_VERSION: u8 = 1;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, DataError> {
    if buf.remaining() < 4 {
        return Err(DataError::Decode("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DataError::Decode("truncated string payload".into()));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|e| DataError::Decode(format!("invalid UTF-8: {e}")))
}

/// Serialize a rule cube.
pub fn encode_cube(cube: &RuleCube) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + cube.n_cells() * 8);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(cube.n_attr_dims() as u32);
    for d in cube.dims() {
        buf.put_u32_le(d.attr_index as u32);
        put_str(&mut buf, &d.name);
        buf.put_u32_le(d.labels.len() as u32);
        for l in &d.labels {
            put_str(&mut buf, l);
        }
    }
    buf.put_u32_le(cube.n_classes() as u32);
    for l in cube.class_labels() {
        put_str(&mut buf, l);
    }
    for (_, _, count) in cube.iter_cells() {
        buf.put_u64_le(count);
    }
    buf.freeze()
}

/// Deserialize a rule cube produced by [`encode_cube`].
///
/// # Errors
/// Fails on bad magic/version or truncation.
pub fn decode_cube(mut buf: Bytes) -> Result<RuleCube, DataError> {
    if buf.remaining() < 5 {
        return Err(DataError::Decode("payload too short".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DataError::Decode("bad magic (not an OMRC payload)".into()));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DataError::Decode(format!("unsupported version {version}")));
    }
    if buf.remaining() < 4 {
        return Err(DataError::Decode("truncated dim count".into()));
    }
    let n_dims = buf.get_u32_le() as usize;
    let mut dims = Vec::with_capacity(n_dims);
    for _ in 0..n_dims {
        if buf.remaining() < 4 {
            return Err(DataError::Decode("truncated dim header".into()));
        }
        let attr_index = buf.get_u32_le() as usize;
        let name = get_str(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(DataError::Decode("truncated label count".into()));
        }
        let n_labels = buf.get_u32_le() as usize;
        let mut labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            labels.push(get_str(&mut buf)?);
        }
        if labels.is_empty() {
            return Err(DataError::Decode(format!(
                "dimension {name:?} has no labels"
            )));
        }
        dims.push(CubeDim {
            attr_index,
            name,
            labels,
        });
    }
    if buf.remaining() < 4 {
        return Err(DataError::Decode("truncated class count".into()));
    }
    let n_classes = buf.get_u32_le() as usize;
    if n_classes == 0 {
        return Err(DataError::Decode("cube has no classes".into()));
    }
    let mut class_labels = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        class_labels.push(get_str(&mut buf)?);
    }
    let mut cube = RuleCube::new(dims, class_labels);
    let n_cells = cube.n_cells();
    if buf.remaining() < n_cells * 8 {
        return Err(DataError::Decode("truncated count tensor".into()));
    }
    let mut total = 0u64;
    for slot in cube.counts_mut() {
        let v = buf.get_u64_le();
        *slot = v;
        total = total.checked_add(v).ok_or_else(|| {
            DataError::Decode("count tensor overflows u64 total".into())
        })?;
    }
    cube.set_total(total);
    Ok(cube)
}

/// Serialize an entire cube store (the paper's overnight artifact): the
/// attribute list, class metadata, every 2-D cube, and every materialized
/// 3-D cube.
pub fn encode_store(store: &crate::store::CubeStore) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(STORE_MAGIC);
    buf.put_u8(STORE_VERSION);
    buf.put_u32_le(store.attrs().len() as u32);
    for &a in store.attrs() {
        buf.put_u32_le(a as u32);
    }
    buf.put_u32_le(store.class_labels().len() as u32);
    for l in store.class_labels() {
        put_str(&mut buf, l);
    }
    for &c in store.class_counts() {
        buf.put_u64_le(c);
    }
    buf.put_u64_le(store.total_records());

    let put_cube = |buf: &mut BytesMut, cube: &RuleCube| {
        let blob = encode_cube(cube);
        buf.put_u64_le(blob.len() as u64);
        buf.put_slice(&blob);
    };
    for &a in store.attrs() {
        put_cube(&mut buf, &store.one_dim(a).expect("attr present"));
    }
    let attrs = store.attrs().to_vec();
    let mut n_pairs: u32 = 0;
    let mut pair_buf = BytesMut::new();
    for (i, &a) in attrs.iter().enumerate() {
        for &b in &attrs[i + 1..] {
            if let Ok(cube) = store.pair(a, b) {
                pair_buf.put_u32_le(a as u32);
                pair_buf.put_u32_le(b as u32);
                put_cube(&mut pair_buf, &cube);
                n_pairs += 1;
            }
        }
    }
    buf.put_u32_le(n_pairs);
    buf.put_slice(&pair_buf);
    buf.freeze()
}

/// Deserialize a cube store written by [`encode_store`]. The result is
/// always an eager store.
///
/// # Errors
/// Fails on bad magic/version, truncation, or inconsistent cube blobs.
pub fn decode_store(mut buf: Bytes) -> Result<crate::store::CubeStore, DataError> {
    use std::collections::HashMap;
    use std::sync::Arc;

    if buf.remaining() < 5 {
        return Err(DataError::Decode("store payload too short".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != STORE_MAGIC {
        return Err(DataError::Decode("bad magic (not an OMCS payload)".into()));
    }
    let version = buf.get_u8();
    if version != STORE_VERSION {
        return Err(DataError::Decode(format!(
            "unsupported store version {version}"
        )));
    }
    let need = |buf: &Bytes, n: usize, what: &str| -> Result<(), DataError> {
        if buf.remaining() < n {
            Err(DataError::Decode(format!("truncated {what}")))
        } else {
            Ok(())
        }
    };
    need(&buf, 4, "attr count")?;
    let n_attrs = buf.get_u32_le() as usize;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        need(&buf, 4, "attr index")?;
        attrs.push(buf.get_u32_le() as usize);
    }
    need(&buf, 4, "class count")?;
    let n_classes = buf.get_u32_le() as usize;
    let mut class_labels = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        class_labels.push(get_str(&mut buf)?);
    }
    let mut class_counts = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        need(&buf, 8, "class counts")?;
        class_counts.push(buf.get_u64_le());
    }
    need(&buf, 8, "total records")?;
    let total_records = buf.get_u64_le();

    let get_cube = |buf: &mut Bytes| -> Result<RuleCube, DataError> {
        if buf.remaining() < 8 {
            return Err(DataError::Decode("truncated cube length".into()));
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len {
            return Err(DataError::Decode("truncated cube blob".into()));
        }
        decode_cube(buf.copy_to_bytes(len))
    };
    let mut one_d = HashMap::with_capacity(n_attrs);
    for &a in &attrs {
        one_d.insert(a, Arc::new(get_cube(&mut buf)?));
    }
    need(&buf, 4, "pair count")?;
    let n_pairs = buf.get_u32_le() as usize;
    let mut pairs = HashMap::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        need(&buf, 8, "pair key")?;
        let a = buf.get_u32_le() as usize;
        let b = buf.get_u32_le() as usize;
        pairs.insert((a.min(b), a.max(b)), Arc::new(get_cube(&mut buf)?));
    }
    Ok(crate::store::CubeStore::assemble(
        attrs,
        class_labels,
        class_counts,
        total_records,
        one_d,
        pairs,
    ))
}

#[cfg(test)]
mod store_tests {
    use super::*;
    use crate::store::{CubeStore, StoreBuildOptions};
    use om_synth::{generate_scaleup, ScaleUpConfig};

    fn store() -> CubeStore {
        let ds = generate_scaleup(&ScaleUpConfig {
            n_attrs: 5,
            n_records: 2_000,
            seed: 77,
            ..ScaleUpConfig::default()
        });
        CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap()
    }

    #[test]
    fn store_round_trip() {
        let original = store();
        let back = decode_store(encode_store(&original)).unwrap();
        assert_eq!(back.attrs(), original.attrs());
        assert_eq!(back.class_labels(), original.class_labels());
        assert_eq!(back.class_counts(), original.class_counts());
        assert_eq!(back.total_records(), original.total_records());
        assert_eq!(back.n_pair_cubes(), original.n_pair_cubes());
        for &a in original.attrs() {
            assert_eq!(*back.one_dim(a).unwrap(), *original.one_dim(a).unwrap());
        }
        for (i, &a) in original.attrs().iter().enumerate() {
            for &b in &original.attrs()[i + 1..] {
                assert_eq!(*back.pair(a, b).unwrap(), *original.pair(a, b).unwrap());
            }
        }
    }

    #[test]
    fn store_truncation_rejected() {
        let full = encode_store(&store());
        // Sampled cuts (full scan is slow on a multi-KB payload).
        for cut in [0usize, 3, 4, 5, 9, 40, full.len() / 2, full.len() - 1] {
            assert!(decode_store(full.slice(0..cut)).is_err(), "cut {cut}");
        }
        assert!(decode_store(full).is_ok());
    }

    #[test]
    fn store_bad_magic() {
        assert!(decode_store(Bytes::from_static(b"XXXX\x01")).is_err());
    }

    #[test]
    fn reloaded_store_supports_comparison_workloads() {
        // The reloaded artifact must behave identically for reads.
        let original = store();
        let back = decode_store(encode_store(&original)).unwrap();
        let pair = back.pair(0, 1).unwrap();
        assert!(pair.total() > 0);
        assert_eq!(pair.class_margin(), original.pair(0, 1).unwrap().class_margin());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RuleCube {
        let dims = vec![
            CubeDim {
                attr_index: 2,
                name: "Phone".into(),
                labels: vec!["ph1".into(), "ph2".into()],
            },
            CubeDim {
                attr_index: 5,
                name: "Time".into(),
                labels: vec!["am".into(), "pm".into(), "eve".into()],
            },
        ];
        let mut c = RuleCube::new(dims, vec!["ok".into(), "drop".into()]);
        for (i, (coords, class)) in [
            ([0, 0], 0),
            ([0, 1], 1),
            ([1, 2], 0),
            ([1, 0], 1),
        ]
        .iter()
        .enumerate()
        {
            c.add(&coords[..], *class, (i as u64 + 1) * 10).unwrap();
        }
        c
    }

    #[test]
    fn round_trip_identity() {
        let cube = sample();
        let back = decode_cube(encode_cube(&cube)).unwrap();
        assert_eq!(back, cube);
        assert_eq!(back.total(), cube.total());
        assert_eq!(back.dims()[1].attr_index, 5);
    }

    #[test]
    fn truncation_always_errors() {
        let full = encode_cube(&sample());
        for cut in 0..full.len() {
            assert!(
                decode_cube(full.slice(0..cut)).is_err(),
                "truncation at {cut} silently accepted"
            );
        }
        assert!(decode_cube(full).is_ok());
    }

    #[test]
    fn bad_magic_and_version() {
        assert!(decode_cube(Bytes::from_static(b"NOPE\x01")).is_err());
        assert!(decode_cube(Bytes::from_static(b"OMRC\x09")).is_err());
    }

    #[test]
    fn empty_cube_round_trips() {
        let dims = vec![CubeDim {
            attr_index: 0,
            name: "X".into(),
            labels: vec!["a".into()],
        }];
        let cube = RuleCube::new(dims, vec!["c".into()]);
        let back = decode_cube(encode_cube(&cube)).unwrap();
        assert_eq!(back, cube);
        assert_eq!(back.total(), 0);
    }
}
