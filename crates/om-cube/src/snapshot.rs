//! Epoch-based snapshot publication for live stores.
//!
//! The paper's store is rebuilt offline ("the generation is done
//! off-line, e.g., in the evening"); a live deployment instead merges
//! delta cubes into the serving store while queries run. The consistency
//! contract is: **every query reads exactly one store generation** — a
//! comparison must never mix a pre-merge 1-D cube with a post-merge pair
//! cube, or its confidence ratios silently stop summing to the margins.
//!
//! [`SharedStore`] holds the current generation behind an
//! `RwLock<Arc<StoreSnapshot>>`. Readers clone the `Arc` once per query
//! (nanoseconds under `parking_lot`); writers build the next generation
//! off to the side and swap the pointer. Old generations stay alive until
//! their last reader drops — no torn reads, no reader stalls longer than
//! the pointer swap.

use std::ops::Deref;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::store::CubeStore;

/// One immutable, internally-consistent store generation.
///
/// Derefs to [`CubeStore`], so query code written against `&CubeStore`
/// works unchanged on a pinned snapshot.
pub struct StoreSnapshot {
    store: CubeStore,
    generation: u64,
}

impl StoreSnapshot {
    /// Monotonic generation number; 0 is the initial build.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The underlying store of this generation.
    pub fn store(&self) -> &CubeStore {
        &self.store
    }
}

impl Deref for StoreSnapshot {
    type Target = CubeStore;

    fn deref(&self) -> &CubeStore {
        &self.store
    }
}

/// Handle to the currently-published store generation. Cheap to clone;
/// all clones observe the same sequence of [`publish`](Self::publish)es.
#[derive(Clone)]
pub struct SharedStore {
    current: Arc<RwLock<Arc<StoreSnapshot>>>,
}

impl SharedStore {
    /// Wrap an initial store as generation 0.
    pub fn new(store: CubeStore) -> Self {
        Self {
            current: Arc::new(RwLock::new(Arc::new(StoreSnapshot {
                store,
                generation: 0,
            }))),
        }
    }

    /// Pin the current generation. The snapshot stays valid (and
    /// unchanging) however many publishes happen after this returns.
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        self.current.read().clone()
    }

    /// Generation number of the currently-published snapshot.
    pub fn generation(&self) -> u64 {
        self.current.read().generation
    }

    /// Atomically publish `store` as the next generation and return its
    /// generation number. In-flight readers keep their pinned snapshot;
    /// new `snapshot()` calls see the new store.
    pub fn publish(&self, store: CubeStore) -> u64 {
        let mut current = self.current.write();
        let generation = current.generation + 1;
        *current = Arc::new(StoreSnapshot { store, generation });
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuildOptions;
    use om_synth::{generate_scaleup, ScaleUpConfig};

    fn store(n_records: usize, seed: u64) -> CubeStore {
        let ds = generate_scaleup(&ScaleUpConfig {
            n_attrs: 4,
            n_records,
            seed,
            ..ScaleUpConfig::default()
        });
        CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap()
    }

    #[test]
    fn publish_bumps_generation_and_swaps_store() {
        let shared = SharedStore::new(store(500, 1));
        assert_eq!(shared.generation(), 0);
        let pinned = shared.snapshot();
        assert_eq!(shared.publish(store(800, 2)), 1);
        assert_eq!(shared.generation(), 1);
        // The pinned snapshot still reads generation 0's data.
        assert_eq!(pinned.generation(), 0);
        assert_eq!(pinned.total_records(), 500);
        assert_eq!(shared.snapshot().total_records(), 800);
    }

    #[test]
    fn deref_reaches_store_queries() {
        let shared = SharedStore::new(store(300, 3));
        let snap = shared.snapshot();
        // Deref coercion: StoreSnapshot behaves as &CubeStore.
        assert_eq!(snap.one_dim(snap.attrs()[0]).unwrap().total(), 300);
        assert_eq!(snap.store().total_records(), 300);
    }

    #[test]
    fn clones_observe_the_same_publishes() {
        let shared = SharedStore::new(store(100, 4));
        let other = shared.clone();
        shared.publish(store(200, 5));
        assert_eq!(other.generation(), 1);
        assert_eq!(other.snapshot().total_records(), 200);
    }
}
