//! The rule-cube data structure.

use std::fmt;

use om_data::{Schema, ValueId};
use om_fault::FaultError;

/// Errors produced by cube operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CubeError {
    /// Cell coordinates had the wrong arity.
    Arity { expected: usize, got: usize },
    /// A coordinate was outside its dimension.
    OutOfRange { dim: String, value: u32, card: usize },
    /// A referenced dimension does not exist.
    NoSuchDim(String),
    /// The operation's preconditions were violated.
    Invalid(String),
    /// The operation ran out of budget or was cancelled mid-flight.
    Fault(FaultError),
}

impl fmt::Display for CubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeError::Arity { expected, got } => {
                write!(f, "expected {expected} coordinates, got {got}")
            }
            CubeError::OutOfRange { dim, value, card } => {
                write!(f, "value {value} out of range for dimension {dim} (cardinality {card})")
            }
            CubeError::NoSuchDim(d) => write!(f, "no such dimension: {d}"),
            CubeError::Invalid(msg) => write!(f, "invalid cube operation: {msg}"),
            CubeError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CubeError {}

impl From<FaultError> for CubeError {
    fn from(e: FaultError) -> Self {
        CubeError::Fault(e)
    }
}

/// One non-class dimension of a rule cube: which attribute it came from and
/// the value labels, making cubes self-contained for visualization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeDim {
    /// Index of the attribute in the originating dataset's schema.
    pub attr_index: usize,
    /// Attribute name.
    pub name: String,
    /// Value labels in id order.
    pub labels: Vec<String>,
}

impl CubeDim {
    /// Build a dimension from a schema attribute.
    ///
    /// # Panics
    /// Panics if the attribute is continuous (discretize first).
    pub fn from_schema(schema: &Schema, attr_index: usize) -> Self {
        let attr = schema.attribute(attr_index);
        assert!(
            attr.is_categorical(),
            "cube dimension {:?} must be categorical",
            attr.name()
        );
        Self {
            attr_index,
            name: attr.name().to_owned(),
            labels: attr.domain().labels().to_vec(),
        }
    }

    /// Number of values.
    pub fn cardinality(&self) -> usize {
        self.labels.len()
    }
}

/// A `p + 1`-dimensional rule cube: `p` attribute dimensions plus the class
/// dimension (always last, always present — per the paper, "for each cube,
/// one of the dimensions is always the class attribute").
///
/// `counts` is a dense row-major tensor with the class index fastest:
/// `counts[((v_0 * card_1 + v_1) * … ) * n_classes + c]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleCube {
    dims: Vec<CubeDim>,
    class_labels: Vec<String>,
    counts: Vec<u64>,
    /// Cached strides for each attribute dimension (class stride is 1).
    strides: Vec<usize>,
    total: u64,
}

impl RuleCube {
    /// An all-zero cube over the given dimensions and class labels.
    ///
    /// # Panics
    /// Panics if any dimension or the class has zero cardinality, or if the
    /// tensor would overflow `usize`.
    pub fn new(dims: Vec<CubeDim>, class_labels: Vec<String>) -> Self {
        assert!(!class_labels.is_empty(), "cube needs at least one class");
        for d in &dims {
            assert!(
                d.cardinality() > 0,
                "cube dimension {:?} has no values",
                d.name
            );
        }
        let mut size = class_labels.len();
        for d in &dims {
            size = size
                .checked_mul(d.cardinality())
                .expect("cube size overflows usize");
        }
        let mut strides = vec![0usize; dims.len()];
        let mut acc = class_labels.len();
        for (i, d) in dims.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d.cardinality();
        }
        Self {
            dims,
            class_labels,
            counts: vec![0; size],
            strides,
            total: 0,
        }
    }

    /// Attribute dimensions (class excluded).
    pub fn dims(&self) -> &[CubeDim] {
        &self.dims
    }

    /// Number of attribute dimensions (`p`; the cube is `p + 1`-dimensional).
    pub fn n_attr_dims(&self) -> usize {
        self.dims.len()
    }

    /// Class labels in id order.
    pub fn class_labels(&self) -> &[String] {
        &self.class_labels
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_labels.len()
    }

    /// Total number of records counted into the cube.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of cells (including the class dimension).
    pub fn n_cells(&self) -> usize {
        self.counts.len()
    }

    /// Number of rules represented (= number of cells; the paper's Fig. 1
    /// example: 3 × 4 × 2 = 24 rules).
    pub fn n_rules(&self) -> usize {
        self.counts.len()
    }

    /// Raw flat offset for coordinates; validates arity and ranges.
    fn offset(&self, values: &[ValueId], class: ValueId) -> Result<usize, CubeError> {
        if values.len() != self.dims.len() {
            return Err(CubeError::Arity {
                expected: self.dims.len(),
                got: values.len(),
            });
        }
        let mut off = 0usize;
        for ((&v, d), &s) in values.iter().zip(&self.dims).zip(&self.strides) {
            if v as usize >= d.cardinality() {
                return Err(CubeError::OutOfRange {
                    dim: d.name.clone(),
                    value: v,
                    card: d.cardinality(),
                });
            }
            off += v as usize * s;
        }
        if class as usize >= self.class_labels.len() {
            return Err(CubeError::OutOfRange {
                dim: "class".into(),
                value: class,
                card: self.class_labels.len(),
            });
        }
        Ok(off + class as usize)
    }

    /// Support count of the rule `values → class`.
    pub fn count(&self, values: &[ValueId], class: ValueId) -> Result<u64, CubeError> {
        Ok(self.counts[self.offset(values, class)?])
    }

    /// Sum of counts over all classes for a cell (`sup(values)`).
    pub fn cell_total(&self, values: &[ValueId]) -> Result<u64, CubeError> {
        let base = self.offset(values, 0)?;
        Ok(self.counts[base..base + self.n_classes()].iter().sum())
    }

    /// Add `inc` records to the rule `values → class`.
    pub fn add(&mut self, values: &[ValueId], class: ValueId, inc: u64) -> Result<(), CubeError> {
        let off = self.offset(values, class)?;
        self.counts[off] += inc;
        self.total += inc;
        Ok(())
    }

    /// Unchecked fast-path add used by the bulk builder.
    ///
    /// # Safety
    /// `flat` must be a valid flat offset.
    pub(crate) fn add_flat(&mut self, flat: usize, inc: u64) {
        self.counts[flat] += inc;
        self.total += inc;
    }

    pub(crate) fn strides(&self) -> &[usize] {
        &self.strides
    }

    pub(crate) fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub(crate) fn counts_mut(&mut self) -> &mut [u64] {
        &mut self.counts
    }

    pub(crate) fn set_total(&mut self, total: u64) {
        self.total = total;
    }

    /// Support of the rule `values → class` as a fraction of all records.
    ///
    /// The paper's Fig. 1 example: `A1=a, A2=e → C=yes` has support
    /// `100 / 1158`.
    pub fn support(&self, values: &[ValueId], class: ValueId) -> Result<f64, CubeError> {
        if self.total == 0 {
            return Ok(0.0);
        }
        Ok(self.count(values, class)? as f64 / self.total as f64)
    }

    /// Confidence of the rule `values → class` per Eq. (1):
    /// `sup(values, class) / Σ_j sup(values, c_j)`.
    ///
    /// Returns `None` for an empty cell (the paper visualizes such rules
    /// with confidence 0 but the distinction matters for the comparator's
    /// property-attribute detection).
    pub fn confidence(&self, values: &[ValueId], class: ValueId) -> Result<Option<f64>, CubeError> {
        let denom = self.cell_total(values)?;
        if denom == 0 {
            return Ok(None);
        }
        Ok(Some(self.count(values, class)? as f64 / denom as f64))
    }

    /// Marginal counts over the class dimension only.
    pub fn class_margin(&self) -> Vec<u64> {
        let c = self.n_classes();
        let mut out = vec![0u64; c];
        for chunk in self.counts.chunks_exact(c) {
            for (o, &v) in out.iter_mut().zip(chunk) {
                *o += v;
            }
        }
        out
    }

    /// Iterate all cells as `(coordinates, class, count)`.
    pub fn iter_cells(&self) -> impl Iterator<Item = (Vec<ValueId>, ValueId, u64)> + '_ {
        let cards: Vec<usize> = self.dims.iter().map(CubeDim::cardinality).collect();
        let n_classes = self.n_classes();
        self.counts.iter().enumerate().map(move |(flat, &count)| {
            let mut rest = flat;
            let class = (rest % n_classes) as ValueId;
            rest /= n_classes;
            let mut coords = vec![0 as ValueId; cards.len()];
            for (i, &card) in cards.iter().enumerate().rev() {
                coords[i] = (rest % card) as ValueId;
                rest /= card;
            }
            (coords, class, count)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact rule cube of the paper's Fig. 1: attributes A1 (a,b,c,d)
    /// and A2 (e,f,g), class C (yes,no), 1158 data points. Only the two
    /// cells used in the text are pinned; the rest of the mass is placed in
    /// one corner to reach the paper's total.
    fn fig1_cube() -> RuleCube {
        let dims = vec![
            CubeDim {
                attr_index: 0,
                name: "A1".into(),
                labels: vec!["a".into(), "b".into(), "c".into(), "d".into()],
            },
            CubeDim {
                attr_index: 1,
                name: "A2".into(),
                labels: vec!["e".into(), "f".into(), "g".into()],
            },
        ];
        let mut cube = RuleCube::new(dims, vec!["yes".into(), "no".into()]);
        // Paper: rule (A1=a, A2=e -> C=yes) support 100/1158, confidence 100/150.
        cube.add(&[0, 0], 0, 100).unwrap();
        cube.add(&[0, 0], 1, 50).unwrap();
        // Paper: rule (A1=a, A2=f -> C=yes) support 0, confidence 0.
        cube.add(&[0, 1], 1, 8).unwrap();
        // Fill the remaining mass elsewhere.
        cube.add(&[3, 2], 0, 1000).unwrap();
        cube
    }

    #[test]
    fn fig1_example() {
        let cube = fig1_cube();
        assert_eq!(cube.n_rules(), 24, "3 values x 4 values x 2 classes");
        assert_eq!(cube.total(), 1158);
        // Support 100/1158.
        let sup = cube.support(&[0, 0], 0).unwrap();
        assert!((sup - 100.0 / 1158.0).abs() < 1e-12);
        // Confidence 100/(100+50).
        let conf = cube.confidence(&[0, 0], 0).unwrap().unwrap();
        assert!((conf - 100.0 / 150.0).abs() < 1e-12);
        // (a, f -> yes): support 0, confidence 0 (cell non-empty via "no").
        assert_eq!(cube.count(&[0, 1], 0).unwrap(), 0);
        assert_eq!(cube.confidence(&[0, 1], 0).unwrap(), Some(0.0));
        // A completely empty cell has no confidence.
        assert_eq!(cube.confidence(&[1, 1], 0).unwrap(), None);
    }

    #[test]
    fn class_margin_sums() {
        let cube = fig1_cube();
        assert_eq!(cube.class_margin(), vec![1100, 58]);
    }

    #[test]
    fn arity_and_range_checked() {
        let cube = fig1_cube();
        assert!(matches!(
            cube.count(&[0], 0),
            Err(CubeError::Arity { expected: 2, got: 1 })
        ));
        assert!(matches!(
            cube.count(&[9, 0], 0),
            Err(CubeError::OutOfRange { .. })
        ));
        assert!(matches!(
            cube.count(&[0, 0], 9),
            Err(CubeError::OutOfRange { .. })
        ));
    }

    #[test]
    fn iter_cells_round_trips_counts() {
        let cube = fig1_cube();
        let mut total = 0u64;
        for (coords, class, count) in cube.iter_cells() {
            assert_eq!(cube.count(&coords, class).unwrap(), count);
            total += count;
        }
        assert_eq!(total, cube.total());
        assert_eq!(cube.iter_cells().count(), 24);
    }

    #[test]
    fn one_dim_cube() {
        let dim = CubeDim {
            attr_index: 0,
            name: "X".into(),
            labels: vec!["p".into(), "q".into()],
        };
        let mut cube = RuleCube::new(vec![dim], vec!["y".into(), "n".into()]);
        cube.add(&[0], 0, 3).unwrap();
        cube.add(&[1], 1, 7).unwrap();
        assert_eq!(cube.cell_total(&[0]).unwrap(), 3);
        assert_eq!(cube.cell_total(&[1]).unwrap(), 7);
        assert_eq!(cube.confidence(&[1], 1).unwrap(), Some(1.0));
    }

    #[test]
    fn zero_dim_cube_is_class_histogram() {
        let mut cube = RuleCube::new(vec![], vec!["y".into(), "n".into()]);
        cube.add(&[], 0, 5).unwrap();
        cube.add(&[], 1, 15).unwrap();
        assert_eq!(cube.n_rules(), 2);
        assert_eq!(cube.confidence(&[], 0).unwrap(), Some(0.25));
        assert_eq!(cube.class_margin(), vec![5, 15]);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn rejects_empty_class() {
        RuleCube::new(vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "has no values")]
    fn rejects_empty_dim() {
        let dim = CubeDim {
            attr_index: 0,
            name: "X".into(),
            labels: vec![],
        };
        RuleCube::new(vec![dim], vec!["y".into()]);
    }

    #[test]
    fn error_display() {
        let e = CubeError::Arity { expected: 2, got: 1 };
        assert!(e.to_string().contains("expected 2"));
        let e = CubeError::OutOfRange { dim: "X".into(), value: 9, card: 2 };
        assert!(e.to_string().contains("out of range"));
    }
}
