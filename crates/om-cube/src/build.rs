//! Building rule cubes from datasets in a single pass.

use om_data::{Dataset, ValueId};

use crate::cube::{CubeDim, CubeError, RuleCube};

/// Build the rule cube over the given non-class attributes (the class
/// dimension is always appended, per the paper).
///
/// One pass over the data; min-sup and min-conf are implicitly zero, so
/// every cell of the cross product is materialized.
///
/// ```
/// use om_data::{Cell, DatasetBuilder};
///
/// let mut b = DatasetBuilder::new().categorical("Time").class("Outcome");
/// for (t, o) in [("am", "drop"), ("am", "ok"), ("pm", "ok"), ("pm", "ok")] {
///     b.push_row(&[Cell::Str(t), Cell::Str(o)]).unwrap();
/// }
/// let ds = b.finish().unwrap();
///
/// let cube = om_cube::build_cube(&ds, &[0]).unwrap();
/// // Rule "Time=am -> Outcome=drop" has confidence 1/2.
/// assert_eq!(cube.confidence(&[0], 0).unwrap(), Some(0.5));
/// assert_eq!(cube.n_rules(), 2 * 2);
/// ```
///
/// # Errors
/// Fails if `attrs` contains the class attribute, a duplicate, or a
/// continuous attribute.
pub fn build_cube(ds: &Dataset, attrs: &[usize]) -> Result<RuleCube, CubeError> {
    let schema = ds.schema();
    let class_idx = schema.class_index();
    let mut seen = vec![false; schema.n_attributes()];
    for &a in attrs {
        if a >= schema.n_attributes() {
            return Err(CubeError::NoSuchDim(format!("attribute index {a}")));
        }
        if a == class_idx {
            return Err(CubeError::Invalid(
                "the class attribute is always the last cube dimension; do not list it".into(),
            ));
        }
        if seen[a] {
            return Err(CubeError::Invalid(format!(
                "duplicate attribute {:?} in cube dimensions",
                schema.attribute(a).name()
            )));
        }
        if !schema.attribute(a).is_categorical() {
            return Err(CubeError::Invalid(format!(
                "attribute {:?} is continuous; discretize before cube construction",
                schema.attribute(a).name()
            )));
        }
        seen[a] = true;
    }

    let dims: Vec<CubeDim> = attrs
        .iter()
        .map(|&a| CubeDim::from_schema(schema, a))
        .collect();
    let class_labels = schema.class().domain().labels().to_vec();
    let mut cube = RuleCube::new(dims, class_labels);

    let cols: Vec<&[ValueId]> = attrs
        .iter()
        .map(|&a| ds.column(a).as_categorical().expect("validated categorical"))
        .collect();
    let classes = ds.class_values();
    let strides = cube.strides().to_vec();

    match cols.len() {
        0 => {
            for &c in classes {
                cube.add_flat(c as usize, 1);
            }
        }
        1 => {
            let s0 = strides[0];
            let col0 = cols[0];
            for (r, &c) in classes.iter().enumerate() {
                cube.add_flat(col0[r] as usize * s0 + c as usize, 1);
            }
        }
        2 => {
            let (s0, s1) = (strides[0], strides[1]);
            let (col0, col1) = (cols[0], cols[1]);
            for (r, &c) in classes.iter().enumerate() {
                cube.add_flat(
                    col0[r] as usize * s0 + col1[r] as usize * s1 + c as usize,
                    1,
                );
            }
        }
        _ => {
            for (r, &c) in classes.iter().enumerate() {
                let mut off = c as usize;
                for (col, &s) in cols.iter().zip(&strides) {
                    off += col[r] as usize * s;
                }
                cube.add_flat(off, 1);
            }
        }
    }
    Ok(cube)
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_data::{Cell, DatasetBuilder};

    fn toy() -> Dataset {
        let mut b = DatasetBuilder::new()
            .categorical("Phone")
            .categorical("Time")
            .class("Outcome");
        for (p, t, o) in [
            ("ph1", "am", "ok"),
            ("ph1", "am", "ok"),
            ("ph1", "pm", "drop"),
            ("ph2", "am", "drop"),
            ("ph2", "am", "drop"),
            ("ph2", "pm", "ok"),
            ("ph2", "pm", "ok"),
        ] {
            b.push_row(&[Cell::Str(p), Cell::Str(t), Cell::Str(o)]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn counts_match_manual_tally() {
        let ds = toy();
        let cube = build_cube(&ds, &[0, 1]).unwrap();
        assert_eq!(cube.total(), 7);
        // (ph1, am, ok) appears twice.
        assert_eq!(cube.count(&[0, 0], 0).unwrap(), 2);
        // (ph2, am, drop) appears twice.
        assert_eq!(cube.count(&[1, 0], 1).unwrap(), 2);
        // (ph1, pm, ok) never appears.
        assert_eq!(cube.count(&[0, 1], 0).unwrap(), 0);
        // Confidence of ph2, pm -> ok is 1.0.
        assert_eq!(cube.confidence(&[1, 1], 0).unwrap(), Some(1.0));
    }

    #[test]
    fn one_dim_cube_matches_value_counts() {
        let ds = toy();
        let cube = build_cube(&ds, &[0]).unwrap();
        assert_eq!(cube.cell_total(&[0]).unwrap(), 3); // ph1 rows
        assert_eq!(cube.cell_total(&[1]).unwrap(), 4); // ph2 rows
        // Drop rate of ph1 is 1/3.
        let cf = cube.confidence(&[0], 1).unwrap().unwrap();
        assert!((cf - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_dim_cube_is_class_distribution() {
        let ds = toy();
        let cube = build_cube(&ds, &[]).unwrap();
        assert_eq!(cube.class_margin(), ds.class_counts());
    }

    #[test]
    fn rollup_consistency_between_cube_sizes() {
        // Rolling up the 2-attr cube over one dim must equal the 1-attr cube.
        let ds = toy();
        let big = build_cube(&ds, &[0, 1]).unwrap();
        let small = build_cube(&ds, &[0]).unwrap();
        let rolled = crate::olap::rollup(&big, 1).unwrap();
        assert_eq!(rolled, small);
    }

    #[test]
    fn rejects_class_and_duplicates() {
        let ds = toy();
        assert!(build_cube(&ds, &[2]).is_err());
        assert!(build_cube(&ds, &[0, 0]).is_err());
        assert!(build_cube(&ds, &[9]).is_err());
    }

    #[test]
    fn rejects_continuous_attribute() {
        let mut b = DatasetBuilder::new().continuous("X").class("C");
        b.push_row(&[Cell::Num(1.0), Cell::Str("y")]).unwrap();
        let ds = b.finish().unwrap();
        assert!(build_cube(&ds, &[0]).is_err());
    }

    #[test]
    fn three_dim_cube_generic_path() {
        let mut b = DatasetBuilder::new()
            .categorical("A")
            .categorical("B")
            .categorical("D")
            .class("C");
        for i in 0..20 {
            let a = if i % 2 == 0 { "a0" } else { "a1" };
            let d = if i % 3 == 0 { "d0" } else { "d1" };
            let bb = if i % 5 == 0 { "b0" } else { "b1" };
            let c = if i % 4 == 0 { "y" } else { "n" };
            b.push_row(&[Cell::Str(a), Cell::Str(bb), Cell::Str(d), Cell::Str(c)])
                .unwrap();
        }
        let ds = b.finish().unwrap();
        let cube = build_cube(&ds, &[0, 1, 2]).unwrap();
        assert_eq!(cube.total(), 20);
        assert_eq!(cube.n_attr_dims(), 3);
        // Cross-check one cell by manual counting.
        let a_col = ds.column(0).as_categorical().unwrap();
        let b_col = ds.column(1).as_categorical().unwrap();
        let d_col = ds.column(2).as_categorical().unwrap();
        let c_col = ds.class_values();
        let manual = (0..20)
            .filter(|&r| a_col[r] == 0 && b_col[r] == 1 && d_col[r] == 1 && c_col[r] == 1)
            .count() as u64;
        assert_eq!(cube.count(&[0, 1, 1], 1).unwrap(), manual);
    }
}
