//! Hand-rolled compressed bitmap for the counting kernel.
//!
//! Vendored-only world: no `roaring` crate, so this is a small
//! roaring-style bitmap — row positions are split into 2^16-row chunks,
//! and each chunk stores its low 16 bits either as a sorted `u16` array
//! (sparse) or as a 1024-word bit set (dense). A chunk upgrades to dense
//! when it crosses [`ARRAY_MAX`] members and an intersection result
//! downgrades back to an array when it fits, exactly the containers-and-
//! thresholds scheme of Chambi et al.'s Roaring bitmaps.
//!
//! The kernel ([`crate::kernel`]) keeps one `Bitmap` per
//! `(attribute, value)` pair, so conditioning a sub-population is a
//! bitmap AND and its record count is a popcount — no record walk.

use om_data::ValueId;

/// A sparse container holding more than this many positions converts to
/// dense (4096 × 2 bytes = the 8 KiB a dense container always costs).
pub const ARRAY_MAX: usize = 4096;

const CHUNK_BITS: u32 = 16;
const WORDS_PER_CHUNK: usize = 1024; // 2^16 bits / 64

#[derive(Clone, Debug, PartialEq, Eq)]
enum Container {
    /// Sorted low-16-bit positions; at most [`ARRAY_MAX`] of them.
    Array(Vec<u16>),
    /// One bit per position in the chunk; `len` caches the popcount.
    Dense { words: Box<[u64]>, len: u32 },
}

impl Container {
    fn len(&self) -> u64 {
        match self {
            Container::Array(v) => v.len() as u64,
            Container::Dense { len, .. } => u64::from(*len),
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(v) => v.binary_search(&low).is_ok(),
            Container::Dense { words, .. } => {
                let w = usize::from(low) >> 6;
                words
                    .get(w)
                    .is_some_and(|word| word & (1u64 << (low & 63)) != 0)
            }
        }
    }

    /// Number of members strictly below `low`.
    fn rank_below(&self, low: u16) -> u64 {
        match self {
            Container::Array(v) => v.partition_point(|&p| p < low) as u64,
            Container::Dense { words, .. } => {
                let w = usize::from(low) >> 6;
                let mut n: u64 = words
                    .iter()
                    .take(w)
                    .map(|word| u64::from(word.count_ones()))
                    .sum();
                if let Some(word) = words.get(w) {
                    let below = (1u64 << (low & 63)) - 1;
                    n += u64::from((word & below).count_ones());
                }
                n
            }
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Chunk {
    /// High 16 bits of every position in this chunk.
    key: u16,
    data: Container,
}

/// Compressed set of `u32` row positions (see module docs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bitmap {
    /// Chunks sorted by `key`; empty chunks are never stored.
    chunks: Vec<Chunk>,
    len: u64,
}

impl Bitmap {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of positions in the set (the popcount).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a position. Positions must arrive in strictly ascending
    /// order (the kernel builds bitmaps from a single forward scan).
    ///
    /// # Panics
    /// In debug builds, panics on out-of-order pushes.
    pub fn push(&mut self, pos: u32) {
        let key = (pos >> CHUNK_BITS) as u16;
        let low = (pos & 0xFFFF) as u16;
        match self.chunks.last_mut() {
            Some(chunk) if chunk.key == key => {
                match &mut chunk.data {
                    Container::Array(v) => {
                        debug_assert!(v.last().is_none_or(|&p| p < low), "push out of order");
                        if v.len() == ARRAY_MAX {
                            let mut dense = array_to_dense(v);
                            set_bit(&mut dense, low);
                            chunk.data = Container::Dense {
                                words: dense,
                                len: (ARRAY_MAX + 1) as u32,
                            };
                        } else {
                            v.push(low);
                        }
                    }
                    Container::Dense { words, len } => {
                        set_bit(words, low);
                        *len += 1;
                    }
                }
            }
            _ => {
                debug_assert!(
                    self.chunks.last().is_none_or(|c| c.key < key),
                    "push out of order"
                );
                self.chunks.push(Chunk {
                    key,
                    data: Container::Array(vec![low]),
                });
            }
        }
        self.len += 1;
    }

    /// Whether `pos` is in the set.
    pub fn contains(&self, pos: u32) -> bool {
        let key = (pos >> CHUNK_BITS) as u16;
        let low = (pos & 0xFFFF) as u16;
        match self.chunks.binary_search_by_key(&key, |c| c.key) {
            Ok(i) => self.chunks.get(i).is_some_and(|c| c.data.contains(low)),
            Err(_) => false,
        }
    }

    /// Number of set positions strictly below `pos`.
    pub fn rank(&self, pos: u32) -> u64 {
        let key = (pos >> CHUNK_BITS) as u16;
        let low = (pos & 0xFFFF) as u16;
        let mut n = 0u64;
        for c in &self.chunks {
            if c.key < key {
                n += c.data.len();
            } else if c.key == key {
                n += c.data.rank_below(low);
            } else {
                break;
            }
        }
        n
    }

    /// The intersection `self ∧ other`. Dense∧dense results that fit in
    /// an array downgrade, so narrow sub-populations stay compact.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let mut a_iter = self.chunks.iter().peekable();
        let mut b_iter = other.chunks.iter().peekable();
        while let (Some(a), Some(b)) = (a_iter.peek(), b_iter.peek()) {
            match a.key.cmp(&b.key) {
                std::cmp::Ordering::Less => {
                    a_iter.next();
                }
                std::cmp::Ordering::Greater => {
                    b_iter.next();
                }
                std::cmp::Ordering::Equal => {
                    if let Some(data) = and_containers(&a.data, &b.data) {
                        out.len += data.len();
                        out.chunks.push(Chunk { key: a.key, data });
                    }
                    a_iter.next();
                    b_iter.next();
                }
            }
        }
        out
    }

    /// Visit every position in ascending order.
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        for c in &self.chunks {
            let base = u32::from(c.key) << CHUNK_BITS;
            match &c.data {
                Container::Array(v) => {
                    for &low in v {
                        f(base | u32::from(low));
                    }
                }
                Container::Dense { words, .. } => {
                    for (w, &word) in words.iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let b = bits.trailing_zeros();
                            f(base | ((w as u32) << 6) | b);
                            bits &= bits - 1;
                        }
                    }
                }
            }
        }
    }

    /// The positions as a vector, ascending (test/debug helper).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len as usize);
        self.for_each(|p| out.push(p));
        out
    }
}

/// Build bitmaps for one `ValueId` column: one bitmap per value id in
/// `0..cardinality`, each holding the rows where the column takes it.
/// One forward pass, so every push is in ascending order.
pub fn column_bitmaps(column: &[ValueId], cardinality: usize) -> Vec<Bitmap> {
    let mut maps = vec![Bitmap::new(); cardinality];
    for (row, &v) in column.iter().enumerate() {
        if let Some(bm) = maps.get_mut(v as usize) {
            bm.push(row as u32);
        }
    }
    maps
}

fn new_words() -> Box<[u64]> {
    vec![0u64; WORDS_PER_CHUNK].into_boxed_slice()
}

fn set_bit(words: &mut [u64], low: u16) {
    if let Some(word) = words.get_mut(usize::from(low) >> 6) {
        *word |= 1u64 << (low & 63);
    }
}

fn array_to_dense(v: &[u16]) -> Box<[u64]> {
    let mut words = new_words();
    for &low in v {
        set_bit(&mut words, low);
    }
    words
}

fn and_containers(a: &Container, b: &Container) -> Option<Container> {
    let out = match (a, b) {
        (Container::Array(x), Container::Array(y)) => {
            // Two-pointer merge over the sorted arrays.
            let mut out = Vec::new();
            let mut yi = y.iter().peekable();
            for &p in x {
                while yi.peek().is_some_and(|&&q| q < p) {
                    yi.next();
                }
                if yi.peek().is_some_and(|&&q| q == p) {
                    out.push(p);
                }
            }
            Container::Array(out)
        }
        (Container::Array(x), dense @ Container::Dense { .. })
        | (dense @ Container::Dense { .. }, Container::Array(x)) => {
            Container::Array(x.iter().copied().filter(|&p| dense.contains(p)).collect())
        }
        (Container::Dense { words: wa, .. }, Container::Dense { words: wb, .. }) => {
            let mut words = new_words();
            let mut len = 0u32;
            for (dst, (&x, &y)) in words.iter_mut().zip(wa.iter().zip(wb.iter())) {
                *dst = x & y;
                len += dst.count_ones();
            }
            if len as usize <= ARRAY_MAX {
                // Downgrade: harvest the surviving bits into a sorted array.
                let mut out = Vec::with_capacity(len as usize);
                for (w, &word) in words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        out.push(((w as u16) << 6) | b as u16);
                        bits &= bits - 1;
                    }
                }
                Container::Array(out)
            } else {
                Container::Dense { words, len }
            }
        }
    };
    (out.len() > 0).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_positions(positions: &[u32]) -> Bitmap {
        let mut bm = Bitmap::new();
        for &p in positions {
            bm.push(p);
        }
        bm
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new();
        assert_eq!(bm.len(), 0);
        assert!(bm.is_empty());
        assert!(!bm.contains(0));
        assert_eq!(bm.rank(u32::MAX), 0);
        assert!(bm.to_vec().is_empty());
        assert_eq!(bm.and(&bm).len(), 0);
    }

    #[test]
    fn full_column_goes_dense_and_round_trips() {
        // Every row of a 200k-record "column": crosses 3 chunk
        // boundaries and forces dense containers.
        let n = 200_000u32;
        let bm = from_positions(&(0..n).collect::<Vec<_>>());
        assert_eq!(bm.len(), u64::from(n));
        assert!(bm.contains(0) && bm.contains(n - 1) && !bm.contains(n));
        assert_eq!(bm.rank(n), u64::from(n));
        assert_eq!(bm.rank(12_345), 12_345);
        assert_eq!(bm.to_vec(), (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn array_upgrades_to_dense_at_threshold() {
        let sparse = from_positions(&(0..ARRAY_MAX as u32).map(|i| i * 2).collect::<Vec<_>>());
        assert!(matches!(
            sparse.chunks.first().map(|c| &c.data),
            Some(Container::Array(_))
        ));
        let mut upgraded = sparse.clone();
        upgraded.push(ARRAY_MAX as u32 * 2);
        assert!(matches!(
            upgraded.chunks.first().map(|c| &c.data),
            Some(Container::Dense { .. })
        ));
        assert_eq!(upgraded.len(), ARRAY_MAX as u64 + 1);
        assert_eq!(
            upgraded.to_vec(),
            (0..=ARRAY_MAX as u32).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn and_matches_naive_intersection() {
        // Mixed densities: `a` is dense in chunk 0 and sparse in chunk 2,
        // `b` is sparse everywhere; positions picked by stride so the
        // intersection is easy to state.
        let a: Vec<u32> = (0..70_000).filter(|p| p % 2 == 0).collect();
        let b: Vec<u32> = (0..140_000).filter(|p| p % 3 == 0).collect();
        let bm = from_positions(&a).and(&from_positions(&b));
        let expect: Vec<u32> = (0..70_000).filter(|p| p % 6 == 0).collect();
        assert_eq!(bm.to_vec(), expect);
        assert_eq!(bm.len(), expect.len() as u64);
    }

    #[test]
    fn and_of_disjoint_sets_is_empty() {
        let a = from_positions(&[1, 3, 5, 100_000]);
        let b = from_positions(&[0, 2, 4, 100_001]);
        let bm = a.and(&b);
        assert!(bm.is_empty());
        assert!(bm.chunks.is_empty(), "empty chunks must not be stored");
    }

    #[test]
    fn dense_and_downgrades_to_array() {
        // Two dense chunks whose intersection is tiny.
        let a: Vec<u32> = (0..60_000).filter(|p| p % 2 == 0).collect();
        let b: Vec<u32> = (0..60_000).filter(|p| p % 10_000 == 0).collect();
        let bm = from_positions(&a).and(&from_positions(&b));
        assert_eq!(bm.to_vec(), vec![0, 10_000, 20_000, 30_000, 40_000, 50_000]);
        assert!(bm
            .chunks
            .iter()
            .all(|c| matches!(c.data, Container::Array(_))));
    }

    #[test]
    fn rank_edge_cases() {
        let bm = from_positions(&[0, 65_535, 65_536, 200_000]);
        assert_eq!(bm.rank(0), 0, "rank is exclusive of the position itself");
        assert_eq!(bm.rank(1), 1);
        assert_eq!(bm.rank(65_535), 1);
        assert_eq!(bm.rank(65_536), 2, "chunk boundary");
        assert_eq!(bm.rank(65_537), 3);
        assert_eq!(bm.rank(200_000), 3);
        assert_eq!(bm.rank(u32::MAX), 4);
    }

    #[test]
    fn rank_agrees_with_scan_on_dense() {
        let positions: Vec<u32> = (0..100_000).filter(|p| p % 7 == 0).collect();
        let bm = from_positions(&positions);
        for probe in [0u32, 1, 6_999, 7_000, 65_536, 99_999, 100_000] {
            let naive = positions.iter().filter(|&&p| p < probe).count() as u64;
            assert_eq!(bm.rank(probe), naive, "rank({probe})");
        }
    }

    #[test]
    fn column_bitmaps_partition_the_rows() {
        let column: Vec<ValueId> = (0..10_000).map(|r| (r % 5) as ValueId).collect();
        let maps = column_bitmaps(&column, 5);
        assert_eq!(maps.len(), 5);
        assert_eq!(maps.iter().map(Bitmap::len).sum::<u64>(), 10_000);
        for (v, bm) in maps.iter().enumerate() {
            bm.for_each(|row| assert_eq!(column.get(row as usize), Some(&(v as ValueId))));
        }
        // Two different values never intersect.
        assert!(maps
            .first()
            .zip(maps.last())
            .is_some_and(|(a, b)| a.and(b).is_empty()));
    }
}
