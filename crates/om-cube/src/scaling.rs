//! Automatic scaling among classes.
//!
//! Section V-B: "The system supports automatic scaling among classes to
//! address the class imbalance issue. Scaling increases relative
//! proportions" — without it, the minority (failure) classes the users
//! care about would be invisible next to the dominant ended-ok class.
//!
//! A scaling factor per class maps raw confidences to *display heights*:
//! class `c`'s factor is `max_k cf_max(k) / cf_max(c)` so that each class
//! row uses the full bar height, while *within* a class the relative
//! heights (and therefore orderings and ratios) are preserved.

/// Per-class display scaling factors.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassScaling {
    factors: Vec<f64>,
}

impl ClassScaling {
    /// No-op scaling for `n` classes.
    pub fn identity(n: usize) -> Self {
        Self {
            factors: vec![1.0; n],
        }
    }

    /// Compute factors from the maximum confidence each class reaches in
    /// the view being displayed: every class is stretched so its maximum
    /// confidence displays at full height.
    ///
    /// Classes whose maximum is zero keep factor 1 (nothing to show).
    pub fn from_max_confidences(max_conf: &[f64]) -> Self {
        let factors = max_conf
            .iter()
            .map(|&m| if m > 0.0 { 1.0 / m } else { 1.0 })
            .collect();
        Self { factors }
    }

    /// Number of classes covered.
    pub fn n_classes(&self) -> usize {
        self.factors.len()
    }

    /// The factor for class `c`.
    pub fn factor(&self, c: usize) -> f64 {
        self.factors[c]
    }

    /// Scale a confidence of class `c` to a display height in `[0, 1]`.
    pub fn display_height(&self, c: usize, confidence: f64) -> f64 {
        (confidence * self.factors[c]).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let s = ClassScaling::identity(3);
        assert_eq!(s.display_height(1, 0.25), 0.25);
        assert_eq!(s.n_classes(), 3);
    }

    #[test]
    fn minority_class_stretched_to_full_height() {
        // Majority class peaks at 0.98, minority at 0.02.
        let s = ClassScaling::from_max_confidences(&[0.98, 0.02]);
        assert!((s.display_height(0, 0.98) - 1.0).abs() < 1e-12);
        assert!((s.display_height(1, 0.02) - 1.0).abs() < 1e-12);
        // Half the minority max displays at half height.
        assert!((s.display_height(1, 0.01) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn order_preserved_within_class() {
        let s = ClassScaling::from_max_confidences(&[0.5, 0.04]);
        let a = s.display_height(1, 0.01);
        let b = s.display_height(1, 0.03);
        assert!(a < b);
        // Ratios within a class are preserved.
        assert!((b / a - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_max_class_untouched() {
        let s = ClassScaling::from_max_confidences(&[0.9, 0.0]);
        assert_eq!(s.factor(1), 1.0);
        assert_eq!(s.display_height(1, 0.0), 0.0);
    }

    #[test]
    fn heights_clamped() {
        let s = ClassScaling::from_max_confidences(&[0.5]);
        assert_eq!(s.display_height(0, 0.9), 1.0);
    }
}
