//! OLAP operations on rule cubes: slice, dice, roll-up.
//!
//! These are "basically the same as those in OLAP, but without multiple
//! levels of aggregations" (Section III-B): all attributes live at one
//! level, so roll-up simply marginalizes a dimension out and drill-down is
//! answered by fetching a higher-dimensional cube from the
//! [`crate::store::CubeStore`].

use om_data::ValueId;

use crate::cube::{CubeError, RuleCube};

/// Slice: fix attribute dimension `dim` to `value`, producing a cube with
/// one fewer attribute dimension.
///
/// This is the operation behind the paper's comparison workflow: "the user
/// needs to do a slice operation by selecting two values, i.e., ph1 and
/// ph2" (Section III-C).
pub fn slice(cube: &RuleCube, dim: usize, value: ValueId) -> Result<RuleCube, CubeError> {
    check_dim(cube, dim)?;
    let card = cube.dims()[dim].cardinality();
    if value as usize >= card {
        return Err(CubeError::OutOfRange {
            dim: cube.dims()[dim].name.clone(),
            value,
            card,
        });
    }
    let mut new_dims = cube.dims().to_vec();
    new_dims.remove(dim);
    let mut out = RuleCube::new(new_dims, cube.class_labels().to_vec());
    for (coords, class, count) in cube.iter_cells() {
        if count == 0 || coords[dim] != value {
            continue;
        }
        let mut nc = coords.clone();
        nc.remove(dim);
        out.add(&nc, class, count)?;
    }
    Ok(out)
}

/// Dice: restrict attribute dimension `dim` to a subset of its values.
///
/// The kept values are re-labeled compactly in the order given; duplicates
/// are rejected.
pub fn dice(cube: &RuleCube, dim: usize, values: &[ValueId]) -> Result<RuleCube, CubeError> {
    check_dim(cube, dim)?;
    let card = cube.dims()[dim].cardinality();
    if values.is_empty() {
        return Err(CubeError::Invalid("dice requires at least one value".into()));
    }
    let mut remap = vec![None::<ValueId>; card];
    let mut new_labels = Vec::with_capacity(values.len());
    for (new_id, &v) in values.iter().enumerate() {
        if v as usize >= card {
            return Err(CubeError::OutOfRange {
                dim: cube.dims()[dim].name.clone(),
                value: v,
                card,
            });
        }
        if remap[v as usize].is_some() {
            return Err(CubeError::Invalid(format!(
                "duplicate value {v} in dice selection"
            )));
        }
        remap[v as usize] = Some(new_id as ValueId);
        new_labels.push(cube.dims()[dim].labels[v as usize].clone());
    }
    let mut new_dims = cube.dims().to_vec();
    new_dims[dim].labels = new_labels;
    let mut out = RuleCube::new(new_dims, cube.class_labels().to_vec());
    for (coords, class, count) in cube.iter_cells() {
        if count == 0 {
            continue;
        }
        if let Some(nv) = remap[coords[dim] as usize] {
            let mut nc = coords.clone();
            nc[dim] = nv;
            out.add(&nc, class, count)?;
        }
    }
    Ok(out)
}

/// Roll-up: marginalize attribute dimension `dim` out (sum over its values).
pub fn rollup(cube: &RuleCube, dim: usize) -> Result<RuleCube, CubeError> {
    check_dim(cube, dim)?;
    let mut new_dims = cube.dims().to_vec();
    new_dims.remove(dim);
    let mut out = RuleCube::new(new_dims, cube.class_labels().to_vec());
    for (coords, class, count) in cube.iter_cells() {
        if count == 0 {
            continue;
        }
        let mut nc = coords.clone();
        nc.remove(dim);
        out.add(&nc, class, count)?;
    }
    Ok(out)
}

fn check_dim(cube: &RuleCube, dim: usize) -> Result<(), CubeError> {
    if dim >= cube.n_attr_dims() {
        return Err(CubeError::NoSuchDim(format!(
            "dimension index {dim} (cube has {})",
            cube.n_attr_dims()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeDim;

    fn sample() -> RuleCube {
        let dims = vec![
            CubeDim {
                attr_index: 0,
                name: "Phone".into(),
                labels: vec!["ph1".into(), "ph2".into()],
            },
            CubeDim {
                attr_index: 1,
                name: "Time".into(),
                labels: vec!["am".into(), "pm".into(), "eve".into()],
            },
        ];
        let mut c = RuleCube::new(dims, vec!["ok".into(), "drop".into()]);
        // counts[phone][time][class]
        let data = [
            ((0, 0), (100, 2)),
            ((0, 1), (120, 3)),
            ((0, 2), (80, 1)),
            ((1, 0), (90, 12)),
            ((1, 1), (110, 4)),
            ((1, 2), (70, 2)),
        ];
        for ((p, t), (ok, drop)) in data {
            c.add(&[p, t], 0, ok).unwrap();
            c.add(&[p, t], 1, drop).unwrap();
        }
        c
    }

    #[test]
    fn slice_fixes_one_dimension() {
        let c = sample();
        let ph2 = slice(&c, 0, 1).unwrap();
        assert_eq!(ph2.n_attr_dims(), 1);
        assert_eq!(ph2.dims()[0].name, "Time");
        assert_eq!(ph2.count(&[0], 1).unwrap(), 12);
        assert_eq!(ph2.total(), 90 + 12 + 110 + 4 + 70 + 2);
        // Slicing on the other dim.
        let am = slice(&c, 1, 0).unwrap();
        assert_eq!(am.dims()[0].name, "Phone");
        assert_eq!(am.count(&[1], 1).unwrap(), 12);
    }

    #[test]
    fn dice_restricts_and_relabels() {
        let c = sample();
        let d = dice(&c, 1, &[2, 0]).unwrap();
        assert_eq!(d.dims()[1].labels, vec!["eve".to_string(), "am".to_string()]);
        // eve is now id 0.
        assert_eq!(d.count(&[1, 0], 0).unwrap(), 70);
        // am is now id 1.
        assert_eq!(d.count(&[1, 1], 1).unwrap(), 12);
    }

    #[test]
    fn dice_rejects_bad_selections() {
        let c = sample();
        assert!(dice(&c, 1, &[]).is_err());
        assert!(dice(&c, 1, &[0, 0]).is_err());
        assert!(dice(&c, 1, &[9]).is_err());
        assert!(dice(&c, 5, &[0]).is_err());
    }

    #[test]
    fn rollup_marginalizes() {
        let c = sample();
        let by_phone = rollup(&c, 1).unwrap();
        assert_eq!(by_phone.cell_total(&[0]).unwrap(), 100 + 2 + 120 + 3 + 80 + 1);
        assert_eq!(by_phone.count(&[1], 1).unwrap(), 12 + 4 + 2);
        assert_eq!(by_phone.total(), c.total());
        // Rolling up everything leaves the class histogram.
        let hist = rollup(&by_phone, 0).unwrap();
        assert_eq!(hist.n_attr_dims(), 0);
        assert_eq!(hist.class_margin(), c.class_margin());
    }

    #[test]
    fn slice_then_rollup_commutes() {
        let c = sample();
        let a = rollup(&slice(&c, 0, 0).unwrap(), 0).unwrap();
        let b = slice(&rollup(&c, 1).unwrap(), 0, 0).unwrap();
        assert_eq!(a.class_margin(), b.class_margin());
    }

    #[test]
    fn slice_out_of_range() {
        let c = sample();
        assert!(slice(&c, 0, 9).is_err());
        assert!(slice(&c, 7, 0).is_err());
    }
}
