//! The cube store: all 2-D and 3-D rule cubes of a dataset.
//!
//! "In our current implementation, we store all 3-dimensional rule cubes.
//! For each cube, one of the dimensions is always the class attribute"
//! (Section III-B). The store therefore keeps, for `n` analysis attributes:
//!
//! * `n` one-attribute cubes (`A_i × C`) — the 2-D cubes behind the
//!   overall visualization of Fig. 5, and
//! * `n·(n−1)/2` two-attribute cubes (`A_i × A_j × C`) — the 3-D cubes the
//!   comparator and detailed views read.
//!
//! Cube generation is the offline, expensive step the paper measures in
//! Figs. 10–11 ("the generation is done off-line, e.g., in the evening");
//! [`CubeStore::build`] parallelizes it over attribute pairs with a
//! crossbeam work queue. A lazy mode ([`CubeStore::build_lazy`]) instead
//! materializes pair cubes on first use behind a `parking_lot::RwLock`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel;
use parking_lot::RwLock;

use om_data::{Dataset, Schema};

use crate::build::build_cube;
use crate::cube::{CubeError, RuleCube};
use crate::kernel::{ColumnIndex, PopulationSelector};

/// Options for building a [`CubeStore`].
#[derive(Debug, Clone)]
pub struct StoreBuildOptions {
    /// Schema indices of the attributes to include; `None` = every
    /// categorical non-class attribute. (The paper's domain experts
    /// selected "more than 200" of the 600+ attributes; this is that hook.)
    pub attrs: Option<Vec<usize>>,
    /// Number of worker threads for the eager pair build; `0` = use
    /// available parallelism.
    pub n_threads: usize,
    /// Build the per-column bitmap [`ColumnIndex`] alongside the cubes
    /// (one extra pass per column), so conditioned queries go through
    /// the counting kernel instead of record walks. On by default; turn
    /// off for throwaway stores (ingest deltas) nothing conditions on.
    pub index: bool,
}

impl Default for StoreBuildOptions {
    fn default() -> Self {
        Self {
            attrs: None,
            n_threads: 0,
            index: true,
        }
    }
}

/// One lazily-built pair cube. `OnceLock` guarantees exactly-once
/// initialization: the first thread to reach a cold slot runs the build
/// while any concurrent reader of the same slot blocks until the result
/// (or the build error, which `CubeError: Clone` lets us retain) lands.
type PairSlot = OnceLock<Result<Arc<RuleCube>, CubeError>>;

/// Where a lazy pair cube's counts come from on first access.
enum PairSource {
    /// Recount from the retained dataset (the classic lazy store).
    Dataset(Arc<Dataset>),
    /// Masked column scan through the counting kernel (kernel-built
    /// conditioned stores — see [`PopulationSelector::build_store`]).
    Selector(PopulationSelector),
}

impl PairSource {
    fn build(&self, a: usize, b: usize) -> Result<RuleCube, CubeError> {
        match self {
            PairSource::Dataset(ds) => build_cube(ds, &[a, b]),
            PairSource::Selector(sel) => sel.pair_cube(a, b),
        }
    }
}

enum PairCubes {
    /// All pair cubes prebuilt (offline mode).
    Eager(HashMap<(usize, usize), Arc<RuleCube>>),
    /// Pair cubes built on first access from the retained source.
    Lazy {
        source: PairSource,
        cache: RwLock<HashMap<(usize, usize), Arc<PairSlot>>>,
        builds: AtomicU64,
    },
}

/// All 2-D and 3-D rule cubes over the analysis attributes of a dataset.
pub struct CubeStore {
    attrs: Vec<usize>,
    class_labels: Vec<String>,
    class_counts: Vec<u64>,
    total_records: u64,
    one_d: HashMap<usize, Arc<RuleCube>>,
    pairs: PairCubes,
    /// The counting-kernel index over the generation this store was built
    /// from, when one was built ([`StoreBuildOptions::index`]). `None`
    /// for merged, decoded, or folded-into stores — their cube counts no
    /// longer describe any single indexed row set.
    index: Option<Arc<ColumnIndex>>,
}

impl CubeStore {
    /// Validate and resolve the attribute list (schema-only, so the
    /// kernel validates identically without holding records).
    pub(crate) fn resolve_attrs(
        schema: &Schema,
        opts: &StoreBuildOptions,
    ) -> Result<Vec<usize>, CubeError> {
        let attrs: Vec<usize> = match &opts.attrs {
            Some(list) => {
                for &a in list {
                    if a >= schema.n_attributes() {
                        return Err(CubeError::NoSuchDim(format!("attribute index {a}")));
                    }
                    if a == schema.class_index() {
                        return Err(CubeError::Invalid(
                            "class attribute cannot be an analysis attribute".into(),
                        ));
                    }
                    if !schema.attribute(a).is_categorical() {
                        return Err(CubeError::Invalid(format!(
                            "attribute {:?} is continuous; discretize before building cubes",
                            schema.attribute(a).name()
                        )));
                    }
                }
                list.clone()
            }
            None => schema
                .non_class_indices()
                .into_iter()
                .filter(|&a| schema.attribute(a).is_categorical())
                .collect(),
        };
        if attrs.is_empty() {
            return Err(CubeError::Invalid(
                "no categorical analysis attributes available".into(),
            ));
        }
        Ok(attrs)
    }

    fn build_one_d(
        ds: &Dataset,
        attrs: &[usize],
    ) -> Result<HashMap<usize, Arc<RuleCube>>, CubeError> {
        let mut one_d = HashMap::with_capacity(attrs.len());
        for &a in attrs {
            one_d.insert(a, Arc::new(build_cube(ds, &[a])?));
        }
        Ok(one_d)
    }

    /// Eagerly build every 2-D and 3-D cube (the paper's offline step).
    ///
    /// # Errors
    /// Fails on invalid attribute selections or non-categorical attributes.
    pub fn build(ds: &Dataset, opts: &StoreBuildOptions) -> Result<Self, CubeError> {
        let attrs = Self::resolve_attrs(ds.schema(), opts)?;
        let one_d = Self::build_one_d(ds, &attrs)?;

        let mut pair_list: Vec<(usize, usize)> = Vec::new();
        for (i, &a) in attrs.iter().enumerate() {
            for &b in &attrs[i + 1..] {
                pair_list.push((a.min(b), a.max(b)));
            }
        }

        let n_threads = if opts.n_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            opts.n_threads
        }
        .min(pair_list.len().max(1));

        let mut pairs: HashMap<(usize, usize), Arc<RuleCube>> =
            HashMap::with_capacity(pair_list.len());
        if n_threads <= 1 || pair_list.len() <= 1 {
            for (a, b) in pair_list {
                pairs.insert((a, b), Arc::new(build_cube(ds, &[a, b])?));
            }
        } else {
            let (job_tx, job_rx) = channel::unbounded::<(usize, usize)>();
            let (res_tx, res_rx) =
                channel::unbounded::<Result<((usize, usize), RuleCube), CubeError>>();
            for job in &pair_list {
                job_tx.send(*job).expect("queue open");
            }
            drop(job_tx);
            std::thread::scope(|scope| {
                for _ in 0..n_threads {
                    let job_rx = job_rx.clone();
                    let res_tx = res_tx.clone();
                    scope.spawn(move || {
                        while let Ok((a, b)) = job_rx.recv() {
                            let r = build_cube(ds, &[a, b]).map(|c| ((a, b), c));
                            if res_tx.send(r).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(res_tx);
                for r in res_rx {
                    let ((a, b), cube) = r?;
                    pairs.insert((a, b), Arc::new(cube));
                }
                Ok::<(), CubeError>(())
            })?;
        }

        Ok(Self {
            attrs,
            class_labels: ds.schema().class().domain().labels().to_vec(),
            class_counts: ds.class_counts(),
            total_records: ds.n_rows() as u64,
            one_d,
            pairs: PairCubes::Eager(pairs),
            index: Self::maybe_index(ds, opts)?,
        })
    }

    /// Build the 2-D cubes now and 3-D cubes on demand (keeps the dataset
    /// alive; useful for interactive exploration over very wide data).
    ///
    /// # Errors
    /// Fails on invalid attribute selections.
    pub fn build_lazy(ds: Arc<Dataset>, opts: &StoreBuildOptions) -> Result<Self, CubeError> {
        let attrs = Self::resolve_attrs(ds.schema(), opts)?;
        let one_d = Self::build_one_d(&ds, &attrs)?;
        Ok(Self {
            attrs,
            class_labels: ds.schema().class().domain().labels().to_vec(),
            class_counts: ds.class_counts(),
            total_records: ds.n_rows() as u64,
            one_d,
            index: Self::maybe_index(&ds, opts)?,
            pairs: PairCubes::Lazy {
                source: PairSource::Dataset(ds),
                cache: RwLock::new(HashMap::new()),
                builds: AtomicU64::new(0),
            },
        })
    }

    fn maybe_index(
        ds: &Dataset,
        opts: &StoreBuildOptions,
    ) -> Result<Option<Arc<ColumnIndex>>, CubeError> {
        opts.index
            .then(|| ColumnIndex::build(ds).map(Arc::new))
            .transpose()
    }

    /// Assemble a kernel-built store: cubes already filled by one shared
    /// masked scan; missing pair cubes build lazily through `lazy_source`
    /// when one is given, otherwise the store is fully eager.
    pub(crate) fn from_kernel(
        attrs: Vec<usize>,
        class_labels: Vec<String>,
        class_counts: Vec<u64>,
        total_records: u64,
        one_d: HashMap<usize, Arc<RuleCube>>,
        pairs: HashMap<(usize, usize), Arc<RuleCube>>,
        lazy_source: Option<PopulationSelector>,
    ) -> Self {
        let pairs = match lazy_source {
            None => PairCubes::Eager(pairs),
            Some(sel) => {
                let cache = pairs
                    .into_iter()
                    .map(|(key, cube)| {
                        let slot = Arc::new(PairSlot::new());
                        let _ = slot.set(Ok(cube));
                        (key, slot)
                    })
                    .collect();
                PairCubes::Lazy {
                    source: PairSource::Selector(sel),
                    cache: RwLock::new(cache),
                    builds: AtomicU64::new(0),
                }
            }
        };
        Self {
            attrs,
            class_labels,
            class_counts,
            total_records,
            one_d,
            pairs,
            index: None,
        }
    }

    /// Assemble a store from prebuilt parts (used by `merge`).
    pub(crate) fn assemble(
        attrs: Vec<usize>,
        class_labels: Vec<String>,
        class_counts: Vec<u64>,
        total_records: u64,
        one_d: HashMap<usize, Arc<RuleCube>>,
        pairs: HashMap<(usize, usize), Arc<RuleCube>>,
    ) -> Self {
        Self {
            attrs,
            class_labels,
            class_counts,
            total_records,
            one_d,
            pairs: PairCubes::Eager(pairs),
            index: None,
        }
    }

    /// Schema indices of the analysis attributes.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// The counting-kernel index over this store's generation, when one
    /// was built ([`StoreBuildOptions::index`]). `None` for merged,
    /// decoded, or folded-into stores.
    pub fn index(&self) -> Option<&Arc<ColumnIndex>> {
        self.index.as_ref()
    }

    /// Whether the pair cube `(a, b)` is already materialized (always
    /// true for member pairs of an eager store). Lets a read path choose
    /// between slicing a prebuilt cube and a masked kernel scan.
    pub fn pair_ready(&self, a: usize, b: usize) -> bool {
        let key = (a.min(b), a.max(b));
        match &self.pairs {
            PairCubes::Eager(map) => map.contains_key(&key),
            PairCubes::Lazy { cache, .. } => cache
                .read()
                .get(&key)
                .is_some_and(|s| matches!(s.get(), Some(Ok(_)))),
        }
    }

    /// Class labels, in id order.
    pub fn class_labels(&self) -> &[String] {
        &self.class_labels
    }

    /// Per-class record counts.
    pub fn class_counts(&self) -> &[u64] {
        &self.class_counts
    }

    /// Total records behind the cubes.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// The 2-D cube `A × C` for schema attribute `attr`.
    pub fn one_dim(&self, attr: usize) -> Result<Arc<RuleCube>, CubeError> {
        self.one_d
            .get(&attr)
            .cloned()
            .ok_or_else(|| CubeError::NoSuchDim(format!("attribute index {attr}")))
    }

    /// The 3-D cube `A_a × A_b × C`. Order-insensitive: the returned cube's
    /// dimensions are in ascending schema order; use
    /// [`RuleCube::dims`]`[k].attr_index` to orient.
    ///
    /// # Errors
    /// Fails if either attribute is not in the store.
    pub fn pair(&self, a: usize, b: usize) -> Result<Arc<RuleCube>, CubeError> {
        if a == b {
            return Err(CubeError::Invalid(
                "pair cube requires two distinct attributes".into(),
            ));
        }
        let key = (a.min(b), a.max(b));
        if !self.attrs.contains(&key.0) || !self.attrs.contains(&key.1) {
            return Err(CubeError::NoSuchDim(format!(
                "attribute pair ({}, {})",
                key.0, key.1
            )));
        }
        match &self.pairs {
            PairCubes::Eager(map) => map
                .get(&key)
                .cloned()
                .ok_or_else(|| CubeError::NoSuchDim(format!("pair cube {key:?}"))),
            PairCubes::Lazy {
                source,
                cache,
                builds,
            } => {
                // Two-phase: grab (or create) the slot under the map lock,
                // then build outside it via `get_or_init`, so a slow build
                // neither holds the map lock nor runs more than once. The
                // read guard must be fully dropped before taking the write
                // lock — holding both self-deadlocks.
                let existing = cache.read().get(&key).cloned();
                let slot = match existing {
                    Some(s) => s,
                    None => cache.write().entry(key).or_default().clone(),
                };
                slot.get_or_init(|| {
                    builds.fetch_add(1, Ordering::Relaxed);
                    source.build(key.0, key.1).map(Arc::new)
                })
                .clone()
            }
        }
    }

    /// Number of pair cubes currently materialized.
    pub fn n_pair_cubes(&self) -> usize {
        match &self.pairs {
            PairCubes::Eager(map) => map.len(),
            PairCubes::Lazy { cache, .. } => cache
                .read()
                .values()
                .filter(|s| matches!(s.get(), Some(Ok(_))))
                .count(),
        }
    }

    /// Approximate heap memory of all materialized cube tensors, in bytes.
    pub fn memory_bytes(&self) -> usize {
        let cube_bytes = |c: &RuleCube| c.n_cells() * std::mem::size_of::<u64>();
        let mut total: usize = self.one_d.values().map(|c| cube_bytes(c)).sum();
        match &self.pairs {
            PairCubes::Eager(map) => total += map.values().map(|c| cube_bytes(c)).sum::<usize>(),
            PairCubes::Lazy { cache, .. } => {
                total += cache
                    .read()
                    .values()
                    .filter_map(|s| match s.get() {
                        Some(Ok(c)) => Some(cube_bytes(c)),
                        _ => None,
                    })
                    .sum::<usize>()
            }
        }
        total
    }

    /// Whether every cube is materialized up front (no retained dataset).
    pub fn is_eager(&self) -> bool {
        matches!(self.pairs, PairCubes::Eager(_))
    }

    /// How many lazy pair-cube builds have run (0 for eager stores).
    /// Exactly-once materialization means this never exceeds the number
    /// of distinct pairs requested, however many threads race on them.
    pub fn lazy_builds(&self) -> u64 {
        match &self.pairs {
            PairCubes::Eager(_) => 0,
            PairCubes::Lazy { builds, .. } => builds.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn one_d_mut(&mut self) -> &mut HashMap<usize, Arc<RuleCube>> {
        &mut self.one_d
    }

    pub(crate) fn pairs_eager_mut(&mut self) -> Option<&mut HashMap<(usize, usize), Arc<RuleCube>>> {
        match &mut self.pairs {
            PairCubes::Eager(map) => Some(map),
            PairCubes::Lazy { .. } => None,
        }
    }

    pub(crate) fn add_totals(&mut self, class_counts: &[u64], total_records: u64) {
        for (dst, src) in self.class_counts.iter_mut().zip(class_counts) {
            *dst += src;
        }
        self.total_records += total_records;
        // Folding other counts in means the cubes no longer describe the
        // indexed row set; a stale index answering conditioned queries
        // would silently drop the folded records.
        self.index = None;
    }
}

/// Shallow clone: the flat count tensors stay shared behind their `Arc`s,
/// so cloning a store of hundreds of cubes is a map copy, not a data copy.
/// This is what makes snapshot publication cheap — see
/// [`crate::snapshot::SharedStore`]. A lazy clone shares the in-flight
/// build slots too, so two clones racing on the same cold pair still
/// build it once.
impl Clone for CubeStore {
    fn clone(&self) -> Self {
        Self {
            attrs: self.attrs.clone(),
            class_labels: self.class_labels.clone(),
            class_counts: self.class_counts.clone(),
            total_records: self.total_records,
            one_d: self.one_d.clone(),
            pairs: match &self.pairs {
                PairCubes::Eager(map) => PairCubes::Eager(map.clone()),
                PairCubes::Lazy {
                    source,
                    cache,
                    builds,
                } => PairCubes::Lazy {
                    source: match source {
                        PairSource::Dataset(ds) => PairSource::Dataset(Arc::clone(ds)),
                        PairSource::Selector(sel) => PairSource::Selector(sel.clone()),
                    },
                    cache: RwLock::new(cache.read().clone()),
                    builds: AtomicU64::new(builds.load(Ordering::Relaxed)),
                },
            },
            index: self.index.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_synth::{generate_scaleup, ScaleUpConfig};

    fn small_store(n_threads: usize) -> (Dataset, CubeStore) {
        let ds = generate_scaleup(&ScaleUpConfig {
            n_attrs: 6,
            n_records: 2_000,
            seed: 3,
            ..ScaleUpConfig::default()
        });
        let store = CubeStore::build(
            &ds,
            &StoreBuildOptions {
                n_threads,
                ..Default::default()
            },
        )
        .unwrap();
        (ds, store)
    }

    #[test]
    fn builds_all_pairs() {
        let (_, store) = small_store(0);
        assert_eq!(store.attrs().len(), 6);
        assert_eq!(store.n_pair_cubes(), 6 * 5 / 2);
        assert!(store.memory_bytes() > 0);
    }

    #[test]
    fn parallel_equals_serial() {
        let (_, serial) = small_store(1);
        let (_, parallel) = small_store(4);
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(
                    *serial.pair(i, j).unwrap(),
                    *parallel.pair(i, j).unwrap(),
                    "pair ({i},{j}) differs between serial and parallel builds"
                );
            }
        }
    }

    #[test]
    fn pair_is_order_insensitive() {
        let (_, store) = small_store(0);
        assert_eq!(*store.pair(1, 4).unwrap(), *store.pair(4, 1).unwrap());
        assert!(store.pair(2, 2).is_err());
        assert!(store.pair(0, 99).is_err());
    }

    #[test]
    fn one_dim_matches_rollup_of_pair() {
        let (_, store) = small_store(0);
        let pair = store.pair(0, 1).unwrap();
        let rolled = crate::olap::rollup(&pair, 1).unwrap();
        assert_eq!(*store.one_dim(0).unwrap(), rolled);
    }

    #[test]
    fn class_totals_consistent() {
        let (ds, store) = small_store(0);
        assert_eq!(store.total_records(), ds.n_rows() as u64);
        assert_eq!(store.class_counts(), ds.class_counts().as_slice());
        let margin = store.one_dim(3).unwrap().class_margin();
        assert_eq!(margin, ds.class_counts());
    }

    #[test]
    fn lazy_store_builds_on_demand() {
        let ds = Arc::new(generate_scaleup(&ScaleUpConfig {
            n_attrs: 5,
            n_records: 1_000,
            seed: 9,
            ..ScaleUpConfig::default()
        }));
        let store = CubeStore::build_lazy(ds.clone(), &StoreBuildOptions::default()).unwrap();
        assert_eq!(store.n_pair_cubes(), 0);
        let c1 = store.pair(0, 3).unwrap();
        assert_eq!(store.n_pair_cubes(), 1);
        // Second fetch hits the cache (same Arc).
        let c2 = store.pair(3, 0).unwrap();
        assert!(Arc::ptr_eq(&c1, &c2));
        // Must agree with an eager build.
        let eager = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
        assert_eq!(*c1, *eager.pair(0, 3).unwrap());
    }

    #[test]
    fn lazy_cold_pair_builds_exactly_once_under_contention() {
        // 8 threads released together onto the same cold pair cube: the
        // build must run exactly once, every thread must get the same
        // Arc, and nothing may deadlock.
        let ds = Arc::new(generate_scaleup(&ScaleUpConfig {
            n_attrs: 5,
            n_records: 20_000,
            seed: 11,
            ..ScaleUpConfig::default()
        }));
        let store = CubeStore::build_lazy(ds, &StoreBuildOptions::default()).unwrap();
        let barrier = std::sync::Barrier::new(8);
        let cubes: Vec<Arc<RuleCube>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        store.pair(1, 3).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(store.lazy_builds(), 1, "cold pair cube built more than once");
        assert_eq!(store.n_pair_cubes(), 1);
        for c in &cubes[1..] {
            assert!(Arc::ptr_eq(&cubes[0], c), "threads saw different cubes");
        }
    }

    #[test]
    fn shallow_clone_shares_cube_tensors() {
        let (_, store) = small_store(1);
        let copy = store.clone();
        assert!(Arc::ptr_eq(
            &store.one_dim(0).unwrap(),
            &copy.one_dim(0).unwrap()
        ));
        assert!(Arc::ptr_eq(
            &store.pair(0, 1).unwrap(),
            &copy.pair(0, 1).unwrap()
        ));
        assert_eq!(copy.total_records(), store.total_records());
        assert!(store.is_eager() && copy.is_eager());
    }

    #[test]
    fn attr_subset_selection() {
        let ds = generate_scaleup(&ScaleUpConfig {
            n_attrs: 6,
            n_records: 500,
            seed: 1,
            ..ScaleUpConfig::default()
        });
        let store = CubeStore::build(
            &ds,
            &StoreBuildOptions {
                attrs: Some(vec![1, 3, 5]),
                n_threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(store.attrs(), &[1, 3, 5]);
        assert_eq!(store.n_pair_cubes(), 3);
        assert!(store.one_dim(0).is_err());
        assert!(store.pair(0, 1).is_err());
    }

    #[test]
    fn rejects_class_in_selection() {
        let ds = generate_scaleup(&ScaleUpConfig {
            n_attrs: 3,
            n_records: 100,
            seed: 1,
            ..ScaleUpConfig::default()
        });
        let class_idx = ds.schema().class_index();
        let r = CubeStore::build(
            &ds,
            &StoreBuildOptions {
                attrs: Some(vec![0, class_idx]),
                n_threads: 1,
                ..Default::default()
            },
        );
        assert!(r.is_err());
    }
}
