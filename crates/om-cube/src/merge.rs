//! Cube algebra: merging rule cubes built from disjoint record batches.
//!
//! The paper's data arrives monthly ("more than 200 GB of data every
//! month") and cube generation runs offline. Counts are additive, so
//! cubes built per batch can be merged instead of recounting history:
//! `cube(A ∪ B) = cube(A) + cube(B)` for disjoint record sets. This gives
//! an incremental pipeline: build tonight's cubes from tonight's records,
//! merge into the running store.

use std::sync::Arc;

use crate::cube::{CubeError, RuleCube};
use crate::store::CubeStore;

impl RuleCube {
    /// Add `other`'s counts into `self` in place — the compaction fast
    /// path: one slice-wise pass over the flat count tensors, no clone.
    /// Both cubes must have identical dimensions (attribute indices,
    /// names, labels) and class labels, which makes their flat layouts
    /// identical cell for cell.
    ///
    /// # Errors
    /// Fails on any structural mismatch; `self` is untouched on error.
    pub fn merge_into(&mut self, other: &RuleCube) -> Result<(), CubeError> {
        if self.dims() != other.dims() {
            return Err(CubeError::Invalid(
                "cannot merge cubes with different dimensions".into(),
            ));
        }
        if self.class_labels() != other.class_labels() {
            return Err(CubeError::Invalid(
                "cannot merge cubes with different class labels".into(),
            ));
        }
        let total = self.total() + other.total();
        for (dst, src) in self.counts_mut().iter_mut().zip(other.counts()) {
            *dst += src;
        }
        self.set_total(total);
        Ok(())
    }
}

/// Add `other`'s counts into `cube`, returning a new cube. Both cubes
/// must have identical dimensions (attribute indices, names, labels) and
/// class labels. Pure counterpart of [`RuleCube::merge_into`].
///
/// # Errors
/// Fails on any structural mismatch.
pub fn merge_cubes(cube: &RuleCube, other: &RuleCube) -> Result<RuleCube, CubeError> {
    let mut out = cube.clone();
    out.merge_into(other)?;
    Ok(out)
}

impl CubeStore {
    /// Merge another store's counts into a new store. Both stores must
    /// cover the same attributes (same schema positions and domains) and
    /// classes — i.e. two batches of the *same* data feed.
    ///
    /// The result is always an eager store.
    ///
    /// # Errors
    /// Fails on attribute/class mismatches.
    pub fn merge(&self, other: &CubeStore) -> Result<CubeStore, CubeError> {
        if self.attrs() != other.attrs() {
            return Err(CubeError::Invalid(
                "cannot merge stores over different attribute sets".into(),
            ));
        }
        if self.class_labels() != other.class_labels() {
            return Err(CubeError::Invalid(
                "cannot merge stores with different class labels".into(),
            ));
        }
        let mut one_d = std::collections::HashMap::with_capacity(self.attrs().len());
        for &a in self.attrs() {
            let merged = merge_cubes(self.one_dim(a)?.as_ref(), other.one_dim(a)?.as_ref())?;
            one_d.insert(a, Arc::new(merged));
        }
        let mut pairs = std::collections::HashMap::new();
        let attrs = self.attrs().to_vec();
        for (i, &a) in attrs.iter().enumerate() {
            for &b in &attrs[i + 1..] {
                let merged = merge_cubes(self.pair(a, b)?.as_ref(), other.pair(a, b)?.as_ref())?;
                pairs.insert((a.min(b), a.max(b)), Arc::new(merged));
            }
        }
        let class_counts = self
            .class_counts()
            .iter()
            .zip(other.class_counts())
            .map(|(x, y)| x + y)
            .collect();
        Ok(CubeStore::assemble(
            attrs,
            self.class_labels().to_vec(),
            class_counts,
            self.total_records() + other.total_records(),
            one_d,
            pairs,
        ))
    }

    /// Merge another store's counts into `self` in place — the compactor
    /// hot path. Cubes shared with a published snapshot (their `Arc` has
    /// other owners) are copied once via `Arc::make_mut`; uniquely-owned
    /// cubes are updated with zero allocation. `self` must be an eager
    /// store; `other` may be lazy (its pair cubes materialize on demand).
    ///
    /// # Errors
    /// Fails on attribute/class/domain mismatches or a lazy `self`. All
    /// structure is validated before any count is touched, so `self` is
    /// unchanged on error.
    pub fn merge_from(&mut self, other: &CubeStore) -> Result<(), CubeError> {
        if self.attrs() != other.attrs() {
            return Err(CubeError::Invalid(
                "cannot merge stores over different attribute sets".into(),
            ));
        }
        if self.class_labels() != other.class_labels() {
            return Err(CubeError::Invalid(
                "cannot merge stores with different class labels".into(),
            ));
        }
        if !self.is_eager() {
            return Err(CubeError::Invalid(
                "merge_from requires an eager destination store".into(),
            ));
        }
        let attrs = self.attrs().to_vec();
        // Validate every cube pair structurally before mutating anything,
        // so a mid-merge mismatch cannot leave the store half-merged.
        let check = |mine: &RuleCube, theirs: &RuleCube| -> Result<(), CubeError> {
            if mine.dims() != theirs.dims() || mine.class_labels() != theirs.class_labels() {
                return Err(CubeError::Invalid(
                    "cannot merge cubes with different dimensions".into(),
                ));
            }
            Ok(())
        };
        for &a in &attrs {
            check(&*self.one_dim(a)?, &*other.one_dim(a)?)?;
        }
        for (i, &a) in attrs.iter().enumerate() {
            for &b in &attrs[i + 1..] {
                check(&*self.pair(a, b)?, &*other.pair(a, b)?)?;
            }
        }
        for &a in &attrs {
            let theirs = other.one_dim(a)?;
            let slot = self
                .one_d_mut()
                .get_mut(&a)
                .ok_or_else(|| CubeError::NoSuchDim(format!("attribute index {a}")))?;
            Arc::make_mut(slot).merge_into(&theirs)?;
        }
        for (i, &a) in attrs.iter().enumerate() {
            for &b in &attrs[i + 1..] {
                let theirs = other.pair(a, b)?;
                let key = (a.min(b), a.max(b));
                let map = self.pairs_eager_mut().ok_or_else(|| {
                    CubeError::Invalid("merge_from requires an eager destination store".into())
                })?;
                let slot = map
                    .get_mut(&key)
                    .ok_or_else(|| CubeError::NoSuchDim(format!("pair cube {key:?}")))?;
                Arc::make_mut(slot).merge_into(&theirs)?;
            }
        }
        self.add_totals(other.class_counts(), other.total_records());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cube;
    use crate::store::StoreBuildOptions;
    use om_data::sample::duplicate;
    use om_synth::{generate_scaleup, ScaleUpConfig};

    fn halves() -> (om_data::Dataset, om_data::Dataset, om_data::Dataset) {
        let a = generate_scaleup(&ScaleUpConfig {
            n_attrs: 5,
            n_records: 3_000,
            seed: 41,
            ..ScaleUpConfig::default()
        });
        let b = generate_scaleup(&ScaleUpConfig {
            n_attrs: 5,
            n_records: 2_000,
            seed: 42,
            ..ScaleUpConfig::default()
        });
        let mut all = a.clone();
        all.append(&b).unwrap();
        (a, b, all)
    }

    #[test]
    fn merged_cube_equals_cube_of_union() {
        let (a, b, all) = halves();
        let ca = build_cube(&a, &[0, 2]).unwrap();
        let cb = build_cube(&b, &[0, 2]).unwrap();
        let merged = merge_cubes(&ca, &cb).unwrap();
        let direct = build_cube(&all, &[0, 2]).unwrap();
        assert_eq!(merged, direct);
        assert_eq!(merged.total(), 5_000);
    }

    #[test]
    fn merged_store_equals_store_of_union() {
        let (a, b, all) = halves();
        let opts = StoreBuildOptions::default();
        let sa = CubeStore::build(&a, &opts).unwrap();
        let sb = CubeStore::build(&b, &opts).unwrap();
        let merged = sa.merge(&sb).unwrap();
        let direct = CubeStore::build(&all, &opts).unwrap();
        assert_eq!(merged.total_records(), direct.total_records());
        assert_eq!(merged.class_counts(), direct.class_counts());
        for &i in direct.attrs() {
            assert_eq!(*merged.one_dim(i).unwrap(), *direct.one_dim(i).unwrap());
        }
        for (i, &x) in direct.attrs().iter().enumerate() {
            for &y in &direct.attrs()[i + 1..] {
                assert_eq!(*merged.pair(x, y).unwrap(), *direct.pair(x, y).unwrap());
            }
        }
    }

    #[test]
    fn merge_is_commutative() {
        let (a, b, _) = halves();
        let opts = StoreBuildOptions::default();
        let sa = CubeStore::build(&a, &opts).unwrap();
        let sb = CubeStore::build(&b, &opts).unwrap();
        let ab = sa.merge(&sb).unwrap();
        let ba = sb.merge(&sa).unwrap();
        for &i in ab.attrs() {
            assert_eq!(*ab.one_dim(i).unwrap(), *ba.one_dim(i).unwrap());
        }
    }

    #[test]
    fn merging_with_duplicate_doubles_counts() {
        let (a, _, _) = halves();
        let doubled_ds = duplicate(&a, 2).unwrap();
        let opts = StoreBuildOptions::default();
        let sa = CubeStore::build(&a, &opts).unwrap();
        let merged = sa.merge(&sa).unwrap();
        let direct = CubeStore::build(&doubled_ds, &opts).unwrap();
        assert_eq!(merged.class_counts(), direct.class_counts());
        assert_eq!(*merged.pair(0, 1).unwrap(), *direct.pair(0, 1).unwrap());
    }

    #[test]
    fn merge_from_equals_pure_merge() {
        let (a, b, all) = halves();
        let opts = StoreBuildOptions::default();
        let mut sa = CubeStore::build(&a, &opts).unwrap();
        let sb = CubeStore::build(&b, &opts).unwrap();
        sa.merge_from(&sb).unwrap();
        let direct = CubeStore::build(&all, &opts).unwrap();
        assert_eq!(sa.total_records(), direct.total_records());
        assert_eq!(sa.class_counts(), direct.class_counts());
        for &i in direct.attrs() {
            assert_eq!(*sa.one_dim(i).unwrap(), *direct.one_dim(i).unwrap());
        }
        for (i, &x) in direct.attrs().iter().enumerate() {
            for &y in &direct.attrs()[i + 1..] {
                assert_eq!(*sa.pair(x, y).unwrap(), *direct.pair(x, y).unwrap());
            }
        }
    }

    #[test]
    fn merge_from_copies_on_write_only_pinned_cubes() {
        // A shallow clone stands in for a published snapshot: merging
        // must not mutate the cubes it pins, and the pinned clone must
        // keep serving the pre-merge counts.
        let (a, b, _) = halves();
        let opts = StoreBuildOptions::default();
        let mut sa = CubeStore::build(&a, &opts).unwrap();
        let sb = CubeStore::build(&b, &opts).unwrap();
        let pinned = sa.clone();
        let before = pinned.pair(0, 1).unwrap();
        sa.merge_from(&sb).unwrap();
        assert!(Arc::ptr_eq(&pinned.pair(0, 1).unwrap(), &before));
        assert_eq!(pinned.total_records(), 3_000);
        assert_eq!(sa.total_records(), 5_000);
        assert_ne!(*sa.pair(0, 1).unwrap(), *before);
        // With the pin gone, a second merge updates cubes in place.
        drop((pinned, before));
        let addr = Arc::as_ptr(&sa.pair(0, 1).unwrap());
        sa.merge_from(&sb).unwrap();
        assert_eq!(Arc::as_ptr(&sa.pair(0, 1).unwrap()), addr);
        assert_eq!(sa.total_records(), 7_000);
    }

    #[test]
    fn merge_from_rejects_lazy_destination() {
        let (a, b, _) = halves();
        let mut lazy =
            CubeStore::build_lazy(Arc::new(a), &StoreBuildOptions::default()).unwrap();
        let sb = CubeStore::build(&b, &StoreBuildOptions::default()).unwrap();
        assert!(lazy.merge_from(&sb).is_err());
    }

    #[test]
    fn structural_mismatches_rejected() {
        let (a, _, _) = halves();
        let other = generate_scaleup(&ScaleUpConfig {
            n_attrs: 4, // different width
            n_records: 1_000,
            seed: 43,
            ..ScaleUpConfig::default()
        });
        let sa = CubeStore::build(&a, &StoreBuildOptions::default()).unwrap();
        let so = CubeStore::build(&other, &StoreBuildOptions::default()).unwrap();
        assert!(sa.merge(&so).is_err());

        let ca = build_cube(&a, &[0]).unwrap();
        let cb = build_cube(&a, &[1]).unwrap();
        assert!(merge_cubes(&ca, &cb).is_err());
    }
}
