//! Cube algebra: merging rule cubes built from disjoint record batches.
//!
//! The paper's data arrives monthly ("more than 200 GB of data every
//! month") and cube generation runs offline. Counts are additive, so
//! cubes built per batch can be merged instead of recounting history:
//! `cube(A ∪ B) = cube(A) + cube(B)` for disjoint record sets. This gives
//! an incremental pipeline: build tonight's cubes from tonight's records,
//! merge into the running store.

use std::sync::Arc;

use crate::cube::{CubeError, RuleCube};
use crate::store::CubeStore;

/// Add `other`'s counts into `cube`. Both cubes must have identical
/// dimensions (attribute indices, names, labels) and class labels.
///
/// # Errors
/// Fails on any structural mismatch.
pub fn merge_cubes(cube: &RuleCube, other: &RuleCube) -> Result<RuleCube, CubeError> {
    if cube.dims() != other.dims() {
        return Err(CubeError::Invalid(
            "cannot merge cubes with different dimensions".into(),
        ));
    }
    if cube.class_labels() != other.class_labels() {
        return Err(CubeError::Invalid(
            "cannot merge cubes with different class labels".into(),
        ));
    }
    let mut out = cube.clone();
    for (coords, class, count) in other.iter_cells() {
        if count > 0 {
            out.add(&coords, class, count)?;
        }
    }
    Ok(out)
}

impl CubeStore {
    /// Merge another store's counts into a new store. Both stores must
    /// cover the same attributes (same schema positions and domains) and
    /// classes — i.e. two batches of the *same* data feed.
    ///
    /// The result is always an eager store.
    ///
    /// # Errors
    /// Fails on attribute/class mismatches.
    pub fn merge(&self, other: &CubeStore) -> Result<CubeStore, CubeError> {
        if self.attrs() != other.attrs() {
            return Err(CubeError::Invalid(
                "cannot merge stores over different attribute sets".into(),
            ));
        }
        if self.class_labels() != other.class_labels() {
            return Err(CubeError::Invalid(
                "cannot merge stores with different class labels".into(),
            ));
        }
        let mut one_d = std::collections::HashMap::with_capacity(self.attrs().len());
        for &a in self.attrs() {
            let merged = merge_cubes(self.one_dim(a)?.as_ref(), other.one_dim(a)?.as_ref())?;
            one_d.insert(a, Arc::new(merged));
        }
        let mut pairs = std::collections::HashMap::new();
        let attrs = self.attrs().to_vec();
        for (i, &a) in attrs.iter().enumerate() {
            for &b in &attrs[i + 1..] {
                let merged = merge_cubes(self.pair(a, b)?.as_ref(), other.pair(a, b)?.as_ref())?;
                pairs.insert((a.min(b), a.max(b)), Arc::new(merged));
            }
        }
        let class_counts = self
            .class_counts()
            .iter()
            .zip(other.class_counts())
            .map(|(x, y)| x + y)
            .collect();
        Ok(CubeStore::assemble(
            attrs,
            self.class_labels().to_vec(),
            class_counts,
            self.total_records() + other.total_records(),
            one_d,
            pairs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_cube;
    use crate::store::StoreBuildOptions;
    use om_data::sample::duplicate;
    use om_synth::{generate_scaleup, ScaleUpConfig};

    fn halves() -> (om_data::Dataset, om_data::Dataset, om_data::Dataset) {
        let a = generate_scaleup(&ScaleUpConfig {
            n_attrs: 5,
            n_records: 3_000,
            seed: 41,
            ..ScaleUpConfig::default()
        });
        let b = generate_scaleup(&ScaleUpConfig {
            n_attrs: 5,
            n_records: 2_000,
            seed: 42,
            ..ScaleUpConfig::default()
        });
        let mut all = a.clone();
        all.append(&b).unwrap();
        (a, b, all)
    }

    #[test]
    fn merged_cube_equals_cube_of_union() {
        let (a, b, all) = halves();
        let ca = build_cube(&a, &[0, 2]).unwrap();
        let cb = build_cube(&b, &[0, 2]).unwrap();
        let merged = merge_cubes(&ca, &cb).unwrap();
        let direct = build_cube(&all, &[0, 2]).unwrap();
        assert_eq!(merged, direct);
        assert_eq!(merged.total(), 5_000);
    }

    #[test]
    fn merged_store_equals_store_of_union() {
        let (a, b, all) = halves();
        let opts = StoreBuildOptions::default();
        let sa = CubeStore::build(&a, &opts).unwrap();
        let sb = CubeStore::build(&b, &opts).unwrap();
        let merged = sa.merge(&sb).unwrap();
        let direct = CubeStore::build(&all, &opts).unwrap();
        assert_eq!(merged.total_records(), direct.total_records());
        assert_eq!(merged.class_counts(), direct.class_counts());
        for &i in direct.attrs() {
            assert_eq!(*merged.one_dim(i).unwrap(), *direct.one_dim(i).unwrap());
        }
        for (i, &x) in direct.attrs().iter().enumerate() {
            for &y in &direct.attrs()[i + 1..] {
                assert_eq!(*merged.pair(x, y).unwrap(), *direct.pair(x, y).unwrap());
            }
        }
    }

    #[test]
    fn merge_is_commutative() {
        let (a, b, _) = halves();
        let opts = StoreBuildOptions::default();
        let sa = CubeStore::build(&a, &opts).unwrap();
        let sb = CubeStore::build(&b, &opts).unwrap();
        let ab = sa.merge(&sb).unwrap();
        let ba = sb.merge(&sa).unwrap();
        for &i in ab.attrs() {
            assert_eq!(*ab.one_dim(i).unwrap(), *ba.one_dim(i).unwrap());
        }
    }

    #[test]
    fn merging_with_duplicate_doubles_counts() {
        let (a, _, _) = halves();
        let doubled_ds = duplicate(&a, 2).unwrap();
        let opts = StoreBuildOptions::default();
        let sa = CubeStore::build(&a, &opts).unwrap();
        let merged = sa.merge(&sa).unwrap();
        let direct = CubeStore::build(&doubled_ds, &opts).unwrap();
        assert_eq!(merged.class_counts(), direct.class_counts());
        assert_eq!(*merged.pair(0, 1).unwrap(), *direct.pair(0, 1).unwrap());
    }

    #[test]
    fn structural_mismatches_rejected() {
        let (a, _, _) = halves();
        let other = generate_scaleup(&ScaleUpConfig {
            n_attrs: 4, // different width
            n_records: 1_000,
            seed: 43,
            ..ScaleUpConfig::default()
        });
        let sa = CubeStore::build(&a, &StoreBuildOptions::default()).unwrap();
        let so = CubeStore::build(&other, &StoreBuildOptions::default()).unwrap();
        assert!(sa.merge(&so).is_err());

        let ca = build_cube(&a, &[0]).unwrap();
        let cb = build_cube(&a, &[1]).unwrap();
        assert!(merge_cubes(&ca, &cb).is_err());
    }
}
