//! Read-oriented view over a 2-D rule cube (one attribute × class).
//!
//! The visualizer and the general-impressions miner consume cubes through
//! this view: per-(value, class) counts, confidences and supports, plus
//! the per-value data distribution shown at the top of each Fig. 5 column.

use om_data::ValueId;

use crate::cube::{CubeError, RuleCube};
use crate::store::CubeStore;

/// A materialized `value × class` table of one attribute's rule cube.
#[derive(Debug, Clone, PartialEq)]
pub struct CubeView {
    attr_name: String,
    value_labels: Vec<String>,
    class_labels: Vec<String>,
    /// `counts[value][class]`.
    counts: Vec<Vec<u64>>,
    /// Row totals (`sup(A = v)`).
    value_totals: Vec<u64>,
    total: u64,
}

impl CubeView {
    /// Build a view from a 1-attribute rule cube.
    ///
    /// # Errors
    /// Fails if the cube does not have exactly one attribute dimension.
    pub fn from_cube(cube: &RuleCube) -> Result<Self, CubeError> {
        if cube.n_attr_dims() != 1 {
            return Err(CubeError::Invalid(format!(
                "CubeView requires a 1-attribute cube, got {} attribute dims",
                cube.n_attr_dims()
            )));
        }
        let dim = &cube.dims()[0];
        let n_vals = dim.cardinality();
        let n_classes = cube.n_classes();
        let mut counts = vec![vec![0u64; n_classes]; n_vals];
        for (coords, class, count) in cube.iter_cells() {
            counts[coords[0] as usize][class as usize] = count;
        }
        let value_totals: Vec<u64> = counts.iter().map(|row| row.iter().sum()).collect();
        Ok(Self {
            attr_name: dim.name.clone(),
            value_labels: dim.labels.clone(),
            class_labels: cube.class_labels().to_vec(),
            counts,
            value_totals,
            total: cube.total(),
        })
    }

    /// The view of `attr` restricted to rows where `cond_attr =
    /// cond_value` — a conditioned Fig. 5 column, answered through
    /// [`crate::query::conditioned_one_dim`] (pair-cube slice or masked
    /// kernel scan, whichever is already paid for).
    ///
    /// # Errors
    /// Fails if either attribute is outside the store or the condition
    /// value is out of domain.
    pub fn conditioned(
        store: &CubeStore,
        cond_attr: usize,
        cond_value: ValueId,
        attr: usize,
    ) -> Result<Self, CubeError> {
        Self::from_cube(&crate::query::conditioned_one_dim(
            store, cond_attr, cond_value, attr,
        )?)
    }

    pub fn attr_name(&self) -> &str {
        &self.attr_name
    }

    pub fn value_labels(&self) -> &[String] {
        &self.value_labels
    }

    pub fn class_labels(&self) -> &[String] {
        &self.class_labels
    }

    pub fn n_values(&self) -> usize {
        self.value_labels.len()
    }

    pub fn n_classes(&self) -> usize {
        self.class_labels.len()
    }

    /// Count of records with `value` and `class`.
    pub fn count(&self, value: ValueId, class: ValueId) -> u64 {
        self.counts[value as usize][class as usize]
    }

    /// Records with `value` (any class).
    pub fn value_total(&self, value: ValueId) -> u64 {
        self.value_totals[value as usize]
    }

    /// Total records.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Confidence of `A = value → class`; `None` for an empty cell.
    pub fn confidence(&self, value: ValueId, class: ValueId) -> Option<f64> {
        let denom = self.value_totals[value as usize];
        if denom == 0 {
            return None;
        }
        Some(self.counts[value as usize][class as usize] as f64 / denom as f64)
    }

    /// Confidences of one class across all values (empty cells → 0, as the
    /// paper's visualization draws them).
    pub fn class_confidences(&self, class: ValueId) -> Vec<f64> {
        (0..self.n_values())
            .map(|v| self.confidence(v as ValueId, class).unwrap_or(0.0))
            .collect()
    }

    /// Support of `A = value → class` relative to all records.
    pub fn support(&self, value: ValueId, class: ValueId) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[value as usize][class as usize] as f64 / self.total as f64
    }

    /// Data distribution across values (the bars above each Fig. 5 column).
    pub fn value_distribution(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.n_values()];
        }
        self.value_totals
            .iter()
            .map(|&t| t as f64 / self.total as f64)
            .collect()
    }

    /// Maximum confidence per class across values (input to class scaling).
    pub fn max_confidences(&self) -> Vec<f64> {
        (0..self.n_classes())
            .map(|c| {
                self.class_confidences(c as ValueId)
                    .into_iter()
                    .fold(0.0, f64::max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeDim;

    fn view() -> CubeView {
        let dim = CubeDim {
            attr_index: 0,
            name: "Time".into(),
            labels: vec!["am".into(), "pm".into(), "eve".into()],
        };
        let mut cube = RuleCube::new(vec![dim], vec!["ok".into(), "drop".into()]);
        cube.add(&[0], 0, 90).unwrap();
        cube.add(&[0], 1, 10).unwrap();
        cube.add(&[1], 0, 195).unwrap();
        cube.add(&[1], 1, 5).unwrap();
        // "eve" left completely empty.
        CubeView::from_cube(&cube).unwrap()
    }

    #[test]
    fn counts_and_confidences() {
        let v = view();
        assert_eq!(v.attr_name(), "Time");
        assert_eq!(v.n_values(), 3);
        assert_eq!(v.count(0, 1), 10);
        assert_eq!(v.value_total(1), 200);
        assert_eq!(v.confidence(0, 1), Some(0.10));
        assert_eq!(v.confidence(1, 1), Some(0.025));
        assert_eq!(v.confidence(2, 1), None, "empty cell has no confidence");
        assert_eq!(v.class_confidences(1), vec![0.10, 0.025, 0.0]);
    }

    #[test]
    fn supports_and_distribution() {
        let v = view();
        assert!((v.support(0, 1) - 10.0 / 300.0).abs() < 1e-12);
        let dist = v.value_distribution();
        assert!((dist[0] - 100.0 / 300.0).abs() < 1e-12);
        assert!((dist[1] - 200.0 / 300.0).abs() < 1e-12);
        assert_eq!(dist[2], 0.0);
    }

    #[test]
    fn max_confidences_per_class() {
        let v = view();
        let m = v.max_confidences();
        assert!((m[0] - 0.975).abs() < 1e-12);
        assert!((m[1] - 0.10).abs() < 1e-12);
    }

    #[test]
    fn rejects_wrong_dimensionality() {
        let mut cube = RuleCube::new(vec![], vec!["a".into()]);
        cube.add(&[], 0, 1).unwrap();
        assert!(CubeView::from_cube(&cube).is_err());
    }

    #[test]
    fn empty_view_is_all_zero() {
        let dim = CubeDim {
            attr_index: 0,
            name: "X".into(),
            labels: vec!["a".into()],
        };
        let cube = RuleCube::new(vec![dim], vec!["c".into()]);
        let v = CubeView::from_cube(&cube).unwrap();
        assert_eq!(v.total(), 0);
        assert_eq!(v.support(0, 0), 0.0);
        assert_eq!(v.value_distribution(), vec![0.0]);
    }
}
