//! Property-based robustness tests for the persistence codecs: whatever
//! bytes arrive — random garbage, truncations of real artifacts, single
//! bit flips — the decoders must return a typed error, never panic, and
//! V2 framing must catch every corruption of a valid blob.

use bytes::Bytes;
use om_cube::persist::{
    decode_cube, decode_store, encode_cube, encode_cube_v1, encode_store,
};
use om_cube::{build_cube, CubeStore, RuleCube, StoreBuildOptions};
use om_data::{Cell, DatasetBuilder};
use proptest::prelude::*;

fn small_cube() -> RuleCube {
    let mut b = DatasetBuilder::new()
        .categorical("A")
        .categorical("B")
        .class("C");
    for i in 0..40u32 {
        let a = if i % 2 == 0 { "a0" } else { "a1" };
        let bb = match i % 3 {
            0 => "b0",
            1 => "b1",
            _ => "b2",
        };
        let c = if i % 5 == 0 { "y" } else { "n" };
        b.push_row(&[Cell::Str(a), Cell::Str(bb), Cell::Str(c)]).unwrap();
    }
    let ds = b.finish().unwrap();
    build_cube(&ds, &[0, 1]).unwrap()
}

fn small_store() -> CubeStore {
    let mut b = DatasetBuilder::new()
        .categorical("A")
        .categorical("B")
        .class("C");
    for i in 0..40u32 {
        let a = if i % 2 == 0 { "a0" } else { "a1" };
        let bb = if i % 3 == 0 { "b0" } else { "b1" };
        let c = if i % 5 == 0 { "y" } else { "n" };
        b.push_row(&[Cell::Str(a), Cell::Str(bb), Cell::Str(c)]).unwrap();
    }
    let ds = b.finish().unwrap();
    CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap()
}

proptest! {
    /// Fully arbitrary bytes: both decoders must answer with `Err`, not
    /// a panic or an abort, no matter what arrives off the wire.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(raw in proptest::collection::vec(0u8..=255, 0usize..512)) {
        let _ = decode_cube(Bytes::from(raw.clone()));
        let _ = decode_store(Bytes::from(raw));
    }

    /// Arbitrary bytes behind a valid magic+version prefix exercise the
    /// body parsers rather than bouncing off the magic check.
    #[test]
    fn garbage_behind_valid_prefixes_never_panics(
        body in proptest::collection::vec(0u8..=255, 0usize..256),
        version in 1u8..=2,
    ) {
        let mut cube_blob = b"OMC1".to_vec();
        cube_blob.push(version);
        cube_blob.extend_from_slice(&body);
        let _ = decode_cube(Bytes::from(cube_blob));

        let mut store_blob = b"OMS1".to_vec();
        store_blob.push(version);
        store_blob.extend_from_slice(&body);
        let _ = decode_store(Bytes::from(store_blob));
    }

    /// Every proper prefix of a real V2 artifact is rejected cleanly.
    #[test]
    fn truncations_of_real_artifacts_error(cut in 0usize..1000) {
        let blob = encode_cube(&small_cube()).unwrap();
        let cube_cut = cut % blob.len();
        prop_assert!(decode_cube(blob.slice(0..cube_cut)).is_err());

        let store_blob = encode_store(&small_store()).unwrap();
        let store_cut = cut % store_blob.len();
        prop_assert!(decode_store(store_blob.slice(0..store_cut)).is_err());
    }

    /// Any single bit flip anywhere in a V2 cube blob is detected.
    #[test]
    fn v2_bit_flips_are_always_detected(pos in 0usize..4096, bit in 0u8..8) {
        let blob = encode_cube(&small_cube()).unwrap();
        let mut bytes = blob.to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            decode_cube(Bytes::from(bytes)).is_err(),
            "flip of bit {bit} at byte {pos} went undetected"
        );
    }

    /// Legacy V1 blobs (no checksum) keep decoding, and truncating them
    /// still errors instead of panicking.
    #[test]
    fn v1_blobs_decode_and_truncate_cleanly(cut in 0usize..1000) {
        let cube = small_cube();
        let blob = encode_cube_v1(&cube).unwrap();
        prop_assert_eq!(decode_cube(blob.clone()).unwrap(), cube);
        let cut = cut % blob.len();
        prop_assert!(decode_cube(blob.slice(0..cut)).is_err());
    }
}
