//! Concurrent-read correctness: om-server slices and queries cubes from
//! a worker pool, so 8 threads hammering one cube (and one store) must
//! see exactly what a serial reader sees.

use std::sync::Arc;

use om_cube::{CubeStore, CubeView, StoreBuildOptions};
use om_synth::paper_scenario;

#[test]
fn eight_threads_slice_one_cube_identically_to_serial() {
    let (ds, _) = paper_scenario(30_000, 77);
    let store = CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap();
    let attr = store.attrs()[0];
    let cube = store.one_dim(attr).unwrap();

    // Serial baseline: the full materialized view plus a rule listing.
    let serial_view = CubeView::from_cube(&cube).unwrap();
    let serial_rules = om_cube::top_k_by_confidence(&cube, 0, 5, 1).unwrap();

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let cube = Arc::clone(&cube);
            let serial_view = serial_view.clone();
            let serial_rules = serial_rules.clone();
            std::thread::spawn(move || {
                for round in 0..50 {
                    // Alternate the two read paths so different threads
                    // interleave differently every round.
                    if (t + round) % 2 == 0 {
                        let view = CubeView::from_cube(&cube).unwrap();
                        assert_eq!(view, serial_view);
                    } else {
                        let rules = om_cube::top_k_by_confidence(&cube, 0, 5, 1).unwrap();
                        assert_eq!(rules, serial_rules);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn eight_threads_query_the_store_identically_to_serial() {
    let (ds, _) = paper_scenario(30_000, 78);
    let store = Arc::new(CubeStore::build(&ds, &StoreBuildOptions::default()).unwrap());
    let attrs = store.attrs().to_vec();

    // Serial baselines: every 1-D total and one pair cube's total.
    let serial_totals: Vec<u64> = attrs
        .iter()
        .map(|&a| store.one_dim(a).unwrap().total())
        .collect();
    let pair_total = store.pair(attrs[0], attrs[1]).unwrap().total();

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let store = Arc::clone(&store);
            let attrs = attrs.clone();
            let serial_totals = serial_totals.clone();
            std::thread::spawn(move || {
                for round in 0..25 {
                    let i = (t + round) % attrs.len();
                    let cube = store.one_dim(attrs[i]).unwrap();
                    assert_eq!(cube.total(), serial_totals[i]);
                    assert_eq!(
                        store.pair(attrs[0], attrs[1]).unwrap().total(),
                        pair_total
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
