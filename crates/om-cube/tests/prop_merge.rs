//! Property tests for cube algebra: merge must be exactly additive,
//! commutative and associative, and must equal building from concatenated
//! data.

use om_cube::merge::merge_cubes;
use om_cube::{build_cube, CubeStore, RuleCube, StoreBuildOptions};
use om_data::{Attribute, Cell, Column, Dataset, DatasetBuilder, Domain, Schema};
use proptest::prelude::*;

fn dataset_from(rows: &[(u8, u8, u8)]) -> Dataset {
    let mut b = DatasetBuilder::new()
        .categorical("A")
        .categorical("B")
        .class("C");
    let al = ["a0", "a1", "a2"];
    let bl = ["b0", "b1"];
    let cl = ["c0", "c1"];
    // Intern every label up front so all batches share identical domains.
    b.push_row(&[Cell::Str("a0"), Cell::Str("b0"), Cell::Str("c0")]).unwrap();
    b.push_row(&[Cell::Str("a1"), Cell::Str("b1"), Cell::Str("c1")]).unwrap();
    b.push_row(&[Cell::Str("a2"), Cell::Str("b0"), Cell::Str("c0")]).unwrap();
    for &(a, bb, c) in rows {
        b.push_row(&[
            Cell::Str(al[a as usize % 3]),
            Cell::Str(bl[bb as usize % 2]),
            Cell::Str(cl[c as usize % 2]),
        ])
        .unwrap();
    }
    b.finish().unwrap()
}

fn cube_of(rows: &[(u8, u8, u8)]) -> RuleCube {
    build_cube(&dataset_from(rows), &[0, 1]).unwrap()
}

/// Fixed-domain dataset (no seed rows): every batch shares identical
/// domains however its rows are distributed, so arbitrary partitions can
/// be compared without compensation.
fn dataset_fixed(rows: &[(u8, u8, u8)]) -> Dataset {
    let schema = Schema::new(
        vec![
            Attribute::categorical("A", Domain::from_labels(["a0", "a1", "a2"])),
            Attribute::categorical("B", Domain::from_labels(["b0", "b1"])),
            Attribute::categorical("C", Domain::from_labels(["c0", "c1"])),
        ],
        2,
    )
    .unwrap();
    Dataset::from_columns(
        schema,
        vec![
            Column::Categorical(rows.iter().map(|r| u32::from(r.0 % 3)).collect()),
            Column::Categorical(rows.iter().map(|r| u32::from(r.1 % 2)).collect()),
            Column::Categorical(rows.iter().map(|r| u32::from(r.2 % 2)).collect()),
        ],
    )
    .unwrap()
}

proptest! {
    #[test]
    fn merge_equals_concatenated_build(
        x in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 0..60),
        y in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 0..60)
    ) {
        let cx = cube_of(&x);
        let cy = cube_of(&y);
        let merged = merge_cubes(&cx, &cy).unwrap();
        let mut both = x.clone();
        both.extend_from_slice(&y);
        // Concatenated data carries the 3 seed rows twice — add the seed
        // cube once to compensate.
        let concatenated = cube_of(&both);
        let seeded = merge_cubes(&concatenated, &cube_of(&[])).unwrap();
        prop_assert_eq!(merged, seeded);
    }

    #[test]
    fn merge_commutes(
        x in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 0..40),
        y in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 0..40)
    ) {
        let cx = cube_of(&x);
        let cy = cube_of(&y);
        prop_assert_eq!(
            merge_cubes(&cx, &cy).unwrap(),
            merge_cubes(&cy, &cx).unwrap()
        );
    }

    #[test]
    fn merge_associates(
        x in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 0..30),
        y in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 0..30),
        z in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 0..30)
    ) {
        let (cx, cy, cz) = (cube_of(&x), cube_of(&y), cube_of(&z));
        let left = merge_cubes(&merge_cubes(&cx, &cy).unwrap(), &cz).unwrap();
        let right = merge_cubes(&cx, &merge_cubes(&cy, &cz).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_totals_add(
        x in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 0..50),
        y in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 0..50)
    ) {
        let cx = cube_of(&x);
        let cy = cube_of(&y);
        let merged = merge_cubes(&cx, &cy).unwrap();
        prop_assert_eq!(merged.total(), cx.total() + cy.total());
        prop_assert_eq!(
            merged.class_margin(),
            cx.class_margin()
                .iter()
                .zip(cy.class_margin())
                .map(|(a, b)| a + b)
                .collect::<Vec<_>>()
        );
    }

    /// In-place accumulation is the same function as the pure merge.
    #[test]
    fn merge_into_equals_pure_merge(
        x in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 0..40),
        y in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 0..40)
    ) {
        let cx = cube_of(&x);
        let cy = cube_of(&y);
        let pure = merge_cubes(&cx, &cy).unwrap();
        let mut acc = cx;
        acc.merge_into(&cy).unwrap();
        prop_assert_eq!(acc, pure);
    }

    /// The whole-store invariant live ingestion rests on: a store built
    /// over all records equals the per-part stores of ANY partition,
    /// folded together with `merge_from` in ANY order.
    #[test]
    fn store_over_any_random_partition_merges_to_the_whole(
        rows in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 1..80),
        assignment in proptest::collection::vec(0usize..4, 80),
        reversed in 0u8..2
    ) {
        let opts = StoreBuildOptions::default();
        let whole = CubeStore::build(&dataset_fixed(&rows), &opts).unwrap();

        let mut parts: [Vec<(u8, u8, u8)>; 4] = Default::default();
        for (row, part) in rows.iter().zip(&assignment) {
            parts[*part].push(*row);
        }
        let mut stores: Vec<CubeStore> = parts
            .iter()
            .map(|p| CubeStore::build(&dataset_fixed(p), &opts).unwrap())
            .collect();
        if reversed == 1 {
            stores.reverse();
        }
        let mut acc = stores.remove(0);
        for part in &stores {
            acc.merge_from(part).unwrap();
        }

        prop_assert_eq!(acc.total_records(), whole.total_records());
        prop_assert_eq!(acc.class_counts(), whole.class_counts());
        for &a in whole.attrs() {
            prop_assert_eq!(&*acc.one_dim(a).unwrap(), &*whole.one_dim(a).unwrap());
        }
        for (i, &a) in whole.attrs().iter().enumerate() {
            for &b in &whole.attrs()[i + 1..] {
                prop_assert_eq!(&*acc.pair(a, b).unwrap(), &*whole.pair(a, b).unwrap());
            }
        }
    }
}
