//! Property-based tests: rule cubes must agree with direct counting over
//! the data, and OLAP operations must preserve mass.

use om_cube::olap::{dice, rollup, slice};
use om_cube::{build_cube, CubeStore, StoreBuildOptions};
use om_data::{Cell, Dataset, DatasetBuilder};
use proptest::prelude::*;

/// A random 3-attribute categorical dataset.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0u8..3, 0u8..4, 0u8..2, 0u8..3), 1..120).prop_map(|rows| {
        let mut b = DatasetBuilder::new()
            .categorical("A")
            .categorical("B")
            .categorical("D")
            .class("C");
        let al = ["a0", "a1", "a2"];
        let bl = ["b0", "b1", "b2", "b3"];
        let dl = ["d0", "d1"];
        let cl = ["c0", "c1", "c2"];
        for (a, bb, d, c) in rows {
            b.push_row(&[
                Cell::Str(al[a as usize]),
                Cell::Str(bl[bb as usize]),
                Cell::Str(dl[d as usize]),
                Cell::Str(cl[c as usize]),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    })
}

proptest! {
    #[test]
    fn cube_counts_equal_direct_counts(ds in arb_dataset()) {
        let cube = build_cube(&ds, &[0, 1]).unwrap();
        let a = ds.column(0).as_categorical().unwrap();
        let b = ds.column(1).as_categorical().unwrap();
        let c = ds.class_values();
        for (coords, class, count) in cube.iter_cells() {
            let manual = (0..ds.n_rows())
                .filter(|&r| a[r] == coords[0] && b[r] == coords[1] && c[r] == class)
                .count() as u64;
            prop_assert_eq!(count, manual);
        }
        prop_assert_eq!(cube.total(), ds.n_rows() as u64);
    }

    #[test]
    fn rollup_preserves_mass_and_matches_lower_cube(ds in arb_dataset()) {
        let big = build_cube(&ds, &[0, 1]).unwrap();
        let rolled = rollup(&big, 0).unwrap();
        let direct = build_cube(&ds, &[1]).unwrap();
        prop_assert_eq!(&rolled, &direct);
        prop_assert_eq!(rolled.total(), big.total());
    }

    #[test]
    fn slices_partition_the_cube(ds in arb_dataset()) {
        let cube = build_cube(&ds, &[0, 1]).unwrap();
        let card = cube.dims()[0].cardinality();
        let mut total = 0u64;
        for v in 0..card as u32 {
            total += slice(&cube, 0, v).unwrap().total();
        }
        prop_assert_eq!(total, cube.total());
    }

    #[test]
    fn dice_full_selection_is_identity_up_to_order(ds in arb_dataset()) {
        let cube = build_cube(&ds, &[0, 1]).unwrap();
        let card = cube.dims()[1].cardinality() as u32;
        let all: Vec<u32> = (0..card).collect();
        let diced = dice(&cube, 1, &all).unwrap();
        prop_assert_eq!(diced, cube);
    }

    #[test]
    fn confidences_sum_to_one_on_nonempty_cells(ds in arb_dataset()) {
        let cube = build_cube(&ds, &[0]).unwrap();
        for v in 0..cube.dims()[0].cardinality() as u32 {
            if cube.cell_total(&[v]).unwrap() == 0 { continue; }
            let s: f64 = (0..cube.n_classes() as u32)
                .map(|c| cube.confidence(&[v], c).unwrap().unwrap())
                .sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn store_pair_consistent_with_one_dim(ds in arb_dataset()) {
        let store = CubeStore::build(&ds, &StoreBuildOptions { n_threads: 2, ..Default::default() }).unwrap();
        let pair = store.pair(0, 2).unwrap();
        // Roll up the dim whose attr_index is 2 → must equal one_dim(0).
        let drop_dim = pair.dims().iter().position(|d| d.attr_index == 2).unwrap();
        let rolled = rollup(&pair, drop_dim).unwrap();
        prop_assert_eq!(rolled, (*store.one_dim(0).unwrap()).clone());
    }

    #[test]
    fn persist_round_trip(ds in arb_dataset()) {
        let cube = build_cube(&ds, &[0, 2]).unwrap();
        let back = om_cube::persist::decode_cube(om_cube::persist::encode_cube(&cube).unwrap()).unwrap();
        prop_assert_eq!(back, cube);
    }
}
