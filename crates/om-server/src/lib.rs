//! om-server: a concurrent HTTP/1.1 query daemon over a resident
//! Opportunity Map engine.
//!
//! The paper's workflow is offline: build rule cubes once, then answer
//! many cheap comparisons interactively. This crate makes the second
//! half a service: the engine (with its cube store) is built once, held
//! behind an [`Arc`], and a pool of worker threads answers read-only
//! queries over plain HTTP — no external dependencies, just
//! `std::net::TcpListener` plus the workspace's `crossbeam` channel and
//! `parking_lot` locks.
//!
//! Architecture:
//!
//! ```text
//! accept thread ── crossbeam::channel ──▶ worker 0..n
//!                                         │  parse → cache? → router
//!                                         ▼
//!                                 Arc<OpportunityMap> (read-only)
//! ```
//!
//! Shutdown is cooperative: a flag flips, a self-connection wakes the
//! accept loop, the channel disconnects, and every worker finishes the
//! request it holds before exiting — in-flight requests always drain.

// Request-path crate: panics here become 500s or worker deaths, so
// unwrap/expect are lint-visible outside unit tests (om-lint's
// panic-path check enforces the same rule with suppression reasons).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod http;
mod internal;
pub mod metrics;
pub mod ops;
pub mod router;
pub mod v1;

use std::io::{self, Read as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::TrySendError;
use om_engine::{IngestHandle, OpportunityMap};
use om_fault::{fail, Budget, CancelToken};

use crate::cache::ResponseCache;
use crate::http::{ParseError, Response};
use crate::internal::StoreWireCache;
use crate::metrics::{Endpoint, Metrics};
use crate::ops::EngineOps;
use crate::router::RouteOptions;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads answering requests.
    pub n_workers: usize,
    /// Maximum cached responses (0 disables the cache).
    pub cache_capacity: usize,
    /// Per-request socket read timeout; a stalled request gets `408`.
    pub request_timeout: Duration,
    /// Admission queue depth: connections beyond what the workers hold
    /// plus this many waiting are shed with an immediate `503`.
    pub queue_capacity: usize,
    /// Per-request engine budget; `None` disables deadlines. A request
    /// that exhausts it gets `503` with `Retry-After`.
    pub engine_budget: Option<Duration>,
    /// `Retry-After` seconds on overload (`503`) responses.
    pub retry_after_secs: u64,
    /// Upper bound on a request body (`POST /ingest` uploads); larger
    /// uploads get `400` before a single body byte is read.
    pub max_body_bytes: usize,
    /// Log one line per request to stderr.
    pub verbose: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            n_workers: 4,
            cache_capacity: 256,
            request_timeout: Duration::from_secs(5),
            queue_capacity: 64,
            engine_budget: Some(Duration::from_secs(2)),
            retry_after_secs: 1,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            verbose: false,
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`Server::shutdown`].
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Metrics>,
}

/// What the workers answer queries from: a resident engine (the
/// single-node server and every cluster shard) or a custom [`EngineOps`]
/// backend (the om-cluster coordinator).
enum Backend {
    Engine {
        om: Arc<OpportunityMap>,
        /// `Some` when live ingestion is enabled; `POST /ingest` appends
        /// through it and `/metrics` includes its counters.
        ingest: Option<IngestHandle>,
        /// Encoded-store body for `/internal/store`, cached per generation.
        store_wire: StoreWireCache,
    },
    /// Health, metrics and `/v1` only: no response cache (the backend
    /// owns its own generation-keyed caching), no legacy GET endpoints,
    /// no `/internal/*`.
    Custom(Arc<dyn EngineOps>),
}

/// Everything a worker needs, shared across the pool.
struct Shared {
    backend: Backend,
    cache: ResponseCache,
    metrics: Arc<Metrics>,
    request_timeout: Duration,
    engine_budget: Option<Duration>,
    retry_after_secs: u64,
    max_body_bytes: usize,
    verbose: bool,
}

impl Server {
    /// Bind, spawn the accept loop and `n_workers` workers, and return
    /// immediately.
    ///
    /// # Errors
    /// Fails if the address cannot be bound or a thread cannot be spawned.
    pub fn start(om: Arc<OpportunityMap>, config: ServerConfig) -> io::Result<Self> {
        Self::start_with_ingest(om, config, None)
    }

    /// [`start`](Self::start) with live ingestion enabled: `POST /ingest`
    /// appends through `ingest`, and `/metrics` includes its counters.
    ///
    /// # Errors
    /// Fails if the address cannot be bound or a thread cannot be spawned.
    pub fn start_with_ingest(
        om: Arc<OpportunityMap>,
        config: ServerConfig,
        ingest: Option<IngestHandle>,
    ) -> io::Result<Self> {
        Self::start_backend(
            Backend::Engine {
                om,
                ingest,
                store_wire: StoreWireCache::default(),
            },
            config,
        )
    }

    /// Serve a custom [`EngineOps`] backend — the om-cluster
    /// coordinator's entry point. Only `/healthz`, `/metrics` and the
    /// typed `/v1` API are routed; the legacy GET endpoints and
    /// `/internal/*` answer `404`, and the response cache is disabled
    /// (a distributed backend owns its own generation-keyed caching).
    ///
    /// # Errors
    /// Fails if the address cannot be bound or a thread cannot be spawned.
    pub fn start_custom(ops: Arc<dyn EngineOps>, config: ServerConfig) -> io::Result<Self> {
        Self::start_backend(Backend::Custom(ops), config)
    }

    fn start_backend(backend: Backend, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        // Bounded admission queue: connections beyond its capacity are
        // shed with an immediate `503` instead of piling up unboundedly
        // behind slow engine work.
        let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(config.queue_capacity.max(1));

        let shared = Arc::new(Shared {
            backend,
            cache: ResponseCache::new(config.cache_capacity),
            metrics: Arc::new(Metrics::default()),
            request_timeout: config.request_timeout,
            engine_budget: config.engine_budget,
            retry_after_secs: config.retry_after_secs,
            max_body_bytes: config.max_body_bytes,
            verbose: config.verbose,
        });
        let metrics = Arc::clone(&shared.metrics);

        let workers = (0..config.n_workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("om-server-worker-{i}"))
                    .spawn(move || {
                        // Drains the channel, then exits when every
                        // sender is gone — the graceful-shutdown drain.
                        while let Ok(stream) = rx.recv() {
                            shared.metrics.queue_leave();
                            handle_connection(stream, &shared);
                        }
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_metrics = Arc::clone(&shared.metrics);
        let retry_after_secs = config.retry_after_secs;
        let accept_handle = std::thread::Builder::new()
            .name("om-server-accept".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(s) = stream else { continue };
                    // Count the entry before sending so a worker's
                    // matching `queue_leave` can never race ahead of it.
                    accept_metrics.queue_enter();
                    match tx.try_send(s) {
                        Ok(()) => {}
                        Err(TrySendError::Full(s)) => {
                            accept_metrics.queue_leave();
                            accept_metrics.record_shed();
                            shed(s, retry_after_secs);
                        }
                        // All workers are gone; nothing left to serve.
                        Err(TrySendError::Disconnected(_)) => {
                            accept_metrics.queue_leave();
                            break;
                        }
                    }
                }
                // `tx` drops here; workers drain and exit.
            })?;

        Ok(Self {
            local_addr,
            shutdown,
            accept_handle: Some(accept_handle),
            workers,
            metrics,
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's live counters.
    #[must_use]
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Stop accepting, drain in-flight requests, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag even with no
        // traffic; the throwaway connection is dropped unanswered.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Reject a connection at admission: answer `503` without reading the
/// request, then drain briefly so the peer gets to read the response
/// before the socket closes (an unread send buffer would RST it away).
fn shed(mut stream: TcpStream, retry_after_secs: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let response = Response::error(503, "server overloaded: admission queue full")
        .with_retry_after(retry_after_secs);
    if response.write_to(&mut stream).is_err() {
        return;
    }
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 16 * 1024 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Serve one connection: parse, consult the cache, route, respond.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(shared.request_timeout));
    let _ = stream.set_nodelay(true);

    // Route-aware body admission: a target nothing serves only ever
    // earns a 404, so its upload allowance is capped at the stock
    // 1 MiB `/v1/ingest` bound even when the server's own allowance was
    // raised for bulk ingest — a misaddressed client can't hold a
    // worker by streaming a body the handler will never read.
    let parsed = http::parse_request_routed(&stream, shared.max_body_bytes, |path| {
        Endpoint::classify(path) != Endpoint::Other || path.starts_with("/internal/")
    });
    let (endpoint, response) = match &parsed {
        Ok((req, _)) => {
            let endpoint = Endpoint::classify(&req.path);
            // A panicking handler must not take the worker thread (and
            // with it a slot of the pool) down; the engine is read-only,
            // so no shared state can be left torn mid-update.
            let outcome = catch_unwind(AssertUnwindSafe(|| respond(req, endpoint, shared)));
            let response = outcome.unwrap_or_else(|_| {
                shared.metrics.record_panic_caught();
                Response::error(500, "internal error: request handler panicked")
            });
            (endpoint, response)
        }
        // A connect-and-close probe (including the shutdown wakeup):
        // nothing to answer, nothing to count.
        Err(ParseError::Empty) => return,
        Err(ParseError::TimedOut) => (
            Endpoint::Other,
            Response::error(408, "timed out reading request"),
        ),
        Err(ParseError::Malformed(why)) => (Endpoint::Other, Response::error(400, why)),
        Err(ParseError::Io(_)) => return,
    };

    shared.metrics.record_request(endpoint);
    if response.status >= 400 {
        shared.metrics.record_error();
    }
    let mut out = stream;
    let _ = response.write_to(&mut out);
    if matches!(parsed, Err(ParseError::Malformed(_)))
        || matches!(parsed, Ok((_, http::BodyRead::Skipped { .. })))
    {
        // The peer may still be mid-send (e.g. an oversized request
        // line, or a skipped unroutable upload). Closing now would RST
        // the connection before the client reads the 400/404, so drain
        // what it has queued, bounded by the read timeout and a byte
        // cap.
        let mut sink = [0u8; 4096];
        let mut drained = 0usize;
        while drained < 256 * 1024 {
            match out.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
    }
    let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.metrics.record_latency_us(elapsed_us);
    if shared.verbose {
        let target = parsed
            .as_ref()
            .map(|(r, _)| r.canonical_key())
            .unwrap_or_else(|e| format!("<{e}>"));
        eprintln!(
            "om-server: {} {} {}us",
            response.status, target, elapsed_us
        );
    }
}

/// Compute or recall the response for a well-formed request.
fn respond(req: &http::Request, endpoint: Endpoint, shared: &Shared) -> Response {
    // Chaos seam: a configured failpoint here injects an error (-> 500)
    // or a panic (caught by the worker's isolation barrier) before any
    // real work happens. Compiles to nothing without `failpoints`.
    if let Err(e) = fail::inject("server.respond") {
        return Response::error(500, &e.to_string());
    }
    let opts = RouteOptions {
        budget: Budget::with_token(shared.engine_budget, CancelToken::new()),
        retry_after_secs: shared.retry_after_secs,
        metrics: Some(Arc::clone(&shared.metrics)),
    };
    let response = match &shared.backend {
        Backend::Custom(ops) => {
            let metrics_body = || {
                let mut body = shared.metrics.render();
                body.push_str(&ops.extra_metrics());
                body
            };
            router::route_custom(req, ops.as_ref(), &opts, metrics_body)
        }
        Backend::Engine {
            om,
            ingest,
            store_wire,
        } => {
            // The shard-internal cluster protocol bypasses cache and
            // legacy routing entirely.
            if req.path.starts_with("/internal/") {
                return internal::route_internal(req, om, ingest.as_ref(), store_wire);
            }
            let metrics_body = || {
                let mut body = shared.metrics.render();
                if let Some(handle) = ingest {
                    body.push_str(&handle.render_metrics());
                }
                body
            };
            // Only the engine-backed query endpoints cache: /healthz and
            // /metrics are live signals, ingestion is a write, and
            // unroutable paths are cheap 404s.
            let cacheable = req.method == "GET"
                && matches!(
                    endpoint,
                    Endpoint::Compare | Endpoint::Drill | Endpoint::Gi | Endpoint::CubeSlice
                );
            if !cacheable {
                router::route(req, om, ingest.as_ref(), &opts, metrics_body)
            } else {
                // With live ingestion the store advances under the cache,
                // so the generation joins the key: entries computed
                // against superseded generations stop matching and age
                // out of the LRU.
                let generation = ingest.is_some().then(|| om.store_generation());
                let key = match generation {
                    Some(g) => format!("g{g}:{}", req.canonical_key()),
                    None => req.canonical_key(),
                };
                if let Some(hit) = shared.cache.get(&key) {
                    shared.metrics.record_cache_hit();
                    return (*hit).clone();
                }
                shared.metrics.record_cache_miss();
                let response = router::route(req, om, ingest.as_ref(), &opts, metrics_body);
                // The handlers pin their own snapshot, so a publish
                // between the key read and the route can hand back a body
                // computed against a newer generation. Generations are
                // monotonic, so if the current generation still matches
                // the key's, the body provably came from that generation;
                // otherwise skip the insert rather than cache a
                // mislabeled entry.
                let key_still_current =
                    generation.is_none_or(|g| om.store_generation() == g);
                if response.status == 200 && key_still_current {
                    shared.cache.insert(key, Arc::new(response.clone()));
                }
                response
            }
        }
    };
    if response.status == 503 {
        // Shed connections never reach here, so this counts exactly the
        // requests whose engine budget ran out.
        shared.metrics.record_deadline_exceeded();
    }
    response
}
