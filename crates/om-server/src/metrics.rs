//! Lock-free server counters and a fixed-bucket latency histogram.
//!
//! Everything is a relaxed `AtomicU64`: workers record without
//! coordination and `/metrics` renders a consistent-enough snapshot.
//! Percentiles are interpolated within fixed microsecond buckets, which
//! bounds memory at a few hundred bytes regardless of request volume.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// The endpoints the daemon serves, used as metric labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Healthz,
    Metrics,
    Compare,
    Drill,
    Gi,
    CubeSlice,
    Ingest,
    /// `/v1/compare/batch`.
    Batch,
    /// `/v1/explore`.
    Explore,
    /// Anything else (404s and parse failures).
    Other,
}

impl Endpoint {
    /// All endpoints in render order.
    pub const ALL: [Endpoint; 10] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Compare,
        Endpoint::Drill,
        Endpoint::Gi,
        Endpoint::CubeSlice,
        Endpoint::Ingest,
        Endpoint::Batch,
        Endpoint::Explore,
        Endpoint::Other,
    ];

    /// Classify a decoded request path. The `/v1` routes share their
    /// legacy twin's label — same engine work, same series.
    #[must_use]
    pub fn classify(path: &str) -> Self {
        match path {
            "/healthz" => Endpoint::Healthz,
            "/metrics" => Endpoint::Metrics,
            "/compare" | "/v1/compare" => Endpoint::Compare,
            "/drill" | "/v1/drill" => Endpoint::Drill,
            "/gi" | "/v1/gi" => Endpoint::Gi,
            "/cube/slice" | "/v1/cube/slice" => Endpoint::CubeSlice,
            "/ingest" | "/v1/ingest" => Endpoint::Ingest,
            "/v1/compare/batch" => Endpoint::Batch,
            "/v1/explore" => Endpoint::Explore,
            _ => Endpoint::Other,
        }
    }

    /// The metric label of this endpoint.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Compare => "compare",
            Endpoint::Drill => "drill",
            Endpoint::Gi => "gi",
            Endpoint::CubeSlice => "cube_slice",
            Endpoint::Ingest => "ingest",
            Endpoint::Batch => "compare_batch",
            Endpoint::Explore => "explore",
            Endpoint::Other => "other",
        }
    }
}

/// Upper bounds (µs) of the latency buckets; the last bucket is +inf.
const BUCKET_BOUNDS_US: [u64; 14] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// Fixed-bucket latency histogram with interpolated percentiles.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Record one latency observation.
    pub fn record_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        // om-lint: allow(panic-path) — idx ≤ BOUNDS.len(); buckets has len+1 slots
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0 < q < 1`) in µs, linearly interpolated within
    /// its bucket; `None` with no observations.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if cumulative + in_bucket >= target {
                // om-lint: allow(panic-path) — idx > 0 on this arm, idx ≤ BOUNDS.len()
                let lo = if idx == 0 { 0 } else { BUCKET_BOUNDS_US[idx - 1] };
                let hi = BUCKET_BOUNDS_US.get(idx).copied().unwrap_or(lo * 2);
                // Position of the target rank within this bucket.
                let frac = if in_bucket == 0 {
                    0.0
                } else {
                    (target - cumulative) as f64 / in_bucket as f64
                };
                return Some(lo + ((hi - lo) as f64 * frac) as u64);
            }
            cumulative += in_bucket;
        }
        // Unreachable with a consistent count, but racing increments can
        // leave the sum of buckets momentarily behind `count`.
        Some(BUCKET_BOUNDS_US.last().copied().unwrap_or(0))
    }
}

/// All counters of one server instance.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; Endpoint::ALL.len()],
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics_caught: AtomicU64,
    queue_depth: AtomicU64,
    latency: Histogram,
    explore_steps: AtomicU64,
    explore_summaries: AtomicU64,
    explore_budget_exhausted: AtomicU64,
    explore_latency: Histogram,
}

impl Metrics {
    /// Index of `endpoint` in the `requests` array. Exhaustive match:
    /// every variant has a slot by construction, nothing to search or
    /// panic over.
    fn slot(endpoint: Endpoint) -> usize {
        match endpoint {
            Endpoint::Healthz => 0,
            Endpoint::Metrics => 1,
            Endpoint::Compare => 2,
            Endpoint::Drill => 3,
            Endpoint::Gi => 4,
            Endpoint::CubeSlice => 5,
            Endpoint::Ingest => 6,
            Endpoint::Batch => 7,
            Endpoint::Explore => 8,
            Endpoint::Other => 9,
        }
    }

    /// Count one request against its endpoint.
    pub fn record_request(&self, endpoint: Endpoint) {
        // om-lint: allow(panic-path) — slot() < ALL.len() by exhaustive match
        self.requests[Self::slot(endpoint)].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one non-2xx response.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a response served from the LRU cache.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a response computed by the engine.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request's wall-clock latency.
    pub fn record_latency_us(&self, us: u64) {
        self.latency.record_us(us);
    }

    /// Count a connection rejected because the admission queue was full.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request that ran out of its engine budget.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a handler panic caught by the worker's isolation barrier.
    pub fn record_panic_caught(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one finished `/v1/explore` answer: greedy steps executed,
    /// summaries served, whether the budget cut it short, and the
    /// exploration's own wall-clock latency.
    pub fn record_explore(&self, steps: u64, summaries: u64, truncated: bool, us: u64) {
        self.explore_steps.fetch_add(steps, Ordering::Relaxed);
        self.explore_summaries.fetch_add(summaries, Ordering::Relaxed);
        if truncated {
            self.explore_budget_exhausted.fetch_add(1, Ordering::Relaxed);
        }
        self.explore_latency.record_us(us);
    }

    /// Count a `/v1/explore` whose budget expired before any summary
    /// finished (the request answered with an overload envelope).
    pub fn record_explore_exhausted(&self) {
        self.explore_budget_exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection entered the admission queue.
    pub fn queue_enter(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker picked a connection off the admission queue.
    pub fn queue_leave(&self) {
        // Saturating: a racing render between enter/leave only ever sees
        // a depth that momentarily existed, never an underflow.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                d.checked_sub(1)
            });
    }

    /// Requests seen for `endpoint`.
    #[must_use]
    pub fn requests(&self, endpoint: Endpoint) -> u64 {
        // om-lint: allow(panic-path) — slot() < ALL.len() by exhaustive match
        self.requests[Self::slot(endpoint)].load(Ordering::Relaxed)
    }

    /// Total error responses.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Cache hits so far.
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    #[must_use]
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Connections shed at admission so far.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests that exceeded their engine budget so far.
    #[must_use]
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Handler panics caught so far.
    #[must_use]
    pub fn panics_caught(&self) -> u64 {
        self.panics_caught.load(Ordering::Relaxed)
    }

    /// Connections currently waiting in the admission queue.
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Greedy exploration steps executed so far.
    #[must_use]
    pub fn explore_steps(&self) -> u64 {
        self.explore_steps.load(Ordering::Relaxed)
    }

    /// Exploration summaries served so far.
    #[must_use]
    pub fn explore_summaries(&self) -> u64 {
        self.explore_summaries.load(Ordering::Relaxed)
    }

    /// Explorations cut short by their budget so far (truncated answers
    /// and overload rejections both count).
    #[must_use]
    pub fn explore_budget_exhausted(&self) -> u64 {
        self.explore_budget_exhausted.load(Ordering::Relaxed)
    }

    /// The plain-text exposition served at `/metrics`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(512);
        for endpoint in Endpoint::ALL {
            let _ = writeln!(
                out,
                "om_requests_total{{endpoint=\"{}\"}} {}",
                endpoint.label(),
                self.requests(endpoint)
            );
        }
        let _ = writeln!(out, "om_errors_total {}", self.errors());
        let _ = writeln!(out, "om_cache_hits_total {}", self.cache_hits());
        let _ = writeln!(out, "om_cache_misses_total {}", self.cache_misses());
        let _ = writeln!(out, "om_shed_total {}", self.shed());
        let _ = writeln!(
            out,
            "om_deadline_exceeded_total {}",
            self.deadline_exceeded()
        );
        let _ = writeln!(out, "om_panics_caught_total {}", self.panics_caught());
        let _ = writeln!(out, "om_queue_depth {}", self.queue_depth());
        let _ = writeln!(out, "om_latency_samples_total {}", self.latency.count());
        for (name, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
            let _ = writeln!(
                out,
                "om_latency_us{{quantile=\"{name}\"}} {}",
                self.latency.quantile_us(q).unwrap_or(0)
            );
        }
        let _ = writeln!(out, "om_explore_steps_total {}", self.explore_steps());
        let _ = writeln!(
            out,
            "om_explore_summaries_total {}",
            self.explore_summaries()
        );
        let _ = writeln!(
            out,
            "om_explore_budget_exhausted_total {}",
            self.explore_budget_exhausted()
        );
        let _ = writeln!(
            out,
            "om_explore_latency_samples_total {}",
            self.explore_latency.count()
        );
        for (name, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
            let _ = writeln!(
                out,
                "om_explore_latency_us{{quantile=\"{name}\"}} {}",
                self.explore_latency.quantile_us(q).unwrap_or(0)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_classification() {
        assert_eq!(Endpoint::classify("/compare"), Endpoint::Compare);
        assert_eq!(Endpoint::classify("/cube/slice"), Endpoint::CubeSlice);
        assert_eq!(Endpoint::classify("/ingest"), Endpoint::Ingest);
        assert_eq!(Endpoint::classify("/v1/compare"), Endpoint::Compare);
        assert_eq!(Endpoint::classify("/v1/drill"), Endpoint::Drill);
        assert_eq!(Endpoint::classify("/v1/gi"), Endpoint::Gi);
        assert_eq!(Endpoint::classify("/v1/cube/slice"), Endpoint::CubeSlice);
        assert_eq!(Endpoint::classify("/v1/ingest"), Endpoint::Ingest);
        assert_eq!(Endpoint::classify("/v1/compare/batch"), Endpoint::Batch);
        assert_eq!(Endpoint::classify("/v1/explore"), Endpoint::Explore);
        assert_eq!(Endpoint::classify("/nope"), Endpoint::Other);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record_us(80); // bucket (50, 100]
        }
        h.record_us(400_000); // bucket (250k, 500k]
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_us(0.5).unwrap();
        assert!((50..=100).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_us(0.99).unwrap();
        assert!((50..=100).contains(&p99), "p99 = {p99}");
        // The single outlier dominates only beyond rank 99.
        let p995 = h.quantile_us(0.995).unwrap();
        assert!(p995 > 250_000, "p99.5 = {p995}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(Histogram::default().quantile_us(0.5), None);
    }

    #[test]
    fn overflow_bucket_counts() {
        let h = Histogram::default();
        h.record_us(10_000_000);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_us(0.5).unwrap() >= 1_000_000);
    }

    #[test]
    fn render_contains_all_series() {
        let m = Metrics::default();
        m.record_request(Endpoint::Compare);
        m.record_request(Endpoint::Compare);
        m.record_error();
        m.record_cache_hit();
        m.record_cache_miss();
        m.record_latency_us(120);
        let text = m.render();
        assert!(text.contains("om_requests_total{endpoint=\"compare\"} 2"));
        assert!(text.contains("om_requests_total{endpoint=\"drill\"} 0"));
        assert!(text.contains("om_errors_total 1"));
        assert!(text.contains("om_cache_hits_total 1"));
        assert!(text.contains("om_cache_misses_total 1"));
        assert!(text.contains("om_latency_samples_total 1"));
        assert!(text.contains("om_latency_us{quantile=\"0.99\"}"));
    }

    #[test]
    fn overload_counters_render() {
        let m = Metrics::default();
        m.record_shed();
        m.record_shed();
        m.record_deadline_exceeded();
        m.record_panic_caught();
        m.queue_enter();
        m.queue_enter();
        m.queue_leave();
        let text = m.render();
        assert!(text.contains("om_shed_total 2"));
        assert!(text.contains("om_deadline_exceeded_total 1"));
        assert!(text.contains("om_panics_caught_total 1"));
        assert!(text.contains("om_queue_depth 1"));
    }

    #[test]
    fn explore_counters_render() {
        let m = Metrics::default();
        m.record_explore(5, 5, false, 800);
        m.record_explore(2, 2, true, 1_500);
        m.record_explore_exhausted();
        let text = m.render();
        assert!(text.contains("om_explore_steps_total 7"));
        assert!(text.contains("om_explore_summaries_total 7"));
        assert!(text.contains("om_explore_budget_exhausted_total 2"));
        assert!(text.contains("om_explore_latency_samples_total 2"));
        assert!(text.contains("om_explore_latency_us{quantile=\"0.99\"}"));
    }

    #[test]
    fn queue_depth_never_underflows() {
        let m = Metrics::default();
        m.queue_leave();
        assert_eq!(m.queue_depth(), 0);
        m.queue_enter();
        m.queue_leave();
        m.queue_leave();
        assert_eq!(m.queue_depth(), 0);
    }
}
