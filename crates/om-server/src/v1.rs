//! The versioned `/v1` API: typed JSON bodies in, typed JSON bodies out.
//!
//! Every endpoint is `POST`-only, decodes its request through the
//! [`om_api`] request types, runs its backend through the
//! [`EngineOps`] seam — the resident engine on a single node, the
//! om-cluster coordinator in cluster mode — and encodes its response
//! through the [`om_api`] wire types, which reproduce the legacy bodies
//! byte for byte. Failures always answer with the uniform envelope
//! `{"error":{"code","message","retry_after_ms"?,"row"?}}`; the HTTP
//! status is derived from the code.

use om_api::{
    AttrScoreWire, BatchItemRequest, BatchItemResult, BatchRequest, BatchResponse,
    CompareRequest, CompareResponse, DrillLevelWire, DrillRequest, DrillResponse, ErrorCode,
    ErrorEnvelope, ExceptionWire, ExploreCompareWire, ExploreCondWire, ExploreRequest,
    ExploreResponse, ExploreSummaryWire, GiRequest, GiResponse, IngestRequest, IngestResponse,
    InfluenceWire, PairCellWire, PairDimWire, SliceRequest, SliceResponse, SliceValueWire,
    TrendWire, ValueContributionWire,
};
use om_compare::{AttrScore, ComparisonResult, DrillConfig, DrillLevel};
use om_cube::CubeView;
use om_engine::{
    BatchItem, BatchOutcome, CompareNames, EngineError, ExploreQuery, ExploreReport, GiReport,
};
use om_gi::Trend;

use crate::http::{Request, Response};
use crate::ops::EngineOps;
use crate::ops::OpsError;
use crate::router::RouteOptions;

// ---------------------------------------------------------------------
// engine results -> om-api wire types
// ---------------------------------------------------------------------

fn attr_score_wire(s: &AttrScore) -> AttrScoreWire {
    AttrScoreWire {
        attr: s.attr as u64,
        name: s.attr_name.clone(),
        score: s.score,
        normalized: s.normalized,
        property_p: s.property.p as u64,
        property_t: s.property.t as u64,
        property_ratio: s.property.ratio(),
        values: s
            .contributions
            .iter()
            .map(|c| ValueContributionWire {
                value: c.label.clone(),
                n1: c.n1,
                n2: c.n2,
                x1: c.x1,
                x2: c.x2,
                cf1: c.cf1,
                cf2: c.cf2,
                rcf1: c.rcf1,
                rcf2: c.rcf2,
                f: c.f,
                w: c.w,
            })
            .collect(),
    }
}

pub(crate) fn compare_wire(r: &ComparisonResult) -> CompareResponse {
    CompareResponse {
        attribute: r.attr_name.clone(),
        value_1: r.value_1_label.clone(),
        value_2: r.value_2_label.clone(),
        swapped: r.swapped,
        class: r.class_label.clone(),
        cf1: r.cf1,
        cf2: r.cf2,
        n1: r.n1,
        n2: r.n2,
        ranked: r.ranked.iter().map(attr_score_wire).collect(),
        property_attributes: r.property_attrs.iter().map(attr_score_wire).collect(),
        coverage: None,
    }
}

pub(crate) fn drill_wire(levels: &[DrillLevel]) -> DrillResponse {
    DrillResponse {
        levels: levels
            .iter()
            .map(|level| DrillLevelWire {
                conditions: level.condition_labels.clone(),
                result: compare_wire(&level.result),
            })
            .collect(),
    }
}

pub(crate) fn gi_wire(report: &GiReport, top: usize) -> GiResponse {
    GiResponse {
        trends: report
            .trends
            .iter()
            .filter_map(|t| {
                let trend = match t.trend {
                    Trend::Increasing => "increasing",
                    Trend::Decreasing => "decreasing",
                    Trend::Stable => "stable",
                    Trend::None => return None,
                };
                Some(TrendWire {
                    attr: t.attr_name.clone(),
                    class: t.class_label.clone(),
                    trend: trend.to_owned(),
                    slope: t.slope,
                    r_squared: t.r_squared,
                })
            })
            .collect(),
        exceptions: report
            .exceptions
            .iter()
            .take(top)
            .map(|e| ExceptionWire {
                attr: e.attr_name.clone(),
                value: e.value_label.clone(),
                class: e.class_label.clone(),
                kind: match e.kind {
                    om_gi::ExceptionKind::High => "high",
                    om_gi::ExceptionKind::Low => "low",
                }
                .to_owned(),
                confidence: e.confidence,
                rest_confidence: e.rest_confidence,
                z: e.z,
            })
            .collect(),
        influence: report
            .influence
            .iter()
            .take(top)
            .map(|r| InfluenceWire {
                attr: r.attr_name.clone(),
                chi2: r.chi2,
                p_value: r.p_value,
                info_gain: r.info_gain,
            })
            .collect(),
        coverage: None,
    }
}

pub(crate) fn explore_wire(report: &ExploreReport) -> ExploreResponse {
    ExploreResponse {
        universe: report.universe,
        covered: report.covered,
        steps: report.steps,
        truncated: report.truncated,
        classes: report.classes.clone(),
        summaries: report
            .summaries
            .iter()
            .map(|s| ExploreSummaryWire {
                conditions: s
                    .conds
                    .iter()
                    .map(|c| ExploreCondWire {
                        attr: c.attr.clone(),
                        value: c.value.clone(),
                    })
                    .collect(),
                support: s.support,
                coverage: s.coverage,
                confidences: s.confidences.clone(),
                side: s.side.map(u64::from),
                mass: s.mass,
            })
            .collect(),
        compare: report.compare.as_ref().map(|c| ExploreCompareWire {
            attribute: c.attr.clone(),
            value_1: c.value_1.clone(),
            value_2: c.value_2.clone(),
            swapped: c.swapped,
            class: c.class.clone(),
        }),
    }
}

// ---------------------------------------------------------------------
// error mapping
// ---------------------------------------------------------------------

fn bad_request(message: String) -> ErrorEnvelope {
    ErrorEnvelope::new(ErrorCode::BadRequest, message)
}

fn overloaded(message: String, opts: &RouteOptions) -> ErrorEnvelope {
    ErrorEnvelope {
        retry_after_ms: Some(opts.retry_after_secs.saturating_mul(1000)),
        ..ErrorEnvelope::new(ErrorCode::Overloaded, message)
    }
}

/// The `/v1` twin of the legacy status mapping: same classes, expressed
/// as envelope codes instead of bare statuses.
fn engine_envelope(e: &EngineError, opts: &RouteOptions) -> ErrorEnvelope {
    if e.is_overload() {
        return overloaded(e.to_string(), opts);
    }
    let code = match e {
        EngineError::Unknown(_) => ErrorCode::UnknownName,
        EngineError::Fault(_) => ErrorCode::Internal,
        _ => ErrorCode::Invalid,
    };
    ErrorEnvelope::new(code, e.to_string())
}

/// Collapse a backend failure to its envelope: engine errors go
/// through the legacy-equivalent mapping, coordinator envelopes pass
/// through verbatim (they arrive with code and retry hint decided).
fn ops_envelope(e: &OpsError, opts: &RouteOptions) -> ErrorEnvelope {
    match e {
        OpsError::Engine(e) => engine_envelope(e, opts),
        OpsError::Envelope(env) => env.clone(),
    }
}

fn envelope_response(env: &ErrorEnvelope) -> Response {
    let mut response = Response {
        status: env.code.http_status(),
        content_type: "application/json",
        body: env.encode(),
        retry_after: None,
    };
    if let Some(ms) = env.retry_after_ms {
        response.retry_after = Some(ms.div_ceil(1000).max(1));
    }
    response
}

// ---------------------------------------------------------------------
// handlers
// ---------------------------------------------------------------------

fn compare(
    req: &Request,
    ops: &dyn EngineOps,
    opts: &RouteOptions,
) -> Result<Response, ErrorEnvelope> {
    let body = CompareRequest::parse(&req.body).map_err(bad_request)?;
    if body.allow_partial == Some(true) {
        let (result, coverage) = ops
            .run_compare_by_name_partial(&body.attr, &body.v1, &body.v2, &body.class, &opts.budget)
            .map_err(|e| ops_envelope(&e, opts))?;
        let mut wire = compare_wire(&result);
        wire.coverage = coverage;
        return Ok(Response::json(wire.encode()));
    }
    let result = ops
        .run_compare_by_name(&body.attr, &body.v1, &body.v2, &body.class, &opts.budget)
        .map_err(|e| ops_envelope(&e, opts))?;
    Ok(Response::json(compare_wire(&result).encode()))
}

fn drill_config_for(
    ops: &dyn EngineOps,
    depth: Option<u64>,
    min_score: Option<f64>,
) -> DrillConfig {
    let defaults = DrillConfig::default();
    DrillConfig {
        compare: ops.compare_config(),
        max_depth: depth.map_or(defaults.max_depth, |d| {
            usize::try_from(d).unwrap_or(usize::MAX)
        }),
        min_normalized_score: min_score.unwrap_or(defaults.min_normalized_score),
    }
}

fn drill(
    req: &Request,
    ops: &dyn EngineOps,
    opts: &RouteOptions,
) -> Result<Response, ErrorEnvelope> {
    let body = DrillRequest::parse(&req.body).map_err(bad_request)?;
    let config = drill_config_for(ops, body.depth, body.min_score);
    if body.path.is_empty() {
        let levels = ops
            .run_drill_down_by_name(
                &body.attr,
                &body.v1,
                &body.v2,
                &body.class,
                &config,
                &opts.budget,
            )
            .map_err(|e| ops_envelope(&e, opts))?;
        return Ok(Response::json(drill_wire(&levels).encode()));
    }
    // A fixed path: resolve the conditions by name and walk them through
    // the batch executor (a one-item batch), which owns path semantics.
    let spec = ops
        .spec_by_name(&body.attr, &body.v1, &body.v2, &body.class)
        .map_err(|e| ops_envelope(&e, opts))?;
    let path = body
        .path
        .iter()
        .map(|step| ops.condition_by_name(&step.attr, &step.value))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| ops_envelope(&e, opts))?;
    let item = BatchItem::Drill {
        spec,
        path,
        budget_ms: None,
    };
    let outcomes = ops
        .run_batch(std::slice::from_ref(&item), &config, &opts.budget)
        .map_err(|e| ops_envelope(&e, opts))?;
    match outcomes.into_iter().next() {
        Some(BatchOutcome::Drill(levels)) => Ok(Response::json(drill_wire(&levels).encode())),
        Some(BatchOutcome::Overloaded { message }) => Err(overloaded(message, opts)),
        Some(BatchOutcome::Failed { message }) => {
            Err(ErrorEnvelope::new(ErrorCode::Invalid, message))
        }
        // One item in, one drill outcome out is the engine contract;
        // a missing or mismatched outcome is an internal fault the
        // client should see as a 500, not a worker panic.
        Some(BatchOutcome::Compare(_)) | None => Err(ErrorEnvelope::new(
            ErrorCode::Internal,
            "engine answered the drill item with a mismatched outcome",
        )),
    }
}

fn gi(req: &Request, ops: &dyn EngineOps, opts: &RouteOptions) -> Result<Response, ErrorEnvelope> {
    let body = GiRequest::parse(&req.body).map_err(bad_request)?;
    let top = body
        .top
        .map_or(10, |t| usize::try_from(t).unwrap_or(usize::MAX));
    if body.allow_partial == Some(true) {
        let (report, coverage) = ops
            .run_general_impressions_partial(&opts.budget)
            .map_err(|e| ops_envelope(&e, opts))?;
        let mut wire = gi_wire(&report, top);
        wire.coverage = coverage;
        return Ok(Response::json(wire.encode()));
    }
    let report = ops
        .run_general_impressions(&opts.budget)
        .map_err(|e| ops_envelope(&e, opts))?;
    Ok(Response::json(gi_wire(&report, top).encode()))
}

fn cube_slice(
    req: &Request,
    ops: &dyn EngineOps,
    opts: &RouteOptions,
) -> Result<Response, ErrorEnvelope> {
    let body = SliceRequest::parse(&req.body).map_err(bad_request)?;
    let attr = ops
        .attr_index(&body.attr)
        .map_err(|e| ops_envelope(&e, opts))?;
    let store = ops
        .query_store(&opts.budget)
        .map_err(|e| ops_envelope(&e, opts))?;
    let response = match &body.by {
        None => {
            let cube = store.one_dim(attr).map_err(|e| {
                ErrorEnvelope::new(ErrorCode::UnknownName, format!("cube error: {e}"))
            })?;
            let view = CubeView::from_cube(&cube).map_err(|e| {
                ErrorEnvelope::new(ErrorCode::Invalid, format!("cube error: {e}"))
            })?;
            let values = (0..view.n_values() as u32)
                .map(|v| SliceValueWire {
                    // om-lint: allow(panic-path) — v < n_values() == value_labels().len() by the range bound
                    label: view.value_labels()[v as usize].clone(),
                    total: view.value_total(v),
                    counts: (0..view.n_classes() as u32).map(|c| view.count(v, c)).collect(),
                    // NaN is the wire's spelling of "empty value": it
                    // encodes as `null`, exactly like the legacy body.
                    confidences: (0..view.n_classes() as u32)
                        .map(|c| view.confidence(v, c).unwrap_or(f64::NAN))
                        .collect(),
                })
                .collect();
            SliceResponse::OneDim {
                attr: view.attr_name().to_owned(),
                total: view.total(),
                classes: view.class_labels().to_vec(),
                values,
            }
        }
        Some(by_name) => {
            let by = ops
                .attr_index(by_name)
                .map_err(|e| ops_envelope(&e, opts))?;
            let cube = store.pair(attr, by).map_err(|e| {
                ErrorEnvelope::new(ErrorCode::NotFound, format!("cube error: {e}"))
            })?;
            let cells = cube
                .iter_cells()
                .filter(|(_, _, count)| *count > 0)
                .map(|(coords, class, count)| PairCellWire {
                    // om-lint: allow(panic-path) — pair-cube cells are 2-D by construction
                    coords: [u64::from(coords[0]), u64::from(coords[1])],
                    class: u64::from(class),
                    count,
                })
                .collect();
            SliceResponse::Pair {
                dims: cube
                    .dims()
                    .iter()
                    .map(|dim| PairDimWire {
                        attr: dim.name.clone(),
                        labels: dim.labels.clone(),
                    })
                    .collect(),
                classes: cube.class_labels().to_vec(),
                total: cube.total(),
                cells,
            }
        }
    };
    Ok(Response::json(response.encode()))
}

fn explore(
    req: &Request,
    ops: &dyn EngineOps,
    opts: &RouteOptions,
) -> Result<Response, ErrorEnvelope> {
    let body = ExploreRequest::parse(&req.body).map_err(bad_request)?;
    let query = ExploreQuery {
        slice: body
            .slice
            .iter()
            .map(|step| (step.attr.clone(), step.value.clone()))
            .collect(),
        k: usize::try_from(body.k).unwrap_or(usize::MAX),
        max_conditions: body
            .max_conditions
            .map(|m| usize::try_from(m).unwrap_or(usize::MAX)),
        compare: body.compare.as_ref().map(|c| CompareNames {
            attr: c.attr.clone(),
            value_1: c.v1.clone(),
            value_2: c.v2.clone(),
            class: c.class.clone(),
        }),
    };
    // A request-level budget can only narrow the route budget — the
    // server deadline still caps the whole request.
    let budget = body.budget_ms.map_or_else(
        || opts.budget.clone(),
        |ms| opts.budget.narrowed(std::time::Duration::from_millis(ms)),
    );
    let started = std::time::Instant::now();
    let report = match ops.run_explore(&query, &budget) {
        Ok(report) => {
            if let Some(metrics) = &opts.metrics {
                let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                metrics.record_explore(
                    report.steps,
                    report.summaries.len() as u64,
                    report.truncated,
                    us,
                );
            }
            report
        }
        Err(e) => {
            let env = ops_envelope(&e, opts);
            // An exhausted budget with zero finished summaries is still a
            // budget exhaustion — count it alongside truncated answers.
            if env.code == ErrorCode::Overloaded {
                if let Some(metrics) = &opts.metrics {
                    metrics.record_explore_exhausted();
                }
            }
            return Err(env);
        }
    };
    Ok(Response::json(explore_wire(&report).encode()))
}

fn ingest(
    req: &Request,
    ops: &dyn EngineOps,
    opts: &RouteOptions,
) -> Result<Response, ErrorEnvelope> {
    if !ops.ingest_enabled() {
        return Err(ErrorEnvelope::new(
            ErrorCode::NotFound,
            "live ingestion is not enabled (start the server with an ingest WAL)",
        ));
    }
    opts.budget
        .check()
        .map_err(|e| overloaded(e.to_string(), opts))?;
    let body = IngestRequest::parse(&req.body).map_err(bad_request)?;
    let ack = ops
        .ingest_rows(&body.rows)
        .map_err(|e| ops_envelope(&e, opts))?;
    Ok(Response::json(
        IngestResponse {
            accepted: ack.accepted,
            rows_total: ack.rows_total,
            generation: ack.generation,
        }
        .encode(),
    ))
}

/// Resolve one batch item's names into an engine [`BatchItem`]; per-item
/// failures become per-item envelopes, never batch failures.
fn resolve_batch_item(
    ops: &dyn EngineOps,
    item: &BatchItemRequest,
    opts: &RouteOptions,
) -> Result<BatchItem, ErrorEnvelope> {
    match item {
        BatchItemRequest::Compare { req, budget_ms } => {
            if req.allow_partial.is_some() {
                return Err(ErrorEnvelope::new(
                    ErrorCode::Invalid,
                    "batch compare items are always all-or-nothing; \
                     \"allow_partial\" is only accepted on /v1/compare",
                ));
            }
            let spec = ops
                .spec_by_name(&req.attr, &req.v1, &req.v2, &req.class)
                .map_err(|e| ops_envelope(&e, opts))?;
            Ok(BatchItem::Compare {
                spec,
                budget_ms: *budget_ms,
            })
        }
        BatchItemRequest::Drill { req, budget_ms } => {
            if req.depth.is_some() || req.min_score.is_some() {
                return Err(ErrorEnvelope::new(
                    ErrorCode::Invalid,
                    "batch drill items run under the server's drill configuration; \
                     \"depth\" and \"min_score\" are only accepted on /v1/drill",
                ));
            }
            let spec = ops
                .spec_by_name(&req.attr, &req.v1, &req.v2, &req.class)
                .map_err(|e| ops_envelope(&e, opts))?;
            let path = req
                .path
                .iter()
                .map(|step| ops.condition_by_name(&step.attr, &step.value))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| ops_envelope(&e, opts))?;
            Ok(BatchItem::Drill {
                spec,
                path,
                budget_ms: *budget_ms,
            })
        }
    }
}

fn batch(
    req: &Request,
    ops: &dyn EngineOps,
    opts: &RouteOptions,
) -> Result<Response, ErrorEnvelope> {
    let body = BatchRequest::parse(&req.body).map_err(bad_request)?;
    let resolved: Vec<Result<BatchItem, ErrorEnvelope>> = body
        .items
        .iter()
        .map(|item| resolve_batch_item(ops, item, opts))
        .collect();
    let runnable: Vec<BatchItem> = resolved.iter().filter_map(|r| r.clone().ok()).collect();
    let drill_config = drill_config_for(ops, None, None);
    // Nothing runnable means nothing to execute: don't touch the engine
    // (a clustered backend would needlessly pin a store generation) —
    // the per-item envelopes already tell the whole story.
    let outcomes = if runnable.is_empty() {
        Vec::new()
    } else {
        ops.run_batch(&runnable, &drill_config, &opts.budget)
            .map_err(|e| ops_envelope(&e, opts))?
    };
    let mut outcomes = outcomes.into_iter();
    let items = resolved
        .into_iter()
        .map(|r| match r {
            Err(env) => BatchItemResult::Error(env),
            Ok(_) => match outcomes.next() {
                Some(BatchOutcome::Compare(result)) => {
                    BatchItemResult::Compare(compare_wire(&result))
                }
                Some(BatchOutcome::Drill(levels)) => BatchItemResult::Drill(drill_wire(&levels)),
                Some(BatchOutcome::Overloaded { message }) => {
                    BatchItemResult::Error(overloaded(message, opts))
                }
                Some(BatchOutcome::Failed { message }) => {
                    BatchItemResult::Error(ErrorEnvelope::new(ErrorCode::Invalid, message))
                }
                // The engine yields one outcome per runnable item;
                // running dry is an internal fault reported per-item.
                None => BatchItemResult::Error(ErrorEnvelope::new(
                    ErrorCode::Internal,
                    "engine returned fewer batch outcomes than runnable items".to_owned(),
                )),
            },
        })
        .collect();
    Ok(Response::json(BatchResponse { items }.encode()))
}

/// Route one `/v1/*` request. Every endpoint is `POST`; anything else
/// gets a `method_not_allowed` envelope, unknown paths a `not_found`.
#[must_use]
pub fn route_v1(req: &Request, ops: &dyn EngineOps, opts: &RouteOptions) -> Response {
    if req.method != "POST" {
        return envelope_response(&ErrorEnvelope::new(
            ErrorCode::MethodNotAllowed,
            format!("method {} not allowed for {} (use POST)", req.method, req.path),
        ));
    }
    let outcome = match req.path.as_str() {
        "/v1/compare" => compare(req, ops, opts),
        "/v1/drill" => drill(req, ops, opts),
        "/v1/gi" => gi(req, ops, opts),
        "/v1/cube/slice" => cube_slice(req, ops, opts),
        "/v1/explore" => explore(req, ops, opts),
        "/v1/ingest" => ingest(req, ops, opts),
        "/v1/compare/batch" => batch(req, ops, opts),
        other => Err(ErrorEnvelope::new(
            ErrorCode::NotFound,
            format!("no v1 route for {other:?}"),
        )),
    };
    outcome.unwrap_or_else(|env| envelope_response(&env))
}
