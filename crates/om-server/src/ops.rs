//! The backend seam of the `/v1` API: one trait, two implementations.
//!
//! Every `/v1` handler runs against [`EngineOps`] instead of a concrete
//! engine. [`EngineBackend`] delegates verbatim to a resident
//! [`OpportunityMap`] — that is the single-node server, byte-identical
//! to the pre-trait handlers. The om-cluster coordinator provides the
//! second implementation: the same methods answered by fanning out over
//! shard processes and merging, which is what lets a coordinator serve
//! the `/v1` contract unchanged.

use std::sync::Arc;

use om_api::{CoverageWire, ErrorCode, ErrorEnvelope};
use om_compare::{CompareConfig, ComparisonResult, ComparisonSpec, DrillConfig, DrillLevel};
use om_engine::{
    BatchItem, BatchOutcome, Budget, Condition, EngineError, GiReport, IngestError, IngestHandle,
    OpportunityMap, StoreSnapshot,
};

/// A backend failure, in one of the two shapes the handlers map from:
/// an engine error (classified exactly like the legacy status mapping)
/// or a ready-made `/v1` envelope (the cluster coordinator's native
/// error shape — shard failures arrive with code, message and retry
/// hint already decided).
#[derive(Debug)]
pub enum OpsError {
    /// A single-node engine failure.
    Engine(EngineError),
    /// A pre-shaped `/v1` error envelope, used verbatim.
    Envelope(ErrorEnvelope),
}

impl From<EngineError> for OpsError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

impl From<ErrorEnvelope> for OpsError {
    fn from(e: ErrorEnvelope) -> Self {
        Self::Envelope(e)
    }
}

/// What `POST /v1/ingest` reports back after an accepted batch.
#[derive(Debug, Clone, Copy)]
pub struct IngestAck {
    pub accepted: u64,
    pub rows_total: u64,
    pub generation: u64,
}

/// Map an ingest failure onto its `/v1` envelope — the single mapping
/// shared by the resident backend and the cluster coordinator's
/// pre-validation (which must reject a bad row with the same body the
/// owning shard would have).
#[must_use]
pub fn ingest_envelope(e: &IngestError) -> ErrorEnvelope {
    match e {
        IngestError::BadRow { row, .. } => ErrorEnvelope {
            row: Some(*row as u64),
            ..ErrorEnvelope::new(ErrorCode::BadRow, e.to_string())
        },
        e if e.is_bad_request() => ErrorEnvelope::new(ErrorCode::BadRequest, e.to_string()),
        e => ErrorEnvelope::new(ErrorCode::Internal, e.to_string()),
    }
}

/// Everything a `/v1` handler asks of its backend.
///
/// Contract: a conforming implementation answers every method with the
/// exact bytes (results *and* error messages) a resident
/// [`OpportunityMap`] over the same logical record set would produce.
/// [`EngineBackend`] satisfies that trivially; the om-cluster
/// coordinator satisfies it by deterministic distributed merge. The only
/// sanctioned divergences are availability errors a single node cannot
/// have (a shard down, a generation race), which surface as
/// [`OpsError::Envelope`] overload envelopes.
pub trait EngineOps: Send + Sync {
    /// The comparison configuration drill configs inherit from.
    fn compare_config(&self) -> CompareConfig;

    /// Resolve a named comparison into a spec.
    ///
    /// # Errors
    /// Unknown names, or backend unavailability.
    fn spec_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
    ) -> Result<ComparisonSpec, OpsError>;

    /// Resolve a named drill condition (`attr = value`).
    ///
    /// # Errors
    /// Unknown names, or backend unavailability.
    fn condition_by_name(&self, attr: &str, value: &str) -> Result<Condition, OpsError>;

    /// Resolve an attribute name to its schema index.
    ///
    /// # Errors
    /// Unknown names, or backend unavailability.
    fn attr_index(&self, name: &str) -> Result<usize, OpsError>;

    /// Run a named comparison under `budget`.
    ///
    /// # Errors
    /// Unknown names, comparator errors, budget overrun, unavailability.
    fn run_compare_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        budget: &Budget,
    ) -> Result<ComparisonResult, OpsError>;

    /// Run a named smart drill-down under `budget`.
    ///
    /// # Errors
    /// Unknown names, comparator errors, budget overrun, unavailability.
    fn run_drill_down_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        config: &DrillConfig,
        budget: &Budget,
    ) -> Result<Vec<DrillLevel>, OpsError>;

    /// Mine the general-impressions report under `budget`.
    ///
    /// # Errors
    /// Miner errors, budget overrun, unavailability.
    fn run_general_impressions(&self, budget: &Budget) -> Result<GiReport, OpsError>;

    /// [`EngineOps::run_compare_by_name`], but with the caller opting
    /// into a degraded partial answer: a distributed backend may answer
    /// from the live subset of its partitions and report the gap in the
    /// returned [`CoverageWire`]. `None` coverage means full coverage. A
    /// single node always has full coverage, so the default delegates
    /// and never degrades.
    ///
    /// # Errors
    /// Same as [`EngineOps::run_compare_by_name`].
    fn run_compare_by_name_partial(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        budget: &Budget,
    ) -> Result<(ComparisonResult, Option<CoverageWire>), OpsError> {
        self.run_compare_by_name(attr, value_1, value_2, class, budget)
            .map(|r| (r, None))
    }

    /// [`EngineOps::run_general_impressions`] with partial-answer
    /// opt-in; same contract as
    /// [`EngineOps::run_compare_by_name_partial`].
    ///
    /// # Errors
    /// Same as [`EngineOps::run_general_impressions`].
    fn run_general_impressions_partial(
        &self,
        budget: &Budget,
    ) -> Result<(GiReport, Option<CoverageWire>), OpsError> {
        self.run_general_impressions(budget).map(|r| (r, None))
    }

    /// Pin one store generation for a cube-slice read. The resident
    /// backend ignores `budget` — slices read precomputed counts, and
    /// `/cube/slice` answers even on an expired budget. A distributed
    /// backend may need `budget` to bound shard fan-out and is the one
    /// place a slice can fail with an overload envelope.
    ///
    /// # Errors
    /// Backend unavailability only.
    fn query_store(&self, budget: &Budget) -> Result<Arc<StoreSnapshot>, OpsError>;

    /// Run a comparison/drill batch under `budget`, one outcome per item
    /// in item order.
    ///
    /// # Errors
    /// Whole-batch failures only; per-item failures are outcomes.
    fn run_batch(
        &self,
        items: &[BatchItem],
        drill_config: &DrillConfig,
        budget: &Budget,
    ) -> Result<Vec<BatchOutcome>, OpsError>;

    /// Run a smart drill-down exploration under `budget`.
    ///
    /// The default pins a store snapshot and runs om-explore serially
    /// over it — exploration reads only cube cells, so any backend that
    /// can answer [`EngineOps::query_store`] (the cluster coordinator's
    /// merged store included) serves `/v1/explore` with zero extra
    /// protocol work and byte-identical output.
    ///
    /// # Errors
    /// Unknown names, invalid queries, budget overrun before the first
    /// summary (later overrun truncates the report), unavailability.
    fn run_explore(
        &self,
        query: &om_explore::ExploreQuery,
        budget: &Budget,
    ) -> Result<om_explore::ExploreReport, OpsError> {
        let store = self.query_store(budget)?;
        om_explore::explore(
            &om_exec::Executor::serial(),
            &store,
            &self.compare_config(),
            query,
            budget,
        )
        .map_err(|e| OpsError::Engine(e.into()))
    }

    /// Whether `POST /v1/ingest` is live on this backend.
    fn ingest_enabled(&self) -> bool;

    /// Append pre-split labeled rows; all-or-nothing per batch.
    ///
    /// # Errors
    /// An envelope: `bad_row` naming the 1-based offending row,
    /// `bad_request` for malformed batches, `not_found` when ingestion
    /// is disabled.
    fn ingest_rows(&self, rows: &[Vec<String>]) -> Result<IngestAck, OpsError>;

    /// Extra text appended to `/metrics` after the server's own counters
    /// (the resident backend's ingest counters, a coordinator's
    /// `om_cluster_*` series).
    fn extra_metrics(&self) -> String {
        String::new()
    }
}

/// The resident single-node backend: verbatim delegation to an
/// [`OpportunityMap`] (and its optional live-ingest handle).
pub struct EngineBackend<'a> {
    pub om: &'a OpportunityMap,
    pub ingest: Option<&'a IngestHandle>,
}

impl EngineOps for EngineBackend<'_> {
    fn compare_config(&self) -> CompareConfig {
        self.om.config().compare.clone()
    }

    fn spec_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
    ) -> Result<ComparisonSpec, OpsError> {
        Ok(self.om.spec_by_name(attr, value_1, value_2, class)?)
    }

    fn condition_by_name(&self, attr: &str, value: &str) -> Result<Condition, OpsError> {
        Ok(self.om.condition_by_name(attr, value)?)
    }

    fn attr_index(&self, name: &str) -> Result<usize, OpsError> {
        Ok(self.om.attr_index(name)?)
    }

    fn run_compare_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        budget: &Budget,
    ) -> Result<ComparisonResult, OpsError> {
        Ok(self.om.run_compare_by_name(
            attr,
            value_1,
            value_2,
            class,
            self.om.exec_ctx(Some(budget)),
        )?)
    }

    fn run_drill_down_by_name(
        &self,
        attr: &str,
        value_1: &str,
        value_2: &str,
        class: &str,
        config: &DrillConfig,
        budget: &Budget,
    ) -> Result<Vec<DrillLevel>, OpsError> {
        Ok(self.om.run_drill_down_by_name(
            attr,
            value_1,
            value_2,
            class,
            config,
            self.om.exec_ctx(Some(budget)),
        )?)
    }

    fn run_general_impressions(&self, budget: &Budget) -> Result<GiReport, OpsError> {
        Ok(self
            .om
            .run_general_impressions(self.om.exec_ctx(Some(budget)))?)
    }

    fn query_store(&self, _budget: &Budget) -> Result<Arc<StoreSnapshot>, OpsError> {
        Ok(self.om.store())
    }

    fn run_batch(
        &self,
        items: &[BatchItem],
        drill_config: &DrillConfig,
        budget: &Budget,
    ) -> Result<Vec<BatchOutcome>, OpsError> {
        Ok(self
            .om
            .run_batch(items, drill_config, self.om.exec_ctx(Some(budget)))?)
    }

    fn run_explore(
        &self,
        query: &om_explore::ExploreQuery,
        budget: &Budget,
    ) -> Result<om_explore::ExploreReport, OpsError> {
        Ok(self
            .om
            .run_explore(query, self.om.exec_ctx(Some(budget)))?)
    }

    fn ingest_enabled(&self) -> bool {
        self.ingest.is_some()
    }

    fn ingest_rows(&self, rows: &[Vec<String>]) -> Result<IngestAck, OpsError> {
        let Some(handle) = self.ingest else {
            return Err(ErrorEnvelope::new(
                ErrorCode::NotFound,
                "live ingestion is not enabled (start the server with an ingest WAL)",
            )
            .into());
        };
        match handle.append_labeled(rows) {
            Ok(accepted) => {
                let stats = handle.stats();
                Ok(IngestAck {
                    accepted: accepted as u64,
                    rows_total: stats.rows_total,
                    generation: stats.store_generation,
                })
            }
            Err(e) => Err(ingest_envelope(&e).into()),
        }
    }

    fn extra_metrics(&self) -> String {
        self.ingest
            .map(om_engine::IngestHandle::render_metrics)
            .unwrap_or_default()
    }
}
