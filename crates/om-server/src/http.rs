//! Minimal, bounded HTTP/1.1 request parsing and response writing.
//!
//! The daemon only ever serves small `GET` requests from trusted
//! analysts, so the parser is deliberately strict and size-bounded:
//! every limit violation or syntax error becomes a clean `400` instead
//! of a panic or an unbounded allocation.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Upper bound on the request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 4096;
/// Upper bound on one header line.
pub const MAX_HEADER_LINE: usize = 1024;
/// Upper bound on the number of headers.
pub const MAX_HEADERS: usize = 64;
/// Default upper bound on a request body (`POST /ingest` uploads).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1 << 20;

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The peer closed the connection before sending anything.
    Empty,
    /// The peer stalled past the read timeout mid-request.
    TimedOut,
    /// Anything malformed or over a bound; the string names the offense.
    Malformed(String),
    /// A genuine I/O failure.
    Io(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty request"),
            ParseError::TimedOut => write!(f, "request timed out"),
            ParseError::Malformed(why) => write!(f, "malformed request: {why}"),
            ParseError::Io(why) => write!(f, "i/o error: {why}"),
        }
    }
}

/// A parsed request: method, decoded path, decoded query parameters,
/// and (for `POST`) the UTF-8 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// Query parameters, percent-decoded, in sorted key order (which
    /// also canonicalizes the cache key).
    pub params: BTreeMap<String, String>,
    /// The request body (empty without a `Content-Length` header).
    pub body: String,
}

impl Request {
    /// The canonical cache key of this request: path plus sorted,
    /// re-encoded query parameters.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        let mut key = self.path.clone();
        for (i, (k, v)) in self.params.iter().enumerate() {
            key.push(if i == 0 { '?' } else { '&' });
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        key
    }

    /// A required parameter.
    ///
    /// # Errors
    /// Returns the missing key's name for a `400` response.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.params
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required query parameter {key:?}"))
    }

    /// An optional parameter parsed as `T`, defaulting when absent.
    ///
    /// # Errors
    /// Returns a message naming the key when present but unparsable.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.params.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| format!("query parameter {key:?} has invalid value {raw:?}")),
        }
    }
}

/// Read one line terminated by `\n`, enforcing `limit` bytes.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    limit: usize,
    got_any: &mut bool,
) -> Result<String, ParseError> {
    let mut line = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() && !*got_any {
                    return Err(ParseError::Empty);
                }
                return Err(ParseError::Malformed("truncated line".into()));
            }
            Ok(_) => {
                *got_any = true;
                let [b] = byte;
                if b == b'\n' {
                    break;
                }
                line.push(b);
                if line.len() > limit {
                    return Err(ParseError::Malformed(format!(
                        "line exceeds {limit} bytes"
                    )));
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(if *got_any {
                    ParseError::TimedOut
                } else {
                    ParseError::Empty
                });
            }
            Err(e) => return Err(ParseError::Io(e.to_string())),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| ParseError::Malformed("non-UTF-8 bytes".into()))
}

/// Percent-decode one query component; `+` decodes to space.
fn percent_decode(raw: &str) -> Result<String, String> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let &[h, l] = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| "truncated percent escape".to_owned())?
                else {
                    return Err("truncated percent escape".to_owned());
                };
                let hi = (h as char)
                    .to_digit(16)
                    .ok_or_else(|| format!("invalid percent escape in {raw:?}"))?;
                let lo = (l as char)
                    .to_digit(16)
                    .ok_or_else(|| format!("invalid percent escape in {raw:?}"))?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| "percent escape decodes to invalid UTF-8".to_owned())
}

/// Split and decode a query string into sorted key/value pairs.
fn parse_query(raw: &str) -> Result<BTreeMap<String, String>, String> {
    let mut params = BTreeMap::new();
    for piece in raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = piece.split_once('=').unwrap_or((piece, ""));
        let key = percent_decode(k)?;
        if params.insert(key.clone(), percent_decode(v)?).is_some() {
            return Err(format!("duplicate query parameter {key:?}"));
        }
    }
    Ok(params)
}

/// How much of a request's declared body was read off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodyRead {
    /// The full declared body is in [`Request::body`].
    Full,
    /// The body was left unread: the declared `Content-Length` exceeded
    /// the unroutable-target cap, so the caller should answer (a `404`)
    /// and close without draining the upload.
    Skipped {
        /// The declared `Content-Length` that was never read.
        declared: usize,
    },
}

/// Parse one request from `stream` with all bounds enforced, allowing a
/// body of at most [`DEFAULT_MAX_BODY_BYTES`].
///
/// # Errors
/// See [`ParseError`]; `Malformed` maps to `400`, `TimedOut` to `408`.
pub fn parse_request<S: Read>(stream: S) -> Result<Request, ParseError> {
    parse_request_bounded(stream, DEFAULT_MAX_BODY_BYTES)
}

/// [`parse_request`] with an explicit body bound: a `Content-Length`
/// above `max_body_bytes` is rejected before a single body byte is read.
///
/// # Errors
/// See [`ParseError`].
pub fn parse_request_bounded<S: Read>(
    stream: S,
    max_body_bytes: usize,
) -> Result<Request, ParseError> {
    parse_request_routed(stream, max_body_bytes, |_| true).map(|(req, _)| req)
}

/// [`parse_request_bounded`] with route-aware body admission: once the
/// head is parsed, `routable(path)` says whether the target exists. A
/// routable target keeps the full `max_body_bytes` allowance (an
/// oversize `Content-Length` is a `Malformed` reject, as ever). An
/// unroutable target is capped at [`DEFAULT_MAX_BODY_BYTES`] — the same
/// 1 MiB bound `/v1/ingest` enforces — so a misaddressed client
/// streaming a bulk upload can't hold a worker just to hear a `404`:
/// past the cap the body is left unread ([`BodyRead::Skipped`]) and the
/// request surfaces with an empty body, which no 404 path ever reads.
///
/// # Errors
/// See [`ParseError`].
pub fn parse_request_routed<S: Read>(
    stream: S,
    max_body_bytes: usize,
    routable: impl FnOnce(&str) -> bool,
) -> Result<(Request, BodyRead), ParseError> {
    let mut reader = BufReader::new(stream);
    let mut got_any = false;
    let request_line = read_line_bounded(&mut reader, MAX_REQUEST_LINE, &mut got_any)?;

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ParseError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed(format!("bad target {target:?}")));
    }

    // Headers: bounded count and length; only `Content-Length` matters
    // (the daemon is stateless per request and always closes).
    let mut n_headers = 0;
    let mut content_length = 0usize;
    loop {
        let line = read_line_bounded(&mut reader, MAX_HEADER_LINE, &mut got_any)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse::<usize>().map_err(|_| {
                ParseError::Malformed(format!("bad Content-Length {:?}", value.trim()))
            })?;
        }
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return Err(ParseError::Malformed(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
    }
    // Decode the target before touching the body: the body allowance
    // depends on whether the path routes anywhere at all.
    let (raw_path, raw_query) = target.split_once('?').unwrap_or((target, ""));
    let path = percent_decode(raw_path).map_err(ParseError::Malformed)?;
    let params = parse_query(raw_query).map_err(ParseError::Malformed)?;

    let cap = if routable(&path) {
        max_body_bytes
    } else {
        max_body_bytes.min(DEFAULT_MAX_BODY_BYTES)
    };
    if content_length > cap {
        if cap == max_body_bytes {
            return Err(ParseError::Malformed(format!(
                "body of {content_length} bytes exceeds the {max_body_bytes}-byte limit"
            )));
        }
        // Unroutable target over the cap: don't read the upload — the
        // 404 never looks at the body.
        return Ok((
            Request {
                method: method.to_owned(),
                path,
                params,
                body: String::new(),
            },
            BodyRead::Skipped {
                declared: content_length,
            },
        ));
    }
    let mut body_bytes = vec![0u8; content_length];
    let mut read = 0;
    while read < content_length {
        // om-lint: allow(panic-path) — read < content_length == body_bytes.len() by the loop guard
        match reader.read(&mut body_bytes[read..]) {
            Ok(0) => return Err(ParseError::Malformed("truncated body".into())),
            Ok(n) => read += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(ParseError::TimedOut);
            }
            Err(e) => return Err(ParseError::Io(e.to_string())),
        }
    }
    let body = String::from_utf8(body_bytes)
        .map_err(|_| ParseError::Malformed("non-UTF-8 body".into()))?;

    Ok((
        Request {
            method: method.to_owned(),
            path,
            params,
            body,
        },
        BodyRead::Full,
    ))
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
    /// When set, a `Retry-After: <secs>` header is emitted — used by
    /// overload (`503`) responses to tell clients when to come back.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON `200`.
    #[must_use]
    pub fn json(body: String) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body,
            retry_after: None,
        }
    }

    /// A plain-text `200`.
    #[must_use]
    pub fn text(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            retry_after: None,
        }
    }

    /// An error response with a JSON `{"error": ...}` body.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let mut body = String::with_capacity(message.len() + 16);
        body.push_str("{\"error\":\"");
        for c in message.chars() {
            match c {
                '"' => body.push_str("\\\""),
                '\\' => body.push_str("\\\\"),
                '\n' => body.push_str("\\n"),
                c if (c as u32) < 0x20 => {
                    use std::fmt::Write as _;
                    let _ = write!(body, "\\u{:04x}", c as u32);
                }
                c => body.push(c),
            }
        }
        body.push_str("\"}");
        Self {
            status,
            content_type: "application/json",
            body,
            retry_after: None,
        }
    }

    /// Attach a `Retry-After` header (seconds).
    #[must_use]
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after = Some(secs);
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize with `Connection: close` framing.
    ///
    /// # Errors
    /// Propagates write failures (the peer may have gone away).
    pub fn write_to<W: Write>(&self, out: &mut W) -> io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        if let Some(secs) = self.retry_after {
            write!(out, "Retry-After: {secs}\r\n")?;
        }
        out.write_all(b"Connection: close\r\n\r\n")?;
        out.write_all(self.body.as_bytes())?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(raw: &str) -> Result<Request, ParseError> {
        parse_request(raw.as_bytes())
    }

    #[test]
    fn parses_simple_get() {
        let r = parse_str("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.params.is_empty());
    }

    #[test]
    fn parses_and_canonicalizes_query() {
        let r = parse_str(
            "GET /compare?v2=ph2&attr=Phone%20Model&v1=ph1&class=dropped HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.required("attr").unwrap(), "Phone Model");
        assert_eq!(
            r.canonical_key(),
            "/compare?attr=Phone Model&class=dropped&v1=ph1&v2=ph2"
        );
        assert_eq!(r.parse_or("top", 10usize).unwrap(), 10);
    }

    #[test]
    fn decodes_plus_and_percent() {
        let r = parse_str("GET /x?a=one+two&b=%C3%A9 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.params["a"], "one two");
        assert_eq!(r.params["b"], "é");
    }

    #[test]
    fn rejects_malformed_inputs() {
        for raw in [
            "NOT-A-REQUEST\r\n\r\n",
            "GET /x HTTP/9.9\r\n\r\n",
            "GET nopath HTTP/1.1\r\n\r\n",
            "GET /x?a=%zz HTTP/1.1\r\n\r\n",
            "GET /x?a=%f HTTP/1.1\r\n\r\n",
            "GET /x?dup=1&dup=2 HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
        ] {
            assert!(
                matches!(parse_str(raw), Err(ParseError::Malformed(_))),
                "{raw:?} should be malformed"
            );
        }
    }

    #[test]
    fn rejects_oversized_request_line() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1));
        assert!(matches!(parse_str(&raw), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn rejects_too_many_headers() {
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("H{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse_str(&raw), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn reads_posted_body_to_content_length() {
        let r = parse_str("POST /ingest HTTP/1.1\r\nContent-Length: 12\r\n\r\na,b,c\nd,e,f\nignored tail")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, "a,b,c\nd,e,f\n");
    }

    #[test]
    fn get_without_content_length_has_empty_body() {
        let r = parse_str("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.body, "");
    }

    #[test]
    fn oversized_body_rejected_before_reading_it() {
        let raw = format!(
            "POST /ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            DEFAULT_MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse_str(&raw), Err(ParseError::Malformed(_))));
        let tight = parse_request_bounded(
            "POST /i HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd".as_bytes(),
            3,
        );
        assert!(matches!(tight, Err(ParseError::Malformed(_))));
    }

    #[test]
    fn truncated_or_bad_bodies_rejected() {
        assert!(matches!(
            parse_str("POST /i HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse_str("POST /i HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        let mut raw = b"POST /i HTTP/1.1\r\nContent-Length: 2\r\n\r\n".to_vec();
        raw.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            parse_request(raw.as_slice()),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn unroutable_target_body_is_capped_not_drained() {
        // A server with a raised body allowance (say for bulk ingest):
        // a misaddressed upload above the 1 MiB unroutable cap is left
        // unread — the parser answers with the head only.
        let raw = format!(
            "POST /v1/nope HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            DEFAULT_MAX_BODY_BYTES + 1
        );
        let (req, body_read) =
            parse_request_routed(raw.as_bytes(), 64 << 20, |path| path == "/v1/ingest").unwrap();
        assert_eq!(req.path, "/v1/nope");
        assert_eq!(req.body, "");
        assert_eq!(
            body_read,
            BodyRead::Skipped {
                declared: DEFAULT_MAX_BODY_BYTES + 1
            }
        );

        // The same declared length on a routable target still reads in
        // full under the raised allowance.
        let mut raw = format!(
            "POST /v1/ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            DEFAULT_MAX_BODY_BYTES + 1
        )
        .into_bytes();
        raw.extend(std::iter::repeat_n(b'x', DEFAULT_MAX_BODY_BYTES + 1));
        let (req, body_read) =
            parse_request_routed(raw.as_slice(), 64 << 20, |path| path == "/v1/ingest").unwrap();
        assert_eq!(body_read, BodyRead::Full);
        assert_eq!(req.body.len(), DEFAULT_MAX_BODY_BYTES + 1);
    }

    #[test]
    fn unroutable_target_small_body_still_reads() {
        let raw = "POST /v1/nope HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let (req, body_read) = parse_request_routed(raw.as_bytes(), 64 << 20, |_| false).unwrap();
        assert_eq!(body_read, BodyRead::Full);
        assert_eq!(req.body, "abcd");
    }

    #[test]
    fn default_allowance_keeps_oversize_reject_on_any_target() {
        // With the stock 1 MiB allowance the caps coincide, so an
        // oversize body is a 400 reject whether or not the path routes —
        // exactly the pre-existing contract.
        let raw = format!(
            "POST /v1/nope HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            DEFAULT_MAX_BODY_BYTES + 1
        );
        let r = parse_request_routed(raw.as_bytes(), DEFAULT_MAX_BODY_BYTES, |_| false);
        assert!(matches!(r, Err(ParseError::Malformed(_))));
    }

    #[test]
    fn empty_connection_reports_empty() {
        assert_eq!(parse_str(""), Err(ParseError::Empty));
    }

    #[test]
    fn truncated_request_is_malformed() {
        assert!(matches!(
            parse_str("GET /x HTT"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::text("ok\n").write_to(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 3\r\n"));
        assert!(s.contains("Connection: close\r\n"));
        assert!(s.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn retry_after_header_is_emitted() {
        let mut out = Vec::new();
        Response::error(503, "overloaded")
            .with_retry_after(2)
            .write_to(&mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(s.contains("Retry-After: 2\r\n"));
        assert!(s.contains("Connection: close\r\n"));
    }

    #[test]
    fn error_body_is_json_escaped() {
        let r = Response::error(400, "bad \"thing\"\n");
        assert_eq!(r.body, "{\"error\":\"bad \\\"thing\\\"\\n\"}");
        assert_eq!(r.status, 400);
    }
}
