//! Shard-internal endpoints for cluster mode (`/internal/*`).
//!
//! When an om-server runs as a shard of an om-cluster deployment, the
//! coordinator drives it through these endpoints rather than `/v1`:
//!
//! * `GET /internal/schema` — the shard's schema as an encoded zero-row
//!   dataset, so the coordinator resolves names, displays conditions
//!   and validates sub-populations with the exact engine code paths.
//! * `GET /internal/generation` — the published store generation.
//! * `GET /internal/store?expect=G` — the full cube store at generation
//!   `G`, base64 in JSON. If the published generation is no longer `G`
//!   the shard answers `409` and the coordinator re-pins; this is what
//!   makes mixed-generation merges impossible rather than unlikely.
//! * `POST /internal/level` — a drill-level store over the shard's
//!   *base* partition narrowed by resolved conditions (drill levels
//!   read the immutable base dataset on a single node too, which is
//!   why these are generation-free).
//! * `POST /internal/count` — conditioned base-partition row count,
//!   the coordinator's sub-population emptiness probe.
//! * `POST /internal/flush` — quiesce live ingestion (seal + merge
//!   barrier) and report the resulting generation, so a coordinator
//!   can force read-your-writes before a verification pass.
//!
//! These endpoints exist only on engine-backed servers; a coordinator
//! (custom backend) never serves them. They carry no request budget:
//! the coordinator owns end-to-end deadlines via socket timeouts.

use parking_lot::Mutex;
use std::sync::Arc;

use om_api::{
    b64_encode, InternalCountRequest, InternalCountResponse, InternalGenerationResponse,
    InternalLevelRequest, InternalLevelResponse, InternalSchemaResponse, InternalStoreResponse,
};
use om_compare::CompareError;
use om_cube::persist::encode_store;
use om_cube::PopulationSelector;
use om_data::persist::encode_dataset;
use om_engine::{IngestHandle, OpportunityMap};

use crate::http::{Request, Response};

/// Per-server cache of the encoded-store wire body: encoding a full
/// store is the one expensive internal operation, and every coordinator
/// fetch at an unchanged generation must not pay it again.
#[derive(Default)]
pub(crate) struct StoreWireCache {
    encoded: Mutex<Option<(u64, Arc<String>)>>,
}

/// Dispatch one `/internal/*` request.
pub(crate) fn route_internal(
    req: &Request,
    om: &OpportunityMap,
    ingest: Option<&IngestHandle>,
    wire: &StoreWireCache,
) -> Response {
    match req.path.as_str() {
        "/internal/schema" | "/internal/generation" | "/internal/store"
            if req.method != "GET" =>
        {
            Response::error(
                405,
                &format!("method {} not allowed for {} (use GET)", req.method, req.path),
            )
        }
        "/internal/level" | "/internal/count" | "/internal/flush" if req.method != "POST" => {
            Response::error(
                405,
                &format!("method {} not allowed for {} (use POST)", req.method, req.path),
            )
        }
        "/internal/schema" => schema(om),
        "/internal/generation" => Response::json(
            InternalGenerationResponse {
                generation: om.store_generation(),
            }
            .encode(),
        ),
        "/internal/store" => store(req, om, wire),
        "/internal/level" => level(req, om),
        "/internal/count" => count(req, om),
        "/internal/flush" => flush(om, ingest),
        other => Response::error(404, &format!("no internal route for {other:?}")),
    }
}

fn schema(om: &OpportunityMap) -> Response {
    // A zero-row projection keeps the full schema (attributes, domains,
    // class labels) while shipping no records.
    match om.dataset().take_rows(&[]) {
        Ok(empty) => Response::json(
            InternalSchemaResponse {
                dataset_b64: b64_encode(&encode_dataset(&empty)),
            }
            .encode(),
        ),
        Err(e) => Response::error(500, &format!("schema projection failed: {e}")),
    }
}

fn store(req: &Request, om: &OpportunityMap, wire: &StoreWireCache) -> Response {
    // Chaos seam: delay or fail the shard-side store fetch — the
    // coordinator's hedged fetches and whole-request deadline are
    // exercised against exactly this handler. Compiles to nothing
    // without `failpoints`.
    if let Err(e) = om_fault::fail::inject("server.internal-store") {
        return Response::error(500, &e.to_string());
    }
    let Some(expect) = req.params.get("expect") else {
        return Response::error(400, "missing required parameter \"expect\"");
    };
    let Ok(expect) = expect.parse::<u64>() else {
        return Response::error(400, "parameter \"expect\" must be a non-negative integer");
    };
    let snapshot = om.store();
    if snapshot.generation() != expect {
        return Response::error(
            409,
            &format!(
                "store generation is {}, not the pinned {expect}; re-pin and retry",
                snapshot.generation()
            ),
        );
    }
    if let Some((generation, body)) = wire.encoded.lock().clone() {
        if generation == expect {
            return Response::json((*body).clone());
        }
    }
    // The codec writes only materialized pair cubes; force every pair so
    // the coordinator's merged store answers the same pair queries a
    // resident store would (lazily-built shards would otherwise ship
    // holes).
    let attrs = snapshot.attrs().to_vec();
    for (i, &a) in attrs.iter().enumerate() {
        // om-lint: allow(panic-path) — i < attrs.len() by the enumerate bound
        for &b in &attrs[i + 1..] {
            if let Err(e) = snapshot.pair(a, b) {
                return Response::error(500, &format!("pair materialization failed: {e}"));
            }
        }
    }
    let encoded = match encode_store(snapshot.store()) {
        Ok(bytes) => bytes,
        Err(e) => return Response::error(500, &format!("store encode failed: {e}")),
    };
    let body = Arc::new(
        InternalStoreResponse {
            generation: expect,
            store_b64: b64_encode(&encoded),
        }
        .encode(),
    );
    *wire.encoded.lock() = Some((expect, Arc::clone(&body)));
    Response::json((*body).clone())
}

/// Narrow the shard's base partition by resolved conditions, in order —
/// one bitmap AND per condition over the engine's counting kernel, no
/// record copies. The kernel indexes the same base dataset the old
/// record walk read, and [`PopulationSelector::narrow`] raises the same
/// errors `Dataset::sub_population` did, so wire responses (status and
/// message) are unchanged.
fn conditioned(
    om: &OpportunityMap,
    conditions: &[om_api::ConditionWire],
) -> Result<PopulationSelector, Response> {
    let kernel = om
        .kernel()
        .map_err(|e| Response::error(500, &format!("kernel unavailable: {e}")))?;
    let mut current = kernel.selector();
    for c in conditions {
        let attr = usize::try_from(c.attr)
            .map_err(|_| Response::error(400, "condition attr out of range"))?;
        let value = u32::try_from(c.value)
            .map_err(|_| Response::error(400, "condition value out of range"))?;
        current = current
            .narrow(attr, value)
            .map_err(|e| Response::error(422, &format!("condition failed: {e}")))?;
    }
    Ok(current)
}

fn level(req: &Request, om: &OpportunityMap) -> Response {
    let body = match InternalLevelRequest::parse(&req.body) {
        Ok(body) => body,
        Err(e) => return Response::error(400, &e),
    };
    let current = match conditioned(om, &body.conditions) {
        Ok(ds) => ds,
        Err(response) => return response,
    };
    let attrs = match body
        .attrs
        .iter()
        .map(|&a| usize::try_from(a))
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(attrs) => attrs,
        Err(_) => return Response::error(400, "level attr out of range"),
    };
    // Eager pairs: the codec writes only materialized pair cubes, and
    // the coordinator's merged level store must answer every pair query
    // a resident store would.
    let store = match current
        .build_store_eager(Some(attrs))
        .map_err(CompareError::Cube)
    {
        Ok(store) => store,
        Err(e) => return Response::error(422, &format!("level store failed: {e}")),
    };
    match encode_store(&store) {
        Ok(bytes) => Response::json(
            InternalLevelResponse {
                store_b64: b64_encode(&bytes),
            }
            .encode(),
        ),
        Err(e) => Response::error(500, &format!("level store encode failed: {e}")),
    }
}

fn count(req: &Request, om: &OpportunityMap) -> Response {
    let body = match InternalCountRequest::parse(&req.body) {
        Ok(body) => body,
        Err(e) => return Response::error(400, &e),
    };
    match conditioned(om, &body.conditions) {
        Ok(current) => Response::json(
            InternalCountResponse {
                count: current.count(),
            }
            .encode(),
        ),
        Err(response) => response,
    }
}

fn flush(om: &OpportunityMap, ingest: Option<&IngestHandle>) -> Response {
    if let Some(handle) = ingest {
        if let Err(e) = handle.flush() {
            return Response::error(500, &format!("flush failed: {e}"));
        }
    }
    // Without ingestion the store never moves; the initial generation is
    // trivially flushed.
    Response::json(
        InternalGenerationResponse {
            generation: om.store_generation(),
        }
        .encode(),
    )
}
