//! Size-bounded LRU cache for successful responses.
//!
//! Keys are canonicalized query strings ([`crate::http::Request::canonical_key`]),
//! so `/compare?v1=a&attr=X` and `/compare?attr=X&v1=a` share an entry.
//! Recency is a monotonically increasing stamp per access; eviction drops
//! the smallest stamp. Both indexes live under one `parking_lot::Mutex` —
//! the critical section is a couple of map operations, far cheaper than
//! the engine work a miss triggers.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::http::Response;

struct Inner {
    /// key → (response, stamp of last access).
    map: HashMap<String, (Arc<Response>, u64)>,
    /// stamp → key, ordered oldest first.
    order: BTreeMap<u64, String>,
    next_stamp: u64,
}

/// A thread-safe LRU response cache.
pub struct ResponseCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses; capacity 0 disables
    /// caching entirely.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                next_stamp: 0,
            }),
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Arc<Response>> {
        let mut inner = self.inner.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        let (response, old_stamp) = {
            let entry = inner.map.get_mut(key)?;
            let old = entry.1;
            entry.1 = stamp;
            (entry.0.clone(), old)
        };
        inner.order.remove(&old_stamp);
        inner.order.insert(stamp, key.to_owned());
        Some(response)
    }

    /// Insert `response` under `key`, evicting the least recently used
    /// entries while over capacity.
    pub fn insert(&self, key: String, response: Arc<Response>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        if let Some((_, old_stamp)) = inner.map.insert(key.clone(), (response, stamp)) {
            inner.order.remove(&old_stamp);
        }
        inner.order.insert(stamp, key);
        while inner.map.len() > self.capacity {
            // `order` mirrors `map`; if it ever ran dry we stop evicting
            // rather than panic a request worker.
            let Some((_, evicted)) = inner.order.pop_first() else {
                break;
            };
            inner.map.remove(&evicted);
        }
    }

    /// Entries currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(body: &str) -> Arc<Response> {
        Arc::new(Response::text(body))
    }

    #[test]
    fn hit_and_miss() {
        let cache = ResponseCache::new(4);
        assert!(cache.get("/a").is_none());
        cache.insert("/a".into(), resp("a"));
        assert_eq!(cache.get("/a").unwrap().body, "a");
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResponseCache::new(2);
        cache.insert("/a".into(), resp("a"));
        cache.insert("/b".into(), resp("b"));
        // Touch /a so /b becomes the LRU entry.
        assert!(cache.get("/a").is_some());
        cache.insert("/c".into(), resp("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("/a").is_some());
        assert!(cache.get("/b").is_none(), "/b should have been evicted");
        assert!(cache.get("/c").is_some());
    }

    #[test]
    fn reinsert_replaces_without_growth() {
        let cache = ResponseCache::new(2);
        cache.insert("/a".into(), resp("v1"));
        cache.insert("/a".into(), resp("v2"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("/a").unwrap().body, "v2");
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResponseCache::new(0);
        cache.insert("/a".into(), resp("a"));
        assert!(cache.is_empty());
        assert!(cache.get("/a").is_none());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(ResponseCache::new(8));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("/k{}", (t * 37 + i) % 12);
                        if let Some(hit) = cache.get(&key) {
                            assert_eq!(hit.body, key);
                        } else {
                            cache.insert(key.clone(), Arc::new(Response::text(key)));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 8);
    }
}
