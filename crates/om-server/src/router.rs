//! Request routing: decoded requests in, responses out.
//!
//! The router is a pure function of (request, engine) — no I/O, no
//! shared mutable state — which is what makes responses safely cacheable
//! and the whole path trivially testable without sockets.

use std::fmt::Write as _;

use om_compare::DrillConfig;
use om_cube::CubeView;
use om_engine::{Budget, EngineError, IngestHandle, OpportunityMap};
use om_gi::Trend;

use crate::http::{Request, Response};

/// Per-request routing context: the cooperative budget the engine runs
/// under, and what to tell shed/expired clients via `Retry-After`.
#[derive(Debug, Clone)]
pub struct RouteOptions {
    /// Deadline + cancellation for engine work on this request.
    pub budget: Budget,
    /// Seconds clients should wait before retrying after a `503`.
    pub retry_after_secs: u64,
    /// The server's counters, when handlers should record work-shaped
    /// metrics (exploration steps, truncations) that only they can see.
    /// `None` in embedded/test routing — recording is best-effort.
    pub metrics: Option<std::sync::Arc<crate::metrics::Metrics>>,
}

impl Default for RouteOptions {
    fn default() -> Self {
        Self {
            budget: Budget::unlimited(),
            retry_after_secs: 1,
            metrics: None,
        }
    }
}

/// JSON string escaping (mirrors `om_compare::json`, which keeps `esc`
/// private).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON-safe float rendering (NaN/Infinity → null).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Map engine failures onto HTTP statuses: unknown names are client
/// lookup errors (`404`); overload faults (deadline, cancellation) are
/// `503` with a `Retry-After` hint; injected faults are server-side
/// `500`s; everything else is a valid request the engine could not
/// satisfy (`422`).
fn engine_error(e: &EngineError, opts: &RouteOptions) -> Response {
    if e.is_overload() {
        return Response::error(503, &e.to_string()).with_retry_after(opts.retry_after_secs);
    }
    let status = match e {
        EngineError::Unknown(_) => 404,
        EngineError::Fault(_) => 500,
        _ => 422,
    };
    Response::error(status, &e.to_string())
}

fn compare(req: &Request, om: &OpportunityMap, opts: &RouteOptions) -> Result<Response, Response> {
    let attr = req.required("attr").map_err(|m| Response::error(400, &m))?;
    let v1 = req.required("v1").map_err(|m| Response::error(400, &m))?;
    let v2 = req.required("v2").map_err(|m| Response::error(400, &m))?;
    let class = req.required("class").map_err(|m| Response::error(400, &m))?;
    let result = om
        .run_compare_by_name(attr, v1, v2, class, om.exec_ctx(Some(&opts.budget)))
        .map_err(|e| engine_error(&e, opts))?;
    Ok(Response::json(om_compare::json::to_json(&result)))
}

fn drill(req: &Request, om: &OpportunityMap, opts: &RouteOptions) -> Result<Response, Response> {
    let attr = req.required("attr").map_err(|m| Response::error(400, &m))?;
    let v1 = req.required("v1").map_err(|m| Response::error(400, &m))?;
    let v2 = req.required("v2").map_err(|m| Response::error(400, &m))?;
    let class = req.required("class").map_err(|m| Response::error(400, &m))?;
    let defaults = DrillConfig::default();
    let config = DrillConfig {
        compare: om.config().compare.clone(),
        max_depth: req
            .parse_or("depth", defaults.max_depth)
            .map_err(|m| Response::error(400, &m))?,
        min_normalized_score: req
            .parse_or("min_score", defaults.min_normalized_score)
            .map_err(|m| Response::error(400, &m))?,
    };
    let levels = om
        .run_drill_down_by_name(attr, v1, v2, class, &config, om.exec_ctx(Some(&opts.budget)))
        .map_err(|e| engine_error(&e, opts))?;
    let mut body = String::with_capacity(1024);
    body.push_str("{\"levels\":[");
    for (i, level) in levels.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"conditions\":[");
        for (j, label) in level.condition_labels.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            let _ = write!(body, "\"{}\"", esc(label));
        }
        body.push_str("],\"result\":");
        body.push_str(&om_compare::json::to_json(&level.result));
        body.push('}');
    }
    body.push_str("]}");
    Ok(Response::json(body))
}

fn gi(req: &Request, om: &OpportunityMap, opts: &RouteOptions) -> Result<Response, Response> {
    let top = req
        .parse_or("top", 10usize)
        .map_err(|m| Response::error(400, &m))?;
    let report = om
        .run_general_impressions(om.exec_ctx(Some(&opts.budget)))
        .map_err(|e| engine_error(&e, opts))?;
    let mut body = String::with_capacity(2048);
    body.push_str("{\"trends\":[");
    let mut first = true;
    for t in &report.trends {
        let label = match t.trend {
            Trend::Increasing => "increasing",
            Trend::Decreasing => "decreasing",
            Trend::Stable => "stable",
            Trend::None => continue,
        };
        if !first {
            body.push(',');
        }
        first = false;
        let _ = write!(
            body,
            "{{\"attr\":\"{}\",\"class\":\"{}\",\"trend\":\"{label}\",\"slope\":{},\"r_squared\":{}}}",
            esc(&t.attr_name),
            esc(&t.class_label),
            num(t.slope),
            num(t.r_squared)
        );
    }
    body.push_str("],\"exceptions\":[");
    for (i, e) in report.exceptions.iter().take(top).enumerate() {
        if i > 0 {
            body.push(',');
        }
        let kind = match e.kind {
            om_gi::ExceptionKind::High => "high",
            om_gi::ExceptionKind::Low => "low",
        };
        let _ = write!(
            body,
            "{{\"attr\":\"{}\",\"value\":\"{}\",\"class\":\"{}\",\"kind\":\"{kind}\",\"confidence\":{},\"rest_confidence\":{},\"z\":{}}}",
            esc(&e.attr_name),
            esc(&e.value_label),
            esc(&e.class_label),
            num(e.confidence),
            num(e.rest_confidence),
            num(e.z)
        );
    }
    body.push_str("],\"influence\":[");
    for (i, r) in report.influence.iter().take(top).enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "{{\"attr\":\"{}\",\"chi2\":{},\"p_value\":{},\"info_gain\":{}}}",
            esc(&r.attr_name),
            num(r.chi2),
            num(r.p_value),
            num(r.info_gain)
        );
    }
    body.push_str("]}");
    Ok(Response::json(body))
}

fn one_dim_slice(
    om: &OpportunityMap,
    attr: usize,
    opts: &RouteOptions,
) -> Result<Response, Response> {
    let cube = om.store().one_dim(attr).map_err(|e| {
        engine_error(&EngineError::Unknown(format!("cube error: {e}")), opts)
    })?;
    let view = CubeView::from_cube(&cube)
        .map_err(|e| Response::error(422, &format!("cube error: {e}")))?;
    let mut body = String::with_capacity(1024);
    let _ = write!(
        body,
        "{{\"attr\":\"{}\",\"total\":{},\"classes\":[",
        esc(view.attr_name()),
        view.total()
    );
    for (i, c) in view.class_labels().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "\"{}\"", esc(c));
    }
    body.push_str("],\"values\":[");
    for v in 0..view.n_values() as u32 {
        if v > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "{{\"label\":\"{}\",\"total\":{},\"counts\":[",
            // om-lint: allow(panic-path) — v < n_values() == value_labels().len() by the loop bound
            esc(&view.value_labels()[v as usize]),
            view.value_total(v)
        );
        for c in 0..view.n_classes() as u32 {
            if c > 0 {
                body.push(',');
            }
            let _ = write!(body, "{}", view.count(v, c));
        }
        body.push_str("],\"confidences\":[");
        for c in 0..view.n_classes() as u32 {
            if c > 0 {
                body.push(',');
            }
            body.push_str(
                &view
                    .confidence(v, c)
                    .map_or("null".to_owned(), num),
            );
        }
        body.push_str("]}");
    }
    body.push_str("]}");
    Ok(Response::json(body))
}

fn pair_slice(om: &OpportunityMap, a: usize, b: usize) -> Result<Response, Response> {
    let cube = om
        .store()
        .pair(a, b)
        .map_err(|e| Response::error(404, &format!("cube error: {e}")))?;
    let mut body = String::with_capacity(2048);
    body.push_str("{\"dims\":[");
    for (i, dim) in cube.dims().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "{{\"attr\":\"{}\",\"labels\":[", esc(&dim.name));
        for (j, label) in dim.labels.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            let _ = write!(body, "\"{}\"", esc(label));
        }
        body.push_str("]}");
    }
    body.push_str("],\"classes\":[");
    for (i, c) in cube.class_labels().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "\"{}\"", esc(c));
    }
    let _ = write!(body, "],\"total\":{},\"cells\":[", cube.total());
    let mut first = true;
    for (coords, class, count) in cube.iter_cells() {
        if count == 0 {
            continue;
        }
        if !first {
            body.push(',');
        }
        first = false;
        let _ = write!(
            body,
            "{{\"coords\":[{},{}],\"class\":{class},\"count\":{count}}}",
            // om-lint: allow(panic-path) — slice cells are 2-D by CubeView construction
            coords[0], coords[1]
        );
    }
    body.push_str("]}");
    Ok(Response::json(body))
}

fn cube_slice(req: &Request, om: &OpportunityMap, opts: &RouteOptions) -> Result<Response, Response> {
    let attr_name = req.required("attr").map_err(|m| Response::error(400, &m))?;
    let attr = om.attr_index(attr_name).map_err(|e| engine_error(&e, opts))?;
    match req.params.get("by") {
        None => one_dim_slice(om, attr, opts),
        Some(by_name) => {
            let by = om.attr_index(by_name).map_err(|e| engine_error(&e, opts))?;
            pair_slice(om, attr, by)
        }
    }
}

/// `POST /ingest`: append the CSV body to the live store. All-or-nothing
/// per request — one bad row rejects the whole batch with `400` naming
/// the row. Accepted rows are WAL-durable before the `200`; the merge
/// into the served cubes is asynchronous, so `generation` in the reply
/// is the generation at append time, not necessarily the one that will
/// contain the rows.
fn ingest(
    req: &Request,
    handle: Option<&IngestHandle>,
    opts: &RouteOptions,
) -> Result<Response, Response> {
    let Some(handle) = handle else {
        return Err(Response::error(
            404,
            "live ingestion is not enabled (start the server with an ingest WAL)",
        ));
    };
    // Writes obey the same budget discipline as queries: an expired
    // deadline sheds the batch before any WAL I/O.
    opts.budget.check().map_err(|e| {
        Response::error(503, &e.to_string()).with_retry_after(opts.retry_after_secs)
    })?;
    match handle.append_csv(&req.body) {
        Ok(accepted) => {
            let stats = handle.stats();
            Ok(Response::json(format!(
                "{{\"accepted\":{accepted},\"rows_total\":{},\"generation\":{}}}",
                stats.rows_total, stats.store_generation
            )))
        }
        Err(e) if e.is_bad_request() => Err(Response::error(400, &e.to_string())),
        Err(e) => Err(Response::error(500, &e.to_string())),
    }
}

/// Route one parsed request under `opts`' budget. `metrics_body` is the
/// pre-rendered `/metrics` text (rendered by the caller, which owns the
/// counters); `ingest_handle` is `Some` when live ingestion is enabled.
#[must_use]
pub fn route(
    req: &Request,
    om: &OpportunityMap,
    ingest_handle: Option<&IngestHandle>,
    opts: &RouteOptions,
    metrics_body: impl FnOnce() -> String,
) -> Response {
    // The versioned API has its own dispatch, methods and error shape;
    // it runs against the EngineOps seam, here backed by the resident
    // engine (verbatim delegation, so answers are unchanged).
    if req.path.starts_with("/v1/") {
        let ops = crate::ops::EngineBackend {
            om,
            ingest: ingest_handle,
        };
        return crate::v1::route_v1(req, &ops, opts);
    }
    // The one non-GET legacy endpoint; everything else below is read-only.
    if req.path == "/ingest" {
        if req.method != "POST" {
            return Response::error(
                405,
                &format!("method {} not allowed for /ingest (use POST)", req.method),
            );
        }
        return ingest(req, ingest_handle, opts).unwrap_or_else(|error| error);
    }
    if req.method != "GET" {
        return Response::error(405, &format!("method {} not allowed", req.method));
    }
    let outcome = match req.path.as_str() {
        "/healthz" => Ok(Response::text("ok\n")),
        "/metrics" => Ok(Response::text(metrics_body())),
        "/compare" => compare(req, om, opts),
        "/drill" => drill(req, om, opts),
        "/gi" => gi(req, om, opts),
        "/cube/slice" => cube_slice(req, om, opts),
        other => Err(Response::error(404, &format!("no route for {other:?}"))),
    };
    outcome.unwrap_or_else(|error| error)
}

/// Route one request against a custom [`EngineOps`] backend (a cluster
/// coordinator): health, metrics and the versioned `/v1` API only. The
/// legacy GET query endpoints and `/ingest` are deliberately absent —
/// they predate the typed contract and stay single-node — so they 404
/// exactly like any unknown path.
#[must_use]
pub fn route_custom(
    req: &Request,
    ops: &dyn crate::ops::EngineOps,
    opts: &RouteOptions,
    metrics_body: impl FnOnce() -> String,
) -> Response {
    if req.path.starts_with("/v1/") {
        return crate::v1::route_v1(req, ops, opts);
    }
    match req.path.as_str() {
        "/healthz" | "/metrics" if req.method != "GET" => {
            Response::error(405, &format!("method {} not allowed", req.method))
        }
        "/healthz" => Response::text("ok\n"),
        "/metrics" => Response::text(metrics_body()),
        other => Response::error(404, &format!("no route for {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_engine::EngineConfig;
    use om_synth::paper_scenario;
    use std::collections::BTreeMap;
    use std::sync::OnceLock;

    fn engine() -> &'static OpportunityMap {
        static OM: OnceLock<OpportunityMap> = OnceLock::new();
        OM.get_or_init(|| {
            let (ds, _) = paper_scenario(20_000, 33);
            OpportunityMap::build(ds, EngineConfig::default()).unwrap()
        })
    }

    fn get(path: &str, params: &[(&str, &str)]) -> Response {
        get_with(path, params, &RouteOptions::default())
    }

    fn get_with(path: &str, params: &[(&str, &str)], opts: &RouteOptions) -> Response {
        let req = Request {
            method: "GET".into(),
            path: path.into(),
            params: params
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect::<BTreeMap<_, _>>(),
            body: String::new(),
        };
        route(&req, engine(), None, opts, || "metrics\n".to_owned())
    }

    fn post_ingest(
        om: &OpportunityMap,
        handle: Option<&IngestHandle>,
        body: &str,
        opts: &RouteOptions,
    ) -> Response {
        let req = Request {
            method: "POST".into(),
            path: "/ingest".into(),
            params: BTreeMap::new(),
            body: body.to_owned(),
        };
        route(&req, om, handle, opts, String::new)
    }

    /// Row 0 of the engine's discretized dataset as a CSV line (interval
    /// labels contain commas, so they go out quoted).
    fn csv_row_of(om: &OpportunityMap) -> String {
        let ds = om.dataset();
        (0..ds.schema().n_attributes())
            .map(|i| {
                let id = ds.column(i).as_categorical().expect("discretized")[0];
                let label = ds.schema().attribute(i).domain().label(id).unwrap();
                if label.contains(',') {
                    format!("\"{label}\"")
                } else {
                    label.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    #[test]
    fn healthz_and_metrics() {
        assert_eq!(get("/healthz", &[]).body, "ok\n");
        assert_eq!(get("/metrics", &[]).body, "metrics\n");
    }

    #[test]
    fn compare_matches_direct_engine_call() {
        let params = [
            ("attr", "PhoneModel"),
            ("v1", "ph1"),
            ("v2", "ph2"),
            ("class", "dropped"),
        ];
        let response = get("/compare", &params);
        assert_eq!(response.status, 200);
        let om = engine();
        let direct = om
            .run_compare_by_name("PhoneModel", "ph1", "ph2", "dropped", om.exec_ctx(None))
            .unwrap();
        assert_eq!(response.body, om_compare::json::to_json(&direct));
    }

    #[test]
    fn compare_missing_param_is_400() {
        let r = get("/compare", &[("attr", "PhoneModel")]);
        assert_eq!(r.status, 400);
        assert!(r.body.contains("v1"));
    }

    #[test]
    fn compare_unknown_name_is_404() {
        let r = get(
            "/compare",
            &[
                ("attr", "Bogus"),
                ("v1", "a"),
                ("v2", "b"),
                ("class", "dropped"),
            ],
        );
        assert_eq!(r.status, 404);
    }

    #[test]
    fn drill_returns_levels() {
        let r = get(
            "/drill",
            &[
                ("attr", "PhoneModel"),
                ("v1", "ph1"),
                ("v2", "ph2"),
                ("class", "dropped"),
                ("depth", "1"),
            ],
        );
        assert_eq!(r.status, 200);
        assert!(r.body.starts_with("{\"levels\":["));
        assert!(r.body.contains("\"conditions\":[]"));
    }

    #[test]
    fn gi_sections_present() {
        let r = get("/gi", &[("top", "3")]);
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"trends\":["));
        assert!(r.body.contains("\"exceptions\":["));
        assert!(r.body.contains("\"influence\":["));
    }

    #[test]
    fn gi_bad_top_is_400() {
        assert_eq!(get("/gi", &[("top", "lots")]).status, 400);
    }

    #[test]
    fn cube_slice_one_dim() {
        let r = get("/cube/slice", &[("attr", "PhoneModel")]);
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"attr\":\"PhoneModel\""));
        assert!(r.body.contains("\"label\":\"ph1\""));
        assert!(r.body.contains("\"confidences\":["));
    }

    #[test]
    fn cube_slice_pair() {
        let r = get(
            "/cube/slice",
            &[("attr", "PhoneModel"), ("by", "TimeOfCall")],
        );
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"dims\":["));
        assert!(r.body.contains("\"cells\":["));
    }

    #[test]
    fn cube_slice_same_attr_pair_is_422() {
        let r = get(
            "/cube/slice",
            &[("attr", "PhoneModel"), ("by", "PhoneModel")],
        );
        assert_eq!(r.status, 404, "store rejects the self-pair: {}", r.body);
    }

    #[test]
    fn unknown_route_is_404() {
        assert_eq!(get("/nope", &[]).status, 404);
    }

    #[test]
    fn non_get_is_405() {
        let req = Request {
            method: "POST".into(),
            path: "/healthz".into(),
            params: BTreeMap::new(),
            body: String::new(),
        };
        let r = route(&req, engine(), None, &RouteOptions::default(), String::new);
        assert_eq!(r.status, 405);
    }

    #[test]
    fn ingest_without_handle_is_404_and_get_is_405() {
        let r = post_ingest(engine(), None, "x", &RouteOptions::default());
        assert_eq!(r.status, 404);
        assert!(r.body.contains("not enabled"));
        let req = Request {
            method: "GET".into(),
            path: "/ingest".into(),
            params: BTreeMap::new(),
            body: String::new(),
        };
        let r = route(&req, engine(), None, &RouteOptions::default(), String::new);
        assert_eq!(r.status, 405);
        assert!(r.body.contains("POST"));
    }

    #[test]
    fn ingest_roundtrip_bad_rows_and_budget() {
        use om_engine::IngestConfig;
        // A private engine: ingesting into the shared static one would
        // shift the ground under the other routing tests.
        let (ds, _) = paper_scenario(5_000, 7);
        let om = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
        let dir = std::env::temp_dir().join(format!("om-route-ingest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handle = om
            .start_ingest(&IngestConfig {
                sync_writes: false,
                ..IngestConfig::new(&dir)
            })
            .unwrap();
        let opts = RouteOptions::default();

        let row = csv_row_of(&om);
        let ok = post_ingest(&om, Some(&handle), &format!("{row}\n{row}\n"), &opts);
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert!(ok.body.contains("\"accepted\":2"), "{}", ok.body);
        assert!(ok.body.contains("\"generation\":"), "{}", ok.body);

        let bad = post_ingest(
            &om,
            Some(&handle),
            &format!("{row}\nnot,nearly,enough\n"),
            &opts,
        );
        assert_eq!(bad.status, 400, "{}", bad.body);
        assert!(bad.body.contains("row 2"), "{}", bad.body);
        assert_eq!(handle.stats().rows_total, 2, "bad batch committed nothing");

        let spent = RouteOptions {
            budget: Budget::with_timeout(std::time::Duration::ZERO),
            retry_after_secs: 3,
            ..RouteOptions::default()
        };
        let shed = post_ingest(&om, Some(&handle), &row, &spent);
        assert_eq!(shed.status, 503, "{}", shed.body);
        assert_eq!(shed.retry_after, Some(3));

        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_budget_is_503_with_retry_after() {
        let opts = RouteOptions {
            budget: Budget::with_timeout(std::time::Duration::ZERO),
            retry_after_secs: 7,
            ..RouteOptions::default()
        };
        for (path, params) in [
            (
                "/compare",
                &[
                    ("attr", "PhoneModel"),
                    ("v1", "ph1"),
                    ("v2", "ph2"),
                    ("class", "dropped"),
                ][..],
            ),
            ("/gi", &[][..]),
        ] {
            let r = get_with(path, params, &opts);
            assert_eq!(r.status, 503, "{path}: {}", r.body);
            assert_eq!(r.retry_after, Some(7), "{path}");
            assert!(r.body.contains("deadline exceeded"), "{path}: {}", r.body);
        }
    }

    #[test]
    fn expired_budget_leaves_cheap_routes_alone() {
        let opts = RouteOptions {
            budget: Budget::with_timeout(std::time::Duration::ZERO),
            retry_after_secs: 1,
            ..RouteOptions::default()
        };
        assert_eq!(get_with("/healthz", &[], &opts).status, 200);
        assert_eq!(get_with("/metrics", &[], &opts).status, 200);
        // Cube slices read precomputed counts — no engine budget needed.
        let r = get_with("/cube/slice", &[("attr", "PhoneModel")], &opts);
        assert_eq!(r.status, 200);
    }
}
