//! Deterministic chaos tests: failpoints inject delays, errors and
//! panics into the request path, and the suite asserts the server sheds,
//! times out, isolates and drains exactly as designed.
//!
//! Only built with `--features failpoints`; the registry is
//! process-global, so every test serializes on one mutex and disarms
//! its failpoints on exit (even when the assertion panics).
#![cfg(feature = "failpoints")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use om_engine::{EngineConfig, OpportunityMap};
use om_fault::fail::{self, Action};
use om_server::{Server, ServerConfig};
use om_synth::paper_scenario;

/// Serializes chaos tests and resets the failpoint registry when the
/// test ends, panicking or not.
struct ChaosGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        fail::reset();
    }
}

fn chaos() -> ChaosGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    // A failed assertion in a previous test poisons the mutex; the
    // guarded state is unit, so recovery is always safe.
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fail::reset();
    ChaosGuard(guard)
}

fn engine() -> Arc<OpportunityMap> {
    static OM: OnceLock<Arc<OpportunityMap>> = OnceLock::new();
    Arc::clone(OM.get_or_init(|| {
        let (ds, _) = paper_scenario(20_000, 33);
        Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap())
    }))
}

/// One raw request; returns (status, full head, body).
fn request(addr: std::net::SocketAddr, target: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {response:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, head.to_owned(), body.to_owned())
}

const COMPARE: &str = "/compare?attr=PhoneModel&v1=ph1&v2=ph2&class=dropped";

#[test]
fn expensive_query_times_out_while_cheap_queries_succeed() {
    let _chaos = chaos();
    // Every per-attribute step of a comparison stalls 30ms; with a 150ms
    // budget the deadline trips after ~5 attributes.
    fail::configure("compare.attr", Action::Delay(Duration::from_millis(30)));
    let budget = Duration::from_millis(150);
    let server = Server::start(
        engine(),
        ServerConfig {
            engine_budget: Some(budget),
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Cheap queries on other workers stay fast throughout.
    let cheap: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let (status, _, body) = request(addr, "/healthz");
                    assert_eq!(status, 200, "{body}");
                    let (status, _, _) = request(addr, "/cube/slice?attr=PhoneModel");
                    assert_eq!(status, 200);
                }
            })
        })
        .collect();

    let started = Instant::now();
    let (status, head, body) = request(addr, COMPARE);
    let elapsed = started.elapsed();
    assert_eq!(status, 503, "{body}");
    assert!(head.contains("Retry-After:"), "{head}");
    assert!(body.contains("deadline exceeded"), "{body}");
    assert!(
        elapsed < 2 * budget,
        "503 took {elapsed:?}, over twice the {budget:?} budget"
    );

    for h in cheap {
        h.join().unwrap();
    }
    assert!(server.metrics().deadline_exceeded() >= 1);
    server.shutdown();
}

#[test]
fn injected_panic_is_500_and_the_worker_pool_survives() {
    let _chaos = chaos();
    let server = Server::start(
        engine(),
        ServerConfig {
            n_workers: 1, // one worker: a lost thread would hang the test
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    fail::configure("server.respond", Action::Panic("chaos".into()));
    for _ in 0..3 {
        let (status, _, body) = request(addr, "/healthz");
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("panicked"), "{body}");
    }

    // Disarmed, the same (sole) worker keeps serving.
    fail::remove("server.respond");
    let (status, _, body) = request(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert_eq!(server.metrics().panics_caught(), 3);
    let (_, _, metrics) = request(addr, "/metrics");
    assert!(metrics.contains("om_panics_caught_total 3"), "{metrics}");
    server.shutdown();
}

#[test]
fn injected_error_is_500_with_the_injected_message() {
    let _chaos = chaos();
    fail::configure("engine.compare", Action::Error("chaos wire fault".into()));
    let server = Server::start(
        engine(),
        ServerConfig {
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let (status, _, body) = request(server.local_addr(), COMPARE);
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("chaos wire fault"), "{body}");
    server.shutdown();
}

#[test]
fn full_admission_queue_sheds_overflow_with_503() {
    let _chaos = chaos();
    // One worker stalled 400ms per request and a single queue slot: of
    // six concurrent comparisons, at most two can be served promptly and
    // the rest must be shed at admission.
    fail::configure("engine.compare", Action::Delay(Duration::from_millis(400)));
    let server = Server::start(
        engine(),
        ServerConfig {
            n_workers: 1,
            queue_capacity: 1,
            cache_capacity: 0,
            retry_after_secs: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let clients: Vec<_> = (0..6)
        .map(|_| std::thread::spawn(move || request(addr, COMPARE)))
        .collect();
    let results: Vec<_> = clients.into_iter().map(|h| h.join().unwrap()).collect();

    let served = results.iter().filter(|(s, _, _)| *s == 200).count();
    let shed: Vec<_> = results.iter().filter(|(s, _, _)| *s == 503).collect();
    assert!(served >= 1, "at least one comparison must be served");
    assert!(
        shed.len() >= 3,
        "expected most of 6 clients shed, got {} (statuses: {:?})",
        shed.len(),
        results.iter().map(|(s, _, _)| s).collect::<Vec<_>>()
    );
    for (_, head, body) in &shed {
        assert!(head.contains("Retry-After: 2\r\n"), "{head}");
        assert!(body.contains("admission queue full"), "{body}");
    }
    assert_eq!(served + shed.len(), 6, "no other statuses expected");
    assert_eq!(server.metrics().shed(), shed.len() as u64);
    assert_eq!(server.metrics().queue_depth(), 0);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_queued_requests() {
    let _chaos = chaos();
    fail::configure("engine.compare", Action::Delay(Duration::from_millis(200)));
    let server = Server::start(
        engine(),
        ServerConfig {
            n_workers: 1,
            queue_capacity: 4,
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // One request being served, one parked in the admission queue.
    let clients: Vec<_> = (0..2)
        .map(|_| std::thread::spawn(move || request(addr, COMPARE)))
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    // Shutdown starts while both are in flight; the drain must answer
    // the queued one too, not drop it.
    server.shutdown();
    for h in clients {
        let (status, _, body) = h.join().unwrap();
        assert_eq!(status, 200, "in-flight request dropped at shutdown: {body}");
    }
}

#[test]
fn injected_decode_faults_surface_as_typed_errors() {
    let _chaos = chaos();
    let (ds, _) = paper_scenario(500, 7);
    let store =
        om_cube::CubeStore::build(&ds, &om_cube::StoreBuildOptions::default()).unwrap();
    let blob = om_cube::persist::encode_store(&store).unwrap();

    fail::configure("store.decode", Action::Error("disk bit rot".into()));
    let err = match om_cube::persist::decode_store(blob.clone()) {
        Err(e) => e,
        Ok(_) => panic!("armed store.decode failpoint did not fire"),
    };
    assert!(matches!(err, om_data::DataError::Decode(_)), "{err}");
    assert!(err.to_string().contains("disk bit rot"));

    // Disarmed, the same bytes decode fine — the fault was injected, not
    // a real corruption.
    fail::remove("store.decode");
    let roundtrip = om_cube::persist::decode_store(blob).unwrap();
    assert_eq!(roundtrip.attrs(), store.attrs());
}
