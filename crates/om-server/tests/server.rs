//! End-to-end tests: a real server on an ephemeral port, exercised by
//! real TCP clients.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use om_engine::{EngineConfig, OpportunityMap};
use om_server::{Server, ServerConfig};
use om_synth::paper_scenario;

/// One engine shared by every test in the binary (building cubes over
/// 20k records once keeps the suite fast).
fn engine() -> Arc<OpportunityMap> {
    use std::sync::OnceLock;
    static OM: OnceLock<Arc<OpportunityMap>> = OnceLock::new();
    Arc::clone(OM.get_or_init(|| {
        let (ds, _) = paper_scenario(20_000, 33);
        Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap())
    }))
}

fn start_server() -> Server {
    Server::start(
        engine(),
        ServerConfig {
            request_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Issue one raw request and return (status, headers, body).
fn raw_request_full(addr: std::net::SocketAddr, raw: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {response:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, head.to_owned(), body.to_owned())
}

/// Issue one raw request and return (status, body).
fn raw_request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let (status, _, body) = raw_request_full(addr, raw);
    (status, body)
}

fn get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    raw_request(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n"),
    )
}

#[test]
fn unknown_path_upload_gets_404_without_draining_the_body() {
    // A server with a raised upload allowance: POSTing a body declared
    // far beyond the stock 1 MiB cap at a path nothing serves must be
    // answered (404) from the head alone — the server never waits for
    // the body a 404 would not read.
    let server = Server::start(
        engine(),
        ServerConfig {
            request_timeout: Duration::from_secs(5),
            max_body_bytes: 64 << 20,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(
            format!(
                "POST /v1/nope HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
                48 << 20
            )
            .as_bytes(),
        )
        .unwrap();
    // Send nothing further and read the response directly (the server
    // keeps the socket open briefly for its politeness drain, so don't
    // wait for close). With the pre-fix behavior the server would sit
    // in the body read until its 5 s timeout and this 2 s client read
    // would expire empty-handed.
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut response = String::new();
    let mut buf = [0u8; 4096];
    while !response.contains("\r\n\r\n") || !response.ends_with('}') {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => response.push_str(std::str::from_utf8(&buf[..n]).unwrap()),
        }
    }
    assert!(
        response.starts_with("HTTP/1.1 404"),
        "expected a head-only 404: {response:?}"
    );
    assert!(response.contains("not_found"), "{response:?}");
    server.shutdown();
}

#[test]
fn healthz_answers() {
    let server = start_server();
    let (status, body) = get(server.local_addr(), "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    server.shutdown();
}

#[test]
fn compare_matches_direct_engine_call() {
    let server = start_server();
    let (status, body) = get(
        server.local_addr(),
        "/compare?attr=PhoneModel&v1=ph1&v2=ph2&class=dropped",
    );
    assert_eq!(status, 200);
    let direct = engine()
        .run_compare_by_name("PhoneModel", "ph1", "ph2", "dropped", engine().exec_ctx(None))
        .unwrap();
    assert_eq!(body, om_compare::json::to_json(&direct));
    server.shutdown();
}

#[test]
fn gi_and_cube_slice_match_direct_calls() {
    let server = start_server();
    let addr = server.local_addr();

    let (status, gi_body) = get(addr, "/gi?top=5");
    assert_eq!(status, 200);
    let report = engine().run_general_impressions(engine().exec_ctx(None)).unwrap();
    // Spot-check against the direct engine report: the top influence
    // attribute's name must appear in the JSON.
    assert!(gi_body.contains(&format!("\"attr\":\"{}\"", report.influence[0].attr_name)));
    assert!(gi_body.contains("\"trends\":["));

    let (status, slice_body) = get(addr, "/cube/slice?attr=PhoneModel");
    assert_eq!(status, 200);
    let cube = engine()
        .store()
        .one_dim(engine().attr_index("PhoneModel").unwrap())
        .unwrap();
    let view = om_cube::CubeView::from_cube(&cube).unwrap();
    assert!(slice_body.contains(&format!("\"total\":{}", view.total())));
    for label in view.value_labels() {
        assert!(slice_body.contains(&format!("\"label\":\"{label}\"")));
    }
    server.shutdown();
}

#[test]
fn drill_answers_with_levels() {
    let server = start_server();
    let (status, body) = get(
        server.local_addr(),
        "/drill?attr=PhoneModel&v1=ph1&v2=ph2&class=dropped&depth=1",
    );
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"levels\":["));
    server.shutdown();
}

#[test]
fn malformed_requests_get_400_and_server_survives() {
    let server = start_server();
    let addr = server.local_addr();

    let (status, body) = raw_request(addr, "BLARGH\r\n\r\n");
    assert_eq!(status, 400, "{body}");

    let (status, _) = raw_request(addr, "GET /x HTTP/9.9\r\n\r\n");
    assert_eq!(status, 400);

    let (status, _) = raw_request(addr, "GET /compare?a=%zz HTTP/1.1\r\n\r\n");
    assert_eq!(status, 400);

    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
    let (status, _) = raw_request(addr, &long);
    assert_eq!(status, 400);

    let (status, _) = raw_request(addr, "POST /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status, 405);

    // The process is still alive and serving.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "ok\n");
    server.shutdown();
}

#[test]
fn missing_params_and_unknown_names() {
    let server = start_server();
    let addr = server.local_addr();
    assert_eq!(get(addr, "/compare?attr=PhoneModel").0, 400);
    assert_eq!(
        get(addr, "/compare?attr=Nope&v1=a&v2=b&class=dropped").0,
        404
    );
    assert_eq!(get(addr, "/no/such/route").0, 404);
    server.shutdown();
}

#[test]
fn metrics_reflect_requests_and_cache() {
    let server = start_server();
    let addr = server.local_addr();

    let target = "/compare?attr=PhoneModel&v1=ph1&v2=ph2&class=dropped";
    let (_, cold) = get(addr, target);
    let (_, warm) = get(addr, target);
    assert_eq!(cold, warm, "cache must not change the answer");
    let _ = get(addr, "/healthz");
    let _ = get(addr, "/no/such/route");

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("om_requests_total{endpoint=\"compare\"} 2"),
        "{metrics}"
    );
    assert!(metrics.contains("om_requests_total{endpoint=\"healthz\"} 1"));
    assert!(metrics.contains("om_requests_total{endpoint=\"other\"} 1"));
    // Only the cold /compare consulted the cache; /healthz and the 404
    // bypass it entirely.
    assert!(metrics.contains("om_cache_misses_total 1"), "{metrics}");
    assert!(metrics.contains("om_cache_hits_total 1"), "{metrics}");
    assert!(metrics.contains("om_errors_total 1"), "{metrics}");
    // 4 requests recorded by the time /metrics renders itself.
    assert!(metrics.contains("om_latency_samples_total 4"), "{metrics}");
    assert!(metrics.contains("om_latency_us{quantile=\"0.99\"}"));
    server.shutdown();
}

#[test]
fn stalled_request_times_out_with_408() {
    let server = Server::start(
        engine(),
        ServerConfig {
            request_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Send half a request line and stall.
    stream.write_all(b"GET /healthz HT").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 408 "),
        "expected 408, got {response:?}"
    );
    server.shutdown();
}

#[test]
fn eight_concurrent_clients_get_correct_answers() {
    let server = start_server();
    let addr = server.local_addr();
    let expected = om_compare::json::to_json(
        &engine()
            .run_compare_by_name("PhoneModel", "ph1", "ph2", "dropped", engine().exec_ctx(None))
            .unwrap(),
    );

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                for round in 0..5 {
                    // Every thread alternates endpoints so the cache and
                    // the engine path both see concurrency.
                    if (i + round) % 2 == 0 {
                        let (status, body) =
                            get(addr, "/compare?attr=PhoneModel&v1=ph1&v2=ph2&class=dropped");
                        assert_eq!(status, 200);
                        assert_eq!(body, expected);
                    } else {
                        let (status, body) = get(addr, "/healthz");
                        assert_eq!(status, 200);
                        assert_eq!(body, "ok\n");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let metrics = server.metrics();
    assert_eq!(
        metrics.requests(om_server::metrics::Endpoint::Compare)
            + metrics.requests(om_server::metrics::Endpoint::Healthz),
        40
    );
    assert_eq!(metrics.errors(), 0);
    server.shutdown();
}

#[test]
fn exhausted_engine_budget_is_503_with_retry_after() {
    // A zero budget expires before any engine work: every engine-backed
    // endpoint must answer 503 + Retry-After while cheap liveness
    // endpoints keep working.
    let server = Server::start(
        engine(),
        ServerConfig {
            engine_budget: Some(Duration::ZERO),
            retry_after_secs: 3,
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let (status, head, body) = raw_request_full(
        addr,
        "GET /compare?attr=PhoneModel&v1=ph1&v2=ph2&class=dropped HTTP/1.1\r\n\r\n",
    );
    assert_eq!(status, 503, "{body}");
    assert!(head.contains("Retry-After: 3\r\n"), "{head}");
    assert!(body.contains("deadline exceeded"), "{body}");

    assert_eq!(get(addr, "/gi").0, 503);
    assert_eq!(get(addr, "/healthz").0, 200);

    let (_, metrics) = get(addr, "/metrics");
    assert!(
        metrics.contains("om_deadline_exceeded_total 2"),
        "{metrics}"
    );
    assert!(metrics.contains("om_shed_total 0"), "{metrics}");
    server.shutdown();
}

#[test]
fn generous_budget_does_not_change_answers() {
    let server = Server::start(
        engine(),
        ServerConfig {
            engine_budget: Some(Duration::from_secs(30)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let (status, body) = get(
        server.local_addr(),
        "/compare?attr=PhoneModel&v1=ph1&v2=ph2&class=dropped",
    );
    assert_eq!(status, 200);
    let direct = engine()
        .run_compare_by_name("PhoneModel", "ph1", "ph2", "dropped", engine().exec_ctx(None))
        .unwrap();
    assert_eq!(body, om_compare::json::to_json(&direct));
    server.shutdown();
}

#[test]
fn live_ingestion_end_to_end() {
    use om_engine::IngestConfig;

    // A private engine: these rows must not leak into the shared one.
    let (ds, _) = paper_scenario(5_000, 11);
    let om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
    let wal_dir = std::env::temp_dir().join(format!("om-server-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let handle = om
        .start_ingest(&IngestConfig {
            seal_rows: 64,
            sync_writes: false,
            ..IngestConfig::new(&wal_dir)
        })
        .unwrap();
    let server = Server::start_with_ingest(
        Arc::clone(&om),
        ServerConfig {
            request_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
        Some(handle.clone()),
    )
    .unwrap();
    let addr = server.local_addr();

    // Warm the response cache against generation 0.
    let (status, before) = get(addr, "/cube/slice?attr=PhoneModel");
    assert_eq!(status, 200);
    assert!(before.contains("\"total\":5000"), "{before}");

    // Row 0 of the discretized dataset, as the CSV a client would POST
    // (interval bin labels contain commas, hence the quoting).
    let dataset = om.dataset();
    let row = (0..dataset.schema().n_attributes())
        .map(|i| {
            let id = dataset.column(i).as_categorical().unwrap()[0];
            let label = dataset.schema().attribute(i).domain().label(id).unwrap();
            if label.contains(',') {
                format!("\"{label}\"")
            } else {
                label.to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join(",");
    let body = format!("{row}\n{row}\n{row}\n");
    let (status, reply) = raw_request(
        addr,
        &format!(
            "POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"accepted\":3"), "{reply}");

    // A malformed batch is a 400 naming the row, and commits nothing.
    let bad = "such,garbage\n";
    let (status, reply) = raw_request(
        addr,
        &format!(
            "POST /ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n{bad}",
            bad.len()
        ),
    );
    assert_eq!(status, 400, "{reply}");
    assert!(reply.contains("row 1"), "{reply}");

    // GET on /ingest is a 405 even with ingestion enabled.
    assert_eq!(get(addr, "/ingest").0, 405);

    // Force the pipeline through seal + merge + publish, then the served
    // counts must include the rows (the generation-scoped cache key
    // retires the warmed generation-0 entry).
    handle.flush().unwrap();
    let (status, after) = get(addr, "/cube/slice?attr=PhoneModel");
    assert_eq!(status, 200);
    assert!(after.contains("\"total\":5003"), "{after}");

    let (_, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("om_ingest_rows_total 3"), "{metrics}");
    assert!(metrics.contains("om_ingest_segments_sealed_total 1"), "{metrics}");
    assert!(metrics.contains("om_compactions_total 1"), "{metrics}");
    assert!(metrics.contains("om_store_generation 1"), "{metrics}");
    assert!(metrics.contains("om_wal_bytes"), "{metrics}");
    assert!(
        metrics.contains("om_requests_total{endpoint=\"ingest\"} 3"),
        "{metrics}"
    );

    server.shutdown();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn graceful_shutdown_drains_in_flight_request() {
    let server = start_server();
    let addr = server.local_addr();

    // Open a connection and send only half the request, so a worker is
    // parked inside the read when shutdown begins.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\nHo").unwrap();
    // Give the accept loop time to hand the socket to a worker.
    std::thread::sleep(Duration::from_millis(100));

    let shutdown_thread = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(100));

    // Finish the request *after* shutdown started: the worker must still
    // answer it before exiting.
    stream.write_all(b"st: x\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "in-flight request was dropped: {response:?}"
    );
    assert!(response.ends_with("ok\n"));

    shutdown_thread.join().unwrap();

    // And afterwards the port is really closed.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // The OS may accept briefly on some platforms; a request on
            // such a zombie connection must at least go unanswered.
            let mut s = TcpStream::connect(addr).unwrap();
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap_or(0);
            out.is_empty()
        },
        "server still answering after shutdown"
    );
}
