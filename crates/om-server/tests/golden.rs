//! Golden-file wire tests: every legacy and `/v1` response shape is
//! pinned byte-for-byte against files under `tests/golden/`.
//!
//! Regenerate after an intentional wire change with
//! `OM_UPDATE_GOLDEN=1 cargo test -p om-server --test golden`.
//! A diff in these files in review *is* the API change.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::OnceLock;

use om_engine::{Budget, EngineConfig, OpportunityMap};
use om_server::http::{Request, Response};
use om_server::router::{self, RouteOptions};
use om_synth::paper_scenario;

fn engine() -> &'static OpportunityMap {
    static OM: OnceLock<OpportunityMap> = OnceLock::new();
    OM.get_or_init(|| {
        let (ds, _) = paper_scenario(20_000, 33);
        OpportunityMap::build(ds, EngineConfig::default()).unwrap()
    })
}

fn get(path: &str, params: &[(&str, &str)]) -> Response {
    let req = Request {
        method: "GET".into(),
        path: path.into(),
        params: params
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect::<BTreeMap<_, _>>(),
        body: String::new(),
    };
    route(&req, &RouteOptions::default())
}

fn post(path: &str, body: &str) -> Response {
    post_with(path, body, &RouteOptions::default())
}

fn post_with(path: &str, body: &str, opts: &RouteOptions) -> Response {
    let req = Request {
        method: "POST".into(),
        path: path.into(),
        params: BTreeMap::new(),
        body: body.to_owned(),
    };
    route(&req, opts)
}

fn route(req: &Request, opts: &RouteOptions) -> Response {
    router::route(req, engine(), None, opts, || "metrics\n".to_owned())
}

/// Compare `actual` against `tests/golden/<name>`, or rewrite the file
/// when `OM_UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("OM_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden file {name}; regenerate with OM_UPDATE_GOLDEN=1")
    });
    assert_eq!(
        actual, expected,
        "wire shape drifted from tests/golden/{name}; \
         if intentional, regenerate with OM_UPDATE_GOLDEN=1"
    );
}

const COMPARE_PARAMS: [(&str, &str); 4] = [
    ("attr", "PhoneModel"),
    ("v1", "ph1"),
    ("v2", "ph2"),
    ("class", "dropped"),
];

const V1_COMPARE_BODY: &str =
    r#"{"attr":"PhoneModel","v1":"ph1","v2":"ph2","class":"dropped"}"#;

#[test]
fn legacy_compare_shape() {
    let r = get("/compare", &COMPARE_PARAMS);
    assert_eq!(r.status, 200);
    check_golden("legacy_compare.json", &r.body);
}

#[test]
fn legacy_drill_shape() {
    let mut params = COMPARE_PARAMS.to_vec();
    params.push(("depth", "1"));
    let r = get("/drill", &params);
    assert_eq!(r.status, 200);
    check_golden("legacy_drill.json", &r.body);
}

#[test]
fn legacy_gi_shape() {
    let r = get("/gi", &[("top", "3")]);
    assert_eq!(r.status, 200);
    check_golden("legacy_gi.json", &r.body);
}

#[test]
fn legacy_slice_shapes() {
    let one = get("/cube/slice", &[("attr", "PhoneModel")]);
    assert_eq!(one.status, 200);
    check_golden("legacy_slice_one_dim.json", &one.body);
    let pair = get(
        "/cube/slice",
        &[("attr", "PhoneModel"), ("by", "TimeOfCall")],
    );
    assert_eq!(pair.status, 200);
    check_golden("legacy_slice_pair.json", &pair.body);
}

#[test]
fn legacy_error_shape() {
    let r = get(
        "/compare",
        &[("attr", "Bogus"), ("v1", "a"), ("v2", "b"), ("class", "dropped")],
    );
    assert_eq!(r.status, 404);
    check_golden("legacy_error_unknown.json", &r.body);
}

#[test]
fn v1_compare_shape_matches_legacy_bytes() {
    let v1 = post("/v1/compare", V1_COMPARE_BODY);
    assert_eq!(v1.status, 200);
    check_golden("v1_compare.json", &v1.body);
    let legacy = get("/compare", &COMPARE_PARAMS);
    assert_eq!(v1.body, legacy.body, "v1 compare body must be byte-identical to legacy");
    let parsed = om_api::CompareResponse::parse(&v1.body).unwrap();
    assert_eq!(parsed.encode(), v1.body, "om-api round-trip must be lossless");
}

#[test]
fn v1_drill_shape_matches_legacy_bytes() {
    let v1 = post(
        "/v1/drill",
        r#"{"attr":"PhoneModel","v1":"ph1","v2":"ph2","class":"dropped","depth":1}"#,
    );
    assert_eq!(v1.status, 200);
    check_golden("v1_drill.json", &v1.body);
    let mut params = COMPARE_PARAMS.to_vec();
    params.push(("depth", "1"));
    let legacy = get("/drill", &params);
    assert_eq!(v1.body, legacy.body, "v1 drill body must be byte-identical to legacy");
    let parsed = om_api::DrillResponse::parse(&v1.body).unwrap();
    assert_eq!(parsed.encode(), v1.body);
}

#[test]
fn v1_drill_with_fixed_path() {
    let v1 = post(
        "/v1/drill",
        r#"{"attr":"PhoneModel","v1":"ph1","v2":"ph2","class":"dropped","path":[{"attr":"TimeOfCall","value":"evening"}]}"#,
    );
    assert_eq!(v1.status, 200, "{}", v1.body);
    check_golden("v1_drill_path.json", &v1.body);
    let parsed = om_api::DrillResponse::parse(&v1.body).unwrap();
    assert_eq!(parsed.levels.len(), 2, "root + one pinned condition");
    assert_eq!(parsed.levels[1].conditions, vec!["TimeOfCall=evening".to_owned()]);
    assert_eq!(parsed.encode(), v1.body);
}

#[test]
fn v1_gi_shape_matches_legacy_bytes() {
    let v1 = post("/v1/gi", r#"{"top":3}"#);
    assert_eq!(v1.status, 200);
    check_golden("v1_gi.json", &v1.body);
    let legacy = get("/gi", &[("top", "3")]);
    assert_eq!(v1.body, legacy.body, "v1 gi body must be byte-identical to legacy");
    let parsed = om_api::GiResponse::parse(&v1.body).unwrap();
    assert_eq!(parsed.encode(), v1.body);
}

#[test]
fn v1_slice_shapes_match_legacy_bytes() {
    let one = post("/v1/cube/slice", r#"{"attr":"PhoneModel"}"#);
    assert_eq!(one.status, 200);
    check_golden("v1_slice_one_dim.json", &one.body);
    assert_eq!(one.body, get("/cube/slice", &[("attr", "PhoneModel")]).body);
    assert_eq!(om_api::SliceResponse::parse(&one.body).unwrap().encode(), one.body);

    let pair = post("/v1/cube/slice", r#"{"attr":"PhoneModel","by":"TimeOfCall"}"#);
    assert_eq!(pair.status, 200);
    check_golden("v1_slice_pair.json", &pair.body);
    assert_eq!(
        pair.body,
        get("/cube/slice", &[("attr", "PhoneModel"), ("by", "TimeOfCall")]).body
    );
    assert_eq!(om_api::SliceResponse::parse(&pair.body).unwrap().encode(), pair.body);
}

#[test]
fn v1_batch_shape() {
    let body = r#"{"items":[{"kind":"compare","attr":"PhoneModel","v1":"ph1","v2":"ph2","class":"dropped"},{"kind":"drill","attr":"PhoneModel","v1":"ph1","v2":"ph2","class":"dropped","path":[{"attr":"TimeOfCall","value":"evening"}]},{"kind":"compare","attr":"Bogus","v1":"a","v2":"b","class":"dropped"}]}"#;
    let r = post("/v1/compare/batch", body);
    assert_eq!(r.status, 200, "{}", r.body);
    check_golden("v1_batch.json", &r.body);

    let parsed = om_api::BatchResponse::parse(&r.body).unwrap();
    assert_eq!(parsed.items.len(), 3);
    assert_eq!(parsed.encode(), r.body);
    // Item results line up with their single-endpoint twins.
    let om_api::BatchItemResult::Compare(c) = &parsed.items[0] else {
        panic!("item 1 should be a comparison")
    };
    assert_eq!(c.encode(), post("/v1/compare", V1_COMPARE_BODY).body);
    assert!(matches!(&parsed.items[1], om_api::BatchItemResult::Drill(_)));
    let om_api::BatchItemResult::Error(e) = &parsed.items[2] else {
        panic!("item 3 should carry an error envelope")
    };
    assert_eq!(e.code, om_api::ErrorCode::UnknownName);
}

#[test]
fn v1_explore_shape() {
    let r = post("/v1/explore", r#"{"k":5}"#);
    assert_eq!(r.status, 200, "{}", r.body);
    check_golden("v1_explore.json", &r.body);
    let parsed = om_api::ExploreResponse::parse(&r.body).unwrap();
    // Greedy stops as soon as no candidate adds marginal coverage, so
    // the answer may saturate below k — but never exceed it.
    assert!((1..=5).contains(&parsed.summaries.len()), "{}", r.body);
    assert!(!parsed.truncated);
    assert!(parsed.compare.is_none());
    assert_eq!(parsed.encode(), r.body, "om-api round-trip must be lossless");
}

#[test]
fn v1_explore_sliced_shape() {
    let r = post(
        "/v1/explore",
        r#"{"slice":[{"attr":"PhoneModel","value":"ph1"}],"k":3}"#,
    );
    assert_eq!(r.status, 200, "{}", r.body);
    check_golden("v1_explore_sliced.json", &r.body);
    let parsed = om_api::ExploreResponse::parse(&r.body).unwrap();
    assert!((1..=3).contains(&parsed.summaries.len()), "{}", r.body);
    assert!(
        parsed
            .summaries
            .iter()
            .all(|s| s.conditions.iter().all(|c| c.attr != "PhoneModel")),
        "sliced attribute must not reappear in summaries"
    );
    assert_eq!(parsed.encode(), r.body);
}

#[test]
fn v1_explore_compare_shape() {
    let r = post(
        "/v1/explore",
        r#"{"k":6,"compare":{"attr":"PhoneModel","v1":"ph1","v2":"ph2","class":"dropped"}}"#,
    );
    assert_eq!(r.status, 200, "{}", r.body);
    check_golden("v1_explore_compare.json", &r.body);
    let parsed = om_api::ExploreResponse::parse(&r.body).unwrap();
    assert!((1..=6).contains(&parsed.summaries.len()), "{}", r.body);
    let compare = parsed.compare.as_ref().expect("compare metadata present");
    assert_eq!(compare.attribute, "PhoneModel");
    assert!(parsed.summaries.iter().all(|s| s.side.is_some() && s.mass.is_some()));
    assert_eq!(parsed.encode(), r.body);
}

#[test]
fn v1_explore_error_envelopes() {
    let unknown = post("/v1/explore", r#"{"k":3,"slice":[{"attr":"Bogus","value":"x"}]}"#);
    assert_eq!(unknown.status, 404, "{}", unknown.body);
    check_golden("v1_explore_error_unknown.json", &unknown.body);

    let invalid = post("/v1/explore", r#"{"k":0}"#);
    assert_eq!(invalid.status, 422, "{}", invalid.body);
    check_golden("v1_explore_error_invalid.json", &invalid.body);

    let spent = RouteOptions {
        budget: Budget::with_timeout(std::time::Duration::ZERO),
        retry_after_secs: 2,
        ..RouteOptions::default()
    };
    let overloaded = post_with("/v1/explore", r#"{"k":3}"#, &spent);
    assert_eq!(overloaded.status, 503, "{}", overloaded.body);
    assert_eq!(overloaded.retry_after, Some(2));
    check_golden("v1_explore_error_overloaded.json", &overloaded.body);

    for body in [&unknown.body, &invalid.body, &overloaded.body] {
        let env = om_api::ErrorEnvelope::parse(body).unwrap();
        assert_eq!(env.encode(), *body);
    }
}

/// Label fields of dataset row 0 — always a valid ingest row.
fn row_fields_of(om: &OpportunityMap) -> Vec<String> {
    let ds = om.dataset();
    (0..ds.schema().n_attributes())
        .map(|i| {
            let id = ds.column(i).as_categorical().expect("discretized")[0];
            ds.schema().attribute(i).domain().label(id).unwrap().to_owned()
        })
        .collect()
}

#[test]
fn v1_ingest_roundtrip() {
    use om_engine::IngestConfig;
    // A private engine: ingesting into the shared static one would shift
    // the ground under the byte-identity tests.
    let (ds, _) = paper_scenario(5_000, 7);
    let om = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
    let dir = std::env::temp_dir().join(format!("om-golden-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = om
        .start_ingest(&IngestConfig {
            sync_writes: false,
            ..IngestConfig::new(&dir)
        })
        .unwrap();
    let opts = RouteOptions::default();
    let post = |body: &str, opts: &RouteOptions| {
        let req = Request {
            method: "POST".into(),
            path: "/v1/ingest".into(),
            params: BTreeMap::new(),
            body: body.to_owned(),
        };
        router::route(&req, &om, Some(&handle), opts, || "metrics\n".to_owned())
    };

    let row = row_fields_of(&om);
    let ok = post(
        &om_api::IngestRequest { rows: vec![row.clone(), row.clone()] }.encode(),
        &opts,
    );
    assert_eq!(ok.status, 200, "{}", ok.body);
    // The success body carries the async merge generation, so it is
    // validated structurally rather than byte-goldened.
    let parsed = om_api::IngestResponse::parse(&ok.body).unwrap();
    assert_eq!(parsed.accepted, 2);
    assert_eq!(parsed.rows_total, 2);

    let bad = post(
        &om_api::IngestRequest {
            rows: vec![row.clone(), vec!["not".into(), "enough".into()]],
        }
        .encode(),
        &opts,
    );
    assert_eq!(bad.status, 400, "{}", bad.body);
    check_golden("v1_error_bad_row.json", &bad.body);
    let env = om_api::ErrorEnvelope::parse(&bad.body).unwrap();
    assert_eq!(env.code, om_api::ErrorCode::BadRow);
    assert_eq!(env.row, Some(2), "envelope names the offending row");
    assert_eq!(handle.stats().rows_total, 2, "bad batch committed nothing");

    let spent = RouteOptions {
        budget: Budget::with_timeout(std::time::Duration::ZERO),
        retry_after_secs: 3,
        ..RouteOptions::default()
    };
    let shed = post(&om_api::IngestRequest { rows: vec![row] }.encode(), &spent);
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert_eq!(shed.retry_after, Some(3));
    assert_eq!(
        om_api::ErrorEnvelope::parse(&shed.body).unwrap().retry_after_ms,
        Some(3000)
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v1_error_envelopes() {
    let unknown = post(
        "/v1/compare",
        r#"{"attr":"Bogus","v1":"a","v2":"b","class":"dropped"}"#,
    );
    assert_eq!(unknown.status, 404);
    check_golden("v1_error_unknown.json", &unknown.body);

    let bad = post("/v1/compare", "not json");
    assert_eq!(bad.status, 400);
    check_golden("v1_error_bad_request.json", &bad.body);

    let missing = post("/v1/nope", "{}");
    assert_eq!(missing.status, 404);
    check_golden("v1_error_not_found.json", &missing.body);

    let wrong_method = get("/v1/compare", &[]);
    assert_eq!(wrong_method.status, 405);
    check_golden("v1_error_method.json", &wrong_method.body);

    let no_ingest = post("/v1/ingest", r#"{"rows":[]}"#);
    assert_eq!(no_ingest.status, 404);
    check_golden("v1_error_no_ingest.json", &no_ingest.body);

    let spent = RouteOptions {
        budget: Budget::with_timeout(std::time::Duration::ZERO),
        retry_after_secs: 1,
        ..RouteOptions::default()
    };
    let overloaded = post_with("/v1/compare", V1_COMPARE_BODY, &spent);
    assert_eq!(overloaded.status, 503);
    assert_eq!(overloaded.retry_after, Some(1));
    check_golden("v1_error_overloaded.json", &overloaded.body);

    // Every envelope decodes through the shared om-api type.
    for body in [
        &unknown.body,
        &bad.body,
        &missing.body,
        &wrong_method.body,
        &no_ingest.body,
        &overloaded.body,
    ] {
        let env = om_api::ErrorEnvelope::parse(body).unwrap();
        assert_eq!(env.encode(), *body);
    }
    assert_eq!(
        om_api::ErrorEnvelope::parse(&overloaded.body).unwrap().retry_after_ms,
        Some(1000)
    );
}
