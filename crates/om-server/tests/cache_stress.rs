//! Concurrent eviction stress for the LRU response cache: many threads
//! hammering a tiny cache must never deadlock, never return another
//! key's response, and never leave the cache over capacity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use om_server::cache::ResponseCache;
use om_server::http::Response;

#[test]
fn eviction_churn_under_concurrency_keeps_invariants() {
    const CAPACITY: usize = 8;
    const THREADS: usize = 8;
    const ROUNDS: usize = 2_000;
    // 4x more keys than capacity so most inserts evict something.
    const KEYS: usize = CAPACITY * 4;

    let cache = Arc::new(ResponseCache::new(CAPACITY));
    let hits = Arc::new(AtomicU64::new(0));
    let misses = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let hits = Arc::clone(&hits);
            let misses = Arc::clone(&misses);
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    // Distinct stride per thread so access patterns
                    // interleave instead of marching in lockstep.
                    let key = format!("/k{}", (t * 31 + i * 7) % KEYS);
                    match cache.get(&key) {
                        Some(hit) => {
                            // The one invariant that matters most: a hit
                            // is never some other key's response.
                            assert_eq!(hit.body, key, "cross-key response leak");
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            misses.fetch_add(1, Ordering::Relaxed);
                            cache.insert(key.clone(), Arc::new(Response::text(key)));
                        }
                    }
                    assert!(cache.len() <= CAPACITY, "cache over capacity");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert!(cache.len() <= CAPACITY);
    assert!(!cache.is_empty(), "churn should leave the cache warm");
    let (h, m) = (hits.load(Ordering::Relaxed), misses.load(Ordering::Relaxed));
    assert_eq!(h + m, (THREADS * ROUNDS) as u64);
    // With 4x keys over capacity both outcomes must actually occur.
    assert!(h > 0, "no hits in {ROUNDS} rounds");
    assert!(m > 0, "no misses in {ROUNDS} rounds");
}

#[test]
fn concurrent_reinsertion_of_one_hot_key_stays_consistent() {
    let cache = Arc::new(ResponseCache::new(2));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for _ in 0..1_000 {
                    cache.insert("/hot".into(), Arc::new(Response::text("/hot")));
                    if let Some(hit) = cache.get("/hot") {
                        assert_eq!(hit.body, "/hot");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cache.get("/hot").unwrap().body, "/hot");
    assert!(cache.len() <= 2);
}
