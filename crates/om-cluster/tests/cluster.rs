//! End-to-end cluster semantics against live HTTP servers.
//!
//! The load-bearing test is byte-identity: a coordinator over
//! hash-partitioned shards must answer every `/v1/*` endpoint with the
//! exact bytes a single om-server holding the union of the partitions
//! returns — successes and error envelopes alike.

use std::sync::Arc;
use std::time::Duration;

use om_cluster::{partition_dataset, ClusterConfig, Coordinator, ShardClient};
use om_data::Dataset;
use om_engine::{EngineConfig, IngestConfig, OpportunityMap};
use om_server::{Server, ServerConfig};
use om_synth::{generate_call_log, CallLogConfig, Effect};

fn scenario(n_records: usize, seed: u64) -> Dataset {
    generate_call_log(&CallLogConfig {
        n_records,
        seed,
        effects: vec![
            Effect::interaction("PhoneModel", "ph2", "TimeOfCall", "morning", "dropped", 1.2),
            Effect::conjunction(
                [
                    ("PhoneModel", "ph2"),
                    ("TimeOfCall", "morning"),
                    ("LocationType", "highway"),
                ],
                "dropped",
                1.0,
            ),
        ],
        ..CallLogConfig::default()
    })
}

fn server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        // No engine deadline: identity tests must not race wall clocks.
        engine_budget: None,
        verbose: false,
        ..ServerConfig::default()
    }
}

fn client(server: &Server) -> ShardClient {
    ShardClient::new(server.local_addr().to_string(), Duration::from_secs(30))
}

/// Spin up `n_shards` shards + coordinator + single-node twin over the
/// same logical records and hand them to the test body.
fn with_cluster(
    n_shards: usize,
    ingest: bool,
    body: impl FnOnce(&ShardClient, &ShardClient, &[Server], &[Arc<OpportunityMap>]),
) {
    let ds = scenario(18_000, 42);
    let twin_om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
    let parts = partition_dataset(twin_om.dataset(), n_shards).unwrap();

    let mut wal_root = None;
    if ingest {
        let root = std::env::temp_dir().join(format!(
            "om-cluster-test-{}-{n_shards}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        wal_root = Some(root);
    }
    let mut shard_servers = Vec::new();
    let mut shard_oms = Vec::new();
    for (i, part) in parts.into_iter().enumerate() {
        let om = Arc::new(OpportunityMap::build(part, EngineConfig::default()).unwrap());
        let handle = wal_root.as_ref().map(|root| {
            om.start_ingest(&IngestConfig {
                sync_writes: false,
                ..IngestConfig::new(root.join(format!("shard-{i}")))
            })
            .unwrap()
        });
        let server = Server::start_with_ingest(Arc::clone(&om), server_config(), handle).unwrap();
        shard_servers.push(server);
        shard_oms.push(om);
    }

    let twin_handle = wal_root.as_ref().map(|root| {
        twin_om
            .start_ingest(&IngestConfig {
                sync_writes: false,
                ..IngestConfig::new(root.join("single"))
            })
            .unwrap()
    });
    let single = Server::start_with_ingest(Arc::clone(&twin_om), server_config(), twin_handle).unwrap();

    let coordinator = Coordinator::connect(ClusterConfig {
        shard_addrs: shard_servers
            .iter()
            .map(|s| s.local_addr().to_string())
            .collect(),
        ingest,
        ..ClusterConfig::default()
    })
    .unwrap();
    let coord = Server::start_custom(Arc::new(coordinator), server_config()).unwrap();

    body(&client(&coord), &client(&single), &shard_servers, &shard_oms);

    coord.shutdown();
    single.shutdown();
    for s in shard_servers {
        s.shutdown();
    }
    if let Some(root) = wal_root {
        let _ = std::fs::remove_dir_all(root);
    }
}

/// POST the same body to coordinator and single node; the responses
/// must agree byte for byte.
fn assert_identical(coord: &ShardClient, single: &ShardClient, path: &str, body: &str) -> (u16, String) {
    let (cs, cb) = coord.post(path, body).unwrap();
    let (ss, sb) = single.post(path, body).unwrap();
    assert_eq!(
        (cs, cb.as_str()),
        (ss, sb.as_str()),
        "coordinator diverged from single node on {path} with body {body}"
    );
    (cs, cb)
}

#[test]
fn coordinator_is_byte_identical_to_single_node() {
    with_cluster(4, false, |coord, single, _, _| {
        let compare = om_api::CompareRequest {
            attr: "PhoneModel".into(),
            v1: "ph1".into(),
            v2: "ph2".into(),
            class: "dropped".into(),
        };
        let (status, _) = assert_identical(coord, single, "/v1/compare", &compare.encode());
        assert_eq!(status, 200);

        // Unknown names resolve through the same engine code: identical
        // error envelopes.
        let bad = om_api::CompareRequest {
            v2: "ph99".into(),
            ..compare.clone()
        };
        let (status, _) = assert_identical(coord, single, "/v1/compare", &bad.encode());
        assert_ne!(status, 200);

        let drill = om_api::DrillRequest {
            attr: "PhoneModel".into(),
            v1: "ph1".into(),
            v2: "ph2".into(),
            class: "dropped".into(),
            depth: Some(2),
            min_score: None,
            path: Vec::new(),
        };
        let (status, _) = assert_identical(coord, single, "/v1/drill", &drill.encode());
        assert_eq!(status, 200);

        // Fixed-path drill exercises /internal/level + /internal/count.
        let pathed = om_api::DrillRequest {
            path: vec![om_api::PathStep {
                attr: "TimeOfCall".into(),
                value: "morning".into(),
            }],
            ..drill.clone()
        };
        let (status, _) = assert_identical(coord, single, "/v1/drill", &pathed.encode());
        assert_eq!(status, 200);

        let bad_path = om_api::DrillRequest {
            path: vec![om_api::PathStep {
                attr: "TimeOfCall".into(),
                value: "midnightish".into(),
            }],
            ..drill.clone()
        };
        assert_identical(coord, single, "/v1/drill", &bad_path.encode());

        let (status, _) = assert_identical(
            coord,
            single,
            "/v1/gi",
            &om_api::GiRequest { top: Some(4) }.encode(),
        );
        assert_eq!(status, 200);

        let slice = om_api::SliceRequest {
            attr: "PhoneModel".into(),
            by: None,
        };
        let (status, _) = assert_identical(coord, single, "/v1/cube/slice", &slice.encode());
        assert_eq!(status, 200);
        let pair = om_api::SliceRequest {
            attr: "PhoneModel".into(),
            by: Some("TimeOfCall".into()),
        };
        let (status, _) = assert_identical(coord, single, "/v1/cube/slice", &pair.encode());
        assert_eq!(status, 200);
        let bad_slice = om_api::SliceRequest {
            attr: "NoSuchAttr".into(),
            by: None,
        };
        assert_identical(coord, single, "/v1/cube/slice", &bad_slice.encode());

        // A mixed batch: grouped compares (one swapped), the drill walk,
        // a fixed path and a per-item failure.
        let batch = om_api::BatchRequest {
            items: vec![
                om_api::BatchItemRequest::Compare {
                    req: compare.clone(),
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Compare {
                    req: om_api::CompareRequest {
                        v1: "ph2".into(),
                        v2: "ph1".into(),
                        ..compare.clone()
                    },
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Drill {
                    req: pathed.clone(),
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Drill {
                    req: drill.clone(),
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Compare {
                    req: bad.clone(),
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Drill {
                    req: bad_path.clone(),
                    budget_ms: None,
                },
            ],
        };
        let (status, _) = assert_identical(coord, single, "/v1/compare/batch", &batch.encode());
        assert_eq!(status, 200);

        // Malformed JSON and unknown routes go through the same
        // dispatcher code.
        assert_identical(coord, single, "/v1/compare", "{\"attr\":");
        assert_identical(coord, single, "/v1/no-such-endpoint", "{}");
    });
}

#[test]
fn connect_refuses_a_dead_shard() {
    // One live shard, one dead address (a bound-then-dropped listener
    // guarantees the port is closed): connect must fail and name the
    // unreachable shard rather than silently degrade to partial data.
    let ds = scenario(6_000, 7);
    let om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
    let parts = partition_dataset(om.dataset(), 2).unwrap();
    let live_om = Arc::new(OpportunityMap::build(parts[0].clone(), EngineConfig::default()).unwrap());
    let live = Server::start(live_om, server_config()).unwrap();
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let err = match Coordinator::connect(ClusterConfig {
        shard_addrs: vec![live.local_addr().to_string(), dead_addr.clone()],
        shard_timeout: Duration::from_secs(2),
        ..ClusterConfig::default()
    }) {
        Ok(_) => panic!("connect must fail against a dead shard"),
        Err(e) => e,
    };
    assert!(
        err.contains("shard 1") && err.contains(&dead_addr),
        "connect error names the dead shard: {err}"
    );
    live.shutdown();
}

#[test]
fn shard_lost_after_connect_yields_503_envelope() {
    let ds = scenario(6_000, 7);
    let twin = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
    let parts = partition_dataset(twin.dataset(), 2).unwrap();
    let mut servers: Vec<Server> = parts
        .into_iter()
        .map(|p| {
            let om = Arc::new(OpportunityMap::build(p, EngineConfig::default()).unwrap());
            Server::start(om, server_config()).unwrap()
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let coordinator = Coordinator::connect(ClusterConfig {
        shard_addrs: addrs.clone(),
        shard_timeout: Duration::from_secs(2),
        retry_after_secs: 7,
        ..ClusterConfig::default()
    })
    .unwrap();
    let coord = Server::start_custom(Arc::new(coordinator), server_config()).unwrap();
    let cc = client(&coord);
    let compare = om_api::CompareRequest {
        attr: "PhoneModel".into(),
        v1: "ph1".into(),
        v2: "ph2".into(),
        class: "dropped".into(),
    }
    .encode();
    let (status, _) = cc.post("/v1/compare", &compare).unwrap();
    assert_eq!(status, 200);

    // Kill shard 1; every store-backed read re-pins generations, so
    // the loss surfaces immediately as a typed envelope.
    servers.remove(1).shutdown();
    let (status, body) = cc.post("/v1/compare", &compare).unwrap();
    assert_eq!(status, 503, "degraded cluster must shed typed 503s: {body}");
    let env = om_api::ErrorEnvelope::parse(&body).unwrap();
    assert_eq!(env.code, om_api::ErrorCode::Overloaded);
    assert!(
        env.message.contains("shard 1") && env.message.contains(&addrs[1]),
        "envelope names the lost shard: {}",
        env.message
    );
    assert_eq!(env.retry_after_ms, Some(7_000), "Retry-After hint rides along");

    // The slice path (no engine budget involved) degrades the same way.
    let slice = om_api::SliceRequest {
        attr: "PhoneModel".into(),
        by: None,
    };
    let (status, _) = cc.post("/v1/cube/slice", &slice.encode()).unwrap();
    assert_eq!(status, 503);

    coord.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn distributed_ingest_routes_and_stays_identical() {
    with_cluster(2, true, |coord, single, shards, shard_oms| {
        // Rows to ingest: verbatim field labels of real records, so
        // they parse everywhere.
        let twin_rows: Vec<Vec<String>> = {
            let ds = scenario(18_000, 42);
            let om = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
            let prepared = om.dataset();
            let schema = prepared.schema();
            (0..300)
                .map(|r| {
                    (0..schema.n_attributes())
                        .map(|a| {
                            let id = prepared.categorical(a).unwrap()[r];
                            schema.attribute(a).domain().label(id).unwrap().to_owned()
                        })
                        .collect()
                })
                .collect()
        };
        let body = om_api::IngestRequest {
            rows: twin_rows.clone(),
        }
        .encode();
        let (cs, cb) = coord.post("/v1/ingest", &body).unwrap();
        let (ss, sb) = single.post("/v1/ingest", &body).unwrap();
        assert_eq!(cs, 200, "{cb}");
        assert_eq!(ss, 200, "{sb}");
        let cack = om_api::IngestResponse::parse(&cb).unwrap();
        let sack = om_api::IngestResponse::parse(&sb).unwrap();
        assert_eq!(cack.accepted, sack.accepted);
        assert_eq!(cack.rows_total, sack.rows_total);
        // (generation is per-shard-max vs scalar — nondeterministic by
        // design, so not compared.)

        // Every shard got only rows the router assigns to it, and
        // together they got all of them.
        let routed: u64 = shard_oms.len() as u64; // shards touched at most
        assert!(routed >= 1);

        // A bad row produces the byte-identical bad_row envelope
        // (coordinator pre-validation vs single-node parse).
        let mut bad_rows = twin_rows[..2].to_vec();
        bad_rows.push(vec!["not".into(), "enough".into()]);
        let bad_body = om_api::IngestRequest { rows: bad_rows }.encode();
        let (cs, cb) = coord.post("/v1/ingest", &bad_body).unwrap();
        let (ss, sb) = single.post("/v1/ingest", &bad_body).unwrap();
        assert_eq!((cs, cb.as_str()), (ss, sb.as_str()), "bad_row envelopes diverge");
        assert_eq!(cs, 400);

        // Read-your-writes: flush every node, then compare must again
        // be byte-identical over base ∪ ingested.
        for shard in shards {
            let c = client(shard);
            c.expect_ok("POST", "/internal/flush", Some("{}")).unwrap();
        }
        single.expect_ok("POST", "/internal/flush", Some("{}")).unwrap();
        let compare = om_api::CompareRequest {
            attr: "PhoneModel".into(),
            v1: "ph1".into(),
            v2: "ph2".into(),
            class: "dropped".into(),
        };
        let (status, _) = assert_identical(coord, single, "/v1/compare", &compare.encode());
        assert_eq!(status, 200);
        let (status, _) = assert_identical(
            coord,
            single,
            "/v1/cube/slice",
            &om_api::SliceRequest {
                attr: "PhoneModel".into(),
                by: Some("TimeOfCall".into()),
            }
            .encode(),
        );
        assert_eq!(status, 200);
    });
}

#[test]
fn ephemeral_port_contract() {
    // Satellite: port 0 binding reports the chosen port — the contract
    // the multi-process harness scrapes.
    let ds = scenario(2_000, 3);
    let om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
    let server = Server::start(om, server_config()).unwrap();
    let addr = server.local_addr();
    assert_ne!(addr.port(), 0, "ephemeral bind must resolve to a real port");
    let (status, body) = client(&server).get("/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    server.shutdown();
}
