//! End-to-end cluster semantics against live HTTP servers.
//!
//! The load-bearing test is byte-identity: a coordinator over
//! hash-partitioned shards must answer every `/v1/*` endpoint with the
//! exact bytes a single om-server holding the union of the partitions
//! returns — successes and error envelopes alike.

use std::sync::Arc;
use std::time::Duration;

use om_cluster::{partition_dataset, ClusterConfig, Coordinator, ShardClient};
use om_data::Dataset;
use om_engine::{EngineConfig, IngestConfig, OpportunityMap};
use om_server::{Server, ServerConfig};
use om_synth::{generate_call_log, CallLogConfig, Effect};

fn scenario(n_records: usize, seed: u64) -> Dataset {
    generate_call_log(&CallLogConfig {
        n_records,
        seed,
        effects: vec![
            Effect::interaction("PhoneModel", "ph2", "TimeOfCall", "morning", "dropped", 1.2),
            Effect::conjunction(
                [
                    ("PhoneModel", "ph2"),
                    ("TimeOfCall", "morning"),
                    ("LocationType", "highway"),
                ],
                "dropped",
                1.0,
            ),
        ],
        ..CallLogConfig::default()
    })
}

fn server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        // No engine deadline: identity tests must not race wall clocks.
        engine_budget: None,
        verbose: false,
        ..ServerConfig::default()
    }
}

fn client(server: &Server) -> ShardClient {
    ShardClient::new(server.local_addr().to_string(), Duration::from_secs(30))
}

/// Spin up `n_shards` shards + coordinator + single-node twin over the
/// same logical records and hand them to the test body.
fn with_cluster(
    n_shards: usize,
    ingest: bool,
    body: impl FnOnce(&ShardClient, &ShardClient, &[Server], &[Arc<OpportunityMap>]),
) {
    let ds = scenario(18_000, 42);
    let twin_om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
    let parts = partition_dataset(twin_om.dataset(), n_shards).unwrap();

    let mut wal_root = None;
    if ingest {
        let root = std::env::temp_dir().join(format!(
            "om-cluster-test-{}-{n_shards}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        wal_root = Some(root);
    }
    let mut shard_servers = Vec::new();
    let mut shard_oms = Vec::new();
    for (i, part) in parts.into_iter().enumerate() {
        let om = Arc::new(OpportunityMap::build(part, EngineConfig::default()).unwrap());
        let handle = wal_root.as_ref().map(|root| {
            om.start_ingest(&IngestConfig {
                sync_writes: false,
                ..IngestConfig::new(root.join(format!("shard-{i}")))
            })
            .unwrap()
        });
        let server = Server::start_with_ingest(Arc::clone(&om), server_config(), handle).unwrap();
        shard_servers.push(server);
        shard_oms.push(om);
    }

    let twin_handle = wal_root.as_ref().map(|root| {
        twin_om
            .start_ingest(&IngestConfig {
                sync_writes: false,
                ..IngestConfig::new(root.join("single"))
            })
            .unwrap()
    });
    let single = Server::start_with_ingest(Arc::clone(&twin_om), server_config(), twin_handle).unwrap();

    let coordinator = Coordinator::connect(ClusterConfig {
        shard_addrs: shard_servers
            .iter()
            .map(|s| s.local_addr().to_string())
            .collect(),
        ingest,
        ..ClusterConfig::default()
    })
    .unwrap();
    let coord = Server::start_custom(Arc::new(coordinator), server_config()).unwrap();

    body(&client(&coord), &client(&single), &shard_servers, &shard_oms);

    coord.shutdown();
    single.shutdown();
    for s in shard_servers {
        s.shutdown();
    }
    if let Some(root) = wal_root {
        let _ = std::fs::remove_dir_all(root);
    }
}

/// POST the same body to coordinator and single node; the responses
/// must agree byte for byte.
fn assert_identical(coord: &ShardClient, single: &ShardClient, path: &str, body: &str) -> (u16, String) {
    let (cs, cb) = coord.post(path, body).unwrap();
    let (ss, sb) = single.post(path, body).unwrap();
    assert_eq!(
        (cs, cb.as_str()),
        (ss, sb.as_str()),
        "coordinator diverged from single node on {path} with body {body}"
    );
    (cs, cb)
}

#[test]
fn coordinator_is_byte_identical_to_single_node() {
    with_cluster(4, false, |coord, single, _, _| {
        let compare = om_api::CompareRequest {
            attr: "PhoneModel".into(),
            v1: "ph1".into(),
            v2: "ph2".into(),
            class: "dropped".into(),
            allow_partial: None,
        };
        let (status, _) = assert_identical(coord, single, "/v1/compare", &compare.encode());
        assert_eq!(status, 200);

        // Unknown names resolve through the same engine code: identical
        // error envelopes.
        let bad = om_api::CompareRequest {
            v2: "ph99".into(),
            ..compare.clone()
        };
        let (status, _) = assert_identical(coord, single, "/v1/compare", &bad.encode());
        assert_ne!(status, 200);

        let drill = om_api::DrillRequest {
            attr: "PhoneModel".into(),
            v1: "ph1".into(),
            v2: "ph2".into(),
            class: "dropped".into(),
            depth: Some(2),
            min_score: None,
            path: Vec::new(),
        };
        let (status, _) = assert_identical(coord, single, "/v1/drill", &drill.encode());
        assert_eq!(status, 200);

        // Fixed-path drill exercises /internal/level + /internal/count.
        let pathed = om_api::DrillRequest {
            path: vec![om_api::PathStep {
                attr: "TimeOfCall".into(),
                value: "morning".into(),
            }],
            ..drill.clone()
        };
        let (status, _) = assert_identical(coord, single, "/v1/drill", &pathed.encode());
        assert_eq!(status, 200);

        let bad_path = om_api::DrillRequest {
            path: vec![om_api::PathStep {
                attr: "TimeOfCall".into(),
                value: "midnightish".into(),
            }],
            ..drill.clone()
        };
        assert_identical(coord, single, "/v1/drill", &bad_path.encode());

        let (status, _) = assert_identical(
            coord,
            single,
            "/v1/gi",
            &om_api::GiRequest {
                top: Some(4),
                allow_partial: None,
            }
            .encode(),
        );
        assert_eq!(status, 200);

        let slice = om_api::SliceRequest {
            attr: "PhoneModel".into(),
            by: None,
        };
        let (status, _) = assert_identical(coord, single, "/v1/cube/slice", &slice.encode());
        assert_eq!(status, 200);
        let pair = om_api::SliceRequest {
            attr: "PhoneModel".into(),
            by: Some("TimeOfCall".into()),
        };
        let (status, _) = assert_identical(coord, single, "/v1/cube/slice", &pair.encode());
        assert_eq!(status, 200);
        let bad_slice = om_api::SliceRequest {
            attr: "NoSuchAttr".into(),
            by: None,
        };
        assert_identical(coord, single, "/v1/cube/slice", &bad_slice.encode());

        // A mixed batch: grouped compares (one swapped), the drill walk,
        // a fixed path and a per-item failure.
        let batch = om_api::BatchRequest {
            items: vec![
                om_api::BatchItemRequest::Compare {
                    req: compare.clone(),
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Compare {
                    req: om_api::CompareRequest {
                        v1: "ph2".into(),
                        v2: "ph1".into(),
                        ..compare.clone()
                    },
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Drill {
                    req: pathed.clone(),
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Drill {
                    req: drill.clone(),
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Compare {
                    req: bad.clone(),
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Drill {
                    req: bad_path.clone(),
                    budget_ms: None,
                },
            ],
        };
        let (status, _) = assert_identical(coord, single, "/v1/compare/batch", &batch.encode());
        assert_eq!(status, 200);

        // Malformed JSON and unknown routes go through the same
        // dispatcher code.
        assert_identical(coord, single, "/v1/compare", "{\"attr\":");
        assert_identical(coord, single, "/v1/no-such-endpoint", "{}");
    });
}

/// The kernel path through a 2-shard cluster: fixed-path drills and
/// shared-prefix batches condition sub-populations via bitmap ANDs on
/// both sides — `SelectorPopulation` on the single node,
/// `/internal/level` + `/internal/count` (now selector-backed) on each
/// shard with the coordinator merging the partial stores — and every
/// response must still agree byte for byte.
#[test]
fn two_shard_kernel_conditioning_is_byte_identical() {
    with_cluster(2, false, |coord, single, _, _| {
        let drill = om_api::DrillRequest {
            attr: "PhoneModel".into(),
            v1: "ph1".into(),
            v2: "ph2".into(),
            class: "dropped".into(),
            depth: Some(3),
            min_score: Some(0.0),
            path: Vec::new(),
        };
        // Deep walk: several levels of kernel-conditioned stores.
        let (status, _) = assert_identical(coord, single, "/v1/drill", &drill.encode());
        assert_eq!(status, 200);

        // A two-condition fixed prefix: chained narrows on every shard.
        let deep_path = om_api::DrillRequest {
            path: vec![
                om_api::PathStep {
                    attr: "TimeOfCall".into(),
                    value: "morning".into(),
                },
                om_api::PathStep {
                    attr: "LocationType".into(),
                    value: "highway".into(),
                },
            ],
            ..drill.clone()
        };
        let (status, _) = assert_identical(coord, single, "/v1/drill", &deep_path.encode());
        assert_eq!(status, 200);

        // A prefix that selects no records: the popcount-zero probe must
        // produce the same error envelope as the record-count probe did.
        let conflicting = om_api::DrillRequest {
            path: vec![
                om_api::PathStep {
                    attr: "TimeOfCall".into(),
                    value: "morning".into(),
                },
                om_api::PathStep {
                    attr: "TimeOfCall".into(),
                    value: "evening".into(),
                },
            ],
            ..drill.clone()
        };
        assert_identical(coord, single, "/v1/drill", &conflicting.encode());

        // Shared-prefix batch: the memoized selectors must produce the
        // same outcomes through the coordinator's merged level stores.
        let batch = om_api::BatchRequest {
            items: vec![
                om_api::BatchItemRequest::Drill {
                    req: drill.clone(),
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Drill {
                    req: om_api::DrillRequest {
                        path: vec![om_api::PathStep {
                            attr: "TimeOfCall".into(),
                            value: "morning".into(),
                        }],
                        ..drill.clone()
                    },
                    budget_ms: None,
                },
                om_api::BatchItemRequest::Drill {
                    req: deep_path.clone(),
                    budget_ms: None,
                },
            ],
        };
        let (status, _) = assert_identical(coord, single, "/v1/compare/batch", &batch.encode());
        assert_eq!(status, 200);

        // Sliced explore: the single node's indexed store answers the
        // conditioned pools with masked kernel scans, the coordinator's
        // merged store (no index) slices pair cubes — same bytes.
        let explore = om_api::ExploreRequest {
            slice: vec![om_api::PathStep {
                attr: "TimeOfCall".into(),
                value: "morning".into(),
            }],
            k: 4,
            max_conditions: None,
            budget_ms: None,
            compare: None,
        };
        let (status, _) = assert_identical(coord, single, "/v1/explore", &explore.encode());
        assert_eq!(status, 200);
    });
}

#[test]
fn explore_through_coordinator_is_byte_identical() {
    // /v1/explore runs the same greedy drill-down over the
    // coordinator's merged store as over the single-node twin, so a
    // 2-shard coordinator must agree byte for byte on answers and on
    // every error envelope.
    with_cluster(2, false, |coord, single, _, _| {
        let plain = om_api::ExploreRequest {
            slice: Vec::new(),
            k: 8,
            max_conditions: None,
            budget_ms: None,
            compare: None,
        };
        let (status, body) = assert_identical(coord, single, "/v1/explore", &plain.encode());
        assert_eq!(status, 200, "{body}");
        let parsed = om_api::ExploreResponse::parse(&body).unwrap();
        assert!(!parsed.truncated, "{body}");
        assert!(!parsed.summaries.is_empty(), "{body}");

        let sliced = om_api::ExploreRequest {
            slice: vec![om_api::PathStep {
                attr: "TimeOfCall".into(),
                value: "morning".into(),
            }],
            k: 4,
            ..plain.clone()
        };
        let (status, _) = assert_identical(coord, single, "/v1/explore", &sliced.encode());
        assert_eq!(status, 200);

        let compared = om_api::ExploreRequest {
            k: 6,
            compare: Some(om_api::ExploreCompareBlock {
                attr: "PhoneModel".into(),
                v1: "ph1".into(),
                v2: "ph2".into(),
                class: "dropped".into(),
            }),
            ..plain.clone()
        };
        let (status, body) = assert_identical(coord, single, "/v1/explore", &compared.encode());
        assert_eq!(status, 200, "{body}");
        let parsed = om_api::ExploreResponse::parse(&body).unwrap();
        assert!(parsed.compare.is_some(), "{body}");

        // Validation and unknown-name envelopes resolve through the same
        // code on both sides.
        let invalid = om_api::ExploreRequest {
            k: 0,
            ..plain.clone()
        };
        let (status, _) = assert_identical(coord, single, "/v1/explore", &invalid.encode());
        assert_eq!(status, 422);
        let unknown = om_api::ExploreRequest {
            slice: vec![om_api::PathStep {
                attr: "NoSuchAttr".into(),
                value: "x".into(),
            }],
            ..plain.clone()
        };
        let (status, _) = assert_identical(coord, single, "/v1/explore", &unknown.encode());
        assert_eq!(status, 404);

        // A zero budget exhausts before the first summary on both sides:
        // identical typed overload envelopes (the fixture's route budget
        // is unlimited, so the request-level narrowing is all there is).
        let exhausted = om_api::ExploreRequest {
            budget_ms: Some(0),
            ..plain.clone()
        };
        let (status, body) = assert_identical(coord, single, "/v1/explore", &exhausted.encode());
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("\"overloaded\""), "{body}");
    });
}

#[test]
fn connect_refuses_a_dead_shard() {
    // One live shard, one dead address (a bound-then-dropped listener
    // guarantees the port is closed): connect must fail and name the
    // unreachable shard rather than silently degrade to partial data.
    let ds = scenario(6_000, 7);
    let om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
    let parts = partition_dataset(om.dataset(), 2).unwrap();
    let live_om = Arc::new(OpportunityMap::build(parts[0].clone(), EngineConfig::default()).unwrap());
    let live = Server::start(live_om, server_config()).unwrap();
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let err = match Coordinator::connect(ClusterConfig {
        shard_addrs: vec![live.local_addr().to_string(), dead_addr.clone()],
        shard_timeout: Duration::from_secs(2),
        ..ClusterConfig::default()
    }) {
        Ok(_) => panic!("connect must fail against a dead shard"),
        Err(e) => e,
    };
    assert!(
        err.contains("shard 1") && err.contains(&dead_addr),
        "connect error names the dead shard: {err}"
    );
    live.shutdown();
}

#[test]
fn shard_lost_after_connect_yields_503_envelope() {
    let ds = scenario(6_000, 7);
    let twin = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
    let parts = partition_dataset(twin.dataset(), 2).unwrap();
    let mut servers: Vec<Server> = parts
        .into_iter()
        .map(|p| {
            let om = Arc::new(OpportunityMap::build(p, EngineConfig::default()).unwrap());
            Server::start(om, server_config()).unwrap()
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let coordinator = Coordinator::connect(ClusterConfig {
        shard_addrs: addrs.clone(),
        shard_timeout: Duration::from_secs(2),
        retry_after_secs: 7,
        // One failure opens the breaker for 7s, so the 503's hint is
        // derived from the breaker's actual half-open time.
        breaker_threshold: 1,
        breaker_open: Duration::from_secs(7),
        fetch_retries: 0,
        ..ClusterConfig::default()
    })
    .unwrap();
    let coord = Server::start_custom(Arc::new(coordinator), server_config()).unwrap();
    let cc = client(&coord);
    let compare = om_api::CompareRequest {
        attr: "PhoneModel".into(),
        v1: "ph1".into(),
        v2: "ph2".into(),
        class: "dropped".into(),
        allow_partial: None,
    }
    .encode();
    let (status, _) = cc.post("/v1/compare", &compare).unwrap();
    assert_eq!(status, 200);

    // Kill shard 1; every store-backed read re-pins generations, so
    // the loss surfaces immediately as a typed envelope.
    servers.remove(1).shutdown();
    let (status, body) = cc.post("/v1/compare", &compare).unwrap();
    assert_eq!(status, 503, "degraded cluster must shed typed 503s: {body}");
    let env = om_api::ErrorEnvelope::parse(&body).unwrap();
    assert_eq!(env.code, om_api::ErrorCode::Overloaded);
    assert!(
        env.message.contains("shard 1") && env.message.contains(&addrs[1]),
        "envelope names the lost shard: {}",
        env.message
    );
    // The hint is the breaker's remaining open window, not a constant:
    // just under the configured 7s, and shrinking on the next ask.
    let first = env.retry_after_ms.expect("Retry-After hint rides along");
    assert!(
        first > 6_000 && first <= 7_000,
        "hint {first}ms should be the breaker's remaining open time (~7s)"
    );
    std::thread::sleep(Duration::from_millis(150));
    let (status, body) = cc.post("/v1/compare", &compare).unwrap();
    assert_eq!(status, 503);
    let again = om_api::ErrorEnvelope::parse(&body)
        .unwrap()
        .retry_after_ms
        .expect("hint present while the breaker is open");
    assert!(
        again < first,
        "hint must track the breaker window: {again}ms after {first}ms"
    );

    // The slice path (no engine budget involved) degrades the same way.
    let slice = om_api::SliceRequest {
        attr: "PhoneModel".into(),
        by: None,
    };
    let (status, _) = cc.post("/v1/cube/slice", &slice.encode()).unwrap();
    assert_eq!(status, 503);

    coord.shutdown();
    for s in servers {
        s.shutdown();
    }
}

#[test]
fn distributed_ingest_routes_and_stays_identical() {
    with_cluster(2, true, |coord, single, shards, shard_oms| {
        // Rows to ingest: verbatim field labels of real records, so
        // they parse everywhere.
        let twin_rows: Vec<Vec<String>> = {
            let ds = scenario(18_000, 42);
            let om = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
            let prepared = om.dataset();
            let schema = prepared.schema();
            (0..300)
                .map(|r| {
                    (0..schema.n_attributes())
                        .map(|a| {
                            let id = prepared.categorical(a).unwrap()[r];
                            schema.attribute(a).domain().label(id).unwrap().to_owned()
                        })
                        .collect()
                })
                .collect()
        };
        let body = om_api::IngestRequest {
            rows: twin_rows.clone(),
        }
        .encode();
        let (cs, cb) = coord.post("/v1/ingest", &body).unwrap();
        let (ss, sb) = single.post("/v1/ingest", &body).unwrap();
        assert_eq!(cs, 200, "{cb}");
        assert_eq!(ss, 200, "{sb}");
        let cack = om_api::IngestResponse::parse(&cb).unwrap();
        let sack = om_api::IngestResponse::parse(&sb).unwrap();
        assert_eq!(cack.accepted, sack.accepted);
        assert_eq!(cack.rows_total, sack.rows_total);
        // (generation is per-shard-max vs scalar — nondeterministic by
        // design, so not compared.)

        // Every shard got only rows the router assigns to it, and
        // together they got all of them.
        let routed: u64 = shard_oms.len() as u64; // shards touched at most
        assert!(routed >= 1);

        // A bad row produces the byte-identical bad_row envelope
        // (coordinator pre-validation vs single-node parse).
        let mut bad_rows = twin_rows[..2].to_vec();
        bad_rows.push(vec!["not".into(), "enough".into()]);
        let bad_body = om_api::IngestRequest { rows: bad_rows }.encode();
        let (cs, cb) = coord.post("/v1/ingest", &bad_body).unwrap();
        let (ss, sb) = single.post("/v1/ingest", &bad_body).unwrap();
        assert_eq!((cs, cb.as_str()), (ss, sb.as_str()), "bad_row envelopes diverge");
        assert_eq!(cs, 400);

        // Read-your-writes: flush every node, then compare must again
        // be byte-identical over base ∪ ingested.
        for shard in shards {
            let c = client(shard);
            c.expect_ok("POST", "/internal/flush", Some("{}")).unwrap();
        }
        single.expect_ok("POST", "/internal/flush", Some("{}")).unwrap();
        let compare = om_api::CompareRequest {
            attr: "PhoneModel".into(),
            v1: "ph1".into(),
            v2: "ph2".into(),
            class: "dropped".into(),
            allow_partial: None,
        };
        let (status, _) = assert_identical(coord, single, "/v1/compare", &compare.encode());
        assert_eq!(status, 200);
        let (status, _) = assert_identical(
            coord,
            single,
            "/v1/cube/slice",
            &om_api::SliceRequest {
                attr: "PhoneModel".into(),
                by: Some("TimeOfCall".into()),
            }
            .encode(),
        );
        assert_eq!(status, 200);
    });
}

/// Spin up a `partitions x replicas` topology of in-process servers
/// (replicas of a partition share the partition's engine) plus a
/// single-node twin, with fast failover tuning for chaos tests.
fn replicated_fixture(
    partitions: usize,
    replicas: usize,
) -> (
    Arc<Coordinator>,
    Server,
    Vec<Option<Server>>,
    Vec<String>,
    Server,
) {
    let ds = scenario(12_000, 42);
    let twin_om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
    let parts = partition_dataset(twin_om.dataset(), partitions).unwrap();
    let mut shard_servers: Vec<Option<Server>> = Vec::new();
    for part in parts {
        let om = Arc::new(OpportunityMap::build(part, EngineConfig::default()).unwrap());
        for _ in 0..replicas {
            shard_servers.push(Some(Server::start(Arc::clone(&om), server_config()).unwrap()));
        }
    }
    let addrs: Vec<String> = shard_servers
        .iter()
        .map(|s| s.as_ref().unwrap().local_addr().to_string())
        .collect();
    let coordinator = Arc::new(
        Coordinator::connect(ClusterConfig {
            shard_addrs: addrs.clone(),
            replicas,
            shard_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(10),
            breaker_open: Duration::from_millis(200),
            ..ClusterConfig::default()
        })
        .unwrap(),
    );
    let coord = Server::start_custom(Arc::clone(&coordinator) as _, server_config()).unwrap();
    let single = Server::start(twin_om, server_config()).unwrap();
    (coordinator, coord, shard_servers, addrs, single)
}

fn compare_body() -> String {
    om_api::CompareRequest {
        attr: "PhoneModel".into(),
        v1: "ph1".into(),
        v2: "ph2".into(),
        class: "dropped".into(),
        allow_partial: None,
    }
    .encode()
}

fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("{name} missing from /metrics"))
}

#[test]
fn replicated_cluster_survives_one_replica_per_partition() {
    let (_, coord, mut shard_servers, _, single) = replicated_fixture(2, 2);
    let cc = client(&coord);
    let sc = client(&single);

    // Healthy warm-up: byte-identical, no failovers.
    let (status, _) = assert_identical(&cc, &sc, "/v1/compare", &compare_body());
    assert_eq!(status, 200);

    // Kill the PREFERRED replica of every partition: every read now
    // has to retry, open the breaker and fail over — while staying
    // byte-identical to the single node.
    for p in 0..2 {
        let g = om_cluster::replica_set(p, 2, 2)[0];
        shard_servers[g].take().unwrap().shutdown();
    }
    for body in [
        compare_body(),
        om_api::GiRequest {
            top: Some(4),
            allow_partial: None,
        }
        .encode(),
    ] {
        let path = if body.contains("attr") { "/v1/compare" } else { "/v1/gi" };
        let (status, _) = assert_identical(&cc, &sc, path, &body);
        assert_eq!(status, 200, "degraded-but-replicated cluster must stay 200");
    }
    let slice = om_api::SliceRequest {
        attr: "PhoneModel".into(),
        by: Some("TimeOfCall".into()),
    };
    let (status, _) = assert_identical(&cc, &sc, "/v1/cube/slice", &slice.encode());
    assert_eq!(status, 200);

    // The fault-tolerance machinery actually engaged, and says so.
    let (_, metrics) = cc.get("/metrics").unwrap();
    assert!(metric_value(&metrics, "om_cluster_failovers_total") >= 1, "{metrics}");
    assert!(metric_value(&metrics, "om_cluster_retries_total") >= 1);
    assert!(metric_value(&metrics, "om_cluster_breaker_opens_total") >= 1);
    assert!(metric_value(&metrics, "om_cluster_shard_errors_total") >= 1);
    assert!(metric_value(&metrics, "om_cluster_breaker_open") >= 1);

    coord.shutdown();
    single.shutdown();
    for s in shard_servers.into_iter().flatten() {
        s.shutdown();
    }
}

#[test]
fn whole_partition_loss_defaults_to_503_and_degrades_on_opt_in() {
    let (_, coord, mut shard_servers, addrs, single) = replicated_fixture(2, 2);
    let cc = client(&coord);

    // At full strength, allow_partial is inert: byte-identical to the
    // plain request, no coverage key on the wire.
    let plain = compare_body();
    let opted = om_api::CompareRequest {
        allow_partial: Some(true),
        ..om_api::CompareRequest::parse(&plain).unwrap()
    }
    .encode();
    let (ps, pb) = cc.post("/v1/compare", &plain).unwrap();
    let (os, ob) = cc.post("/v1/compare", &opted).unwrap();
    assert_eq!((ps, pb.as_str()), (os, ob.as_str()), "allow_partial changed a full answer");
    assert!(!ob.contains("\"coverage\""));

    // Lose BOTH replicas of partition 1.
    let members = om_cluster::replica_set(1, 2, 2);
    for &g in &members {
        shard_servers[g].take().unwrap().shutdown();
    }

    // Default contract: all-or-nothing 503 naming the partition, with
    // every replica's evidence.
    let (status, body) = cc.post("/v1/compare", &plain).unwrap();
    assert_eq!(status, 503, "{body}");
    let env = om_api::ErrorEnvelope::parse(&body).unwrap();
    assert_eq!(env.code, om_api::ErrorCode::Overloaded);
    assert!(env.message.contains("partition 1"), "{}", env.message);
    for &g in &members {
        assert!(
            env.message.contains(&addrs[g]),
            "envelope lists replica {g}: {}",
            env.message
        );
    }
    assert!(env.retry_after_ms.is_some());

    // Opt-in contract: a 200 from the live partition, with the gap
    // spelled out in the coverage envelope.
    let (status, body) = cc.post("/v1/compare", &opted).unwrap();
    assert_eq!(status, 200, "allow_partial must degrade, not fail: {body}");
    let resp = om_api::CompareResponse::parse(&body).unwrap();
    let coverage = resp.coverage.expect("partial answer carries coverage");
    assert_eq!(coverage.partitions_total, 2);
    assert_eq!(coverage.partitions_answered, 1);
    assert_eq!(coverage.missing_partitions, vec![1]);
    for &g in &members {
        assert!(coverage.missing_shards.contains(&addrs[g]));
    }
    assert!(
        coverage.rows_covered_pct > 0.0 && coverage.rows_covered_pct < 100.0,
        "pct {} must be a strict partial",
        coverage.rows_covered_pct
    );

    // GI degrades the same way.
    let gi = om_api::GiRequest {
        top: Some(4),
        allow_partial: Some(true),
    };
    let (status, body) = cc.post("/v1/gi", &gi.encode()).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"coverage\""));

    // Batch items cannot opt in: the batch is all-or-nothing.
    let batch = om_api::BatchRequest {
        items: vec![om_api::BatchItemRequest::Compare {
            req: om_api::CompareRequest {
                allow_partial: Some(true),
                ..om_api::CompareRequest::parse(&plain).unwrap()
            },
            budget_ms: None,
        }],
    };
    // Per-item failures become per-item envelopes inside a 200 batch
    // response; the rejected item must not touch the degraded cluster.
    let (status, body) = cc.post("/v1/compare/batch", &batch.encode()).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("all-or-nothing"), "{body}");

    // The degraded answers were counted.
    let (_, metrics) = cc.get("/metrics").unwrap();
    assert!(metric_value(&metrics, "om_cluster_partial_answers_total") >= 2);

    coord.shutdown();
    single.shutdown();
    for s in shard_servers.into_iter().flatten() {
        s.shutdown();
    }
}

#[test]
fn rejoined_replica_catches_up_and_takes_over() {
    // One partition, two replicas, live ingestion. Replica B misses a
    // batch while down, rejoins on its original port, is caught up by
    // replay — and then must carry the cluster alone when A dies.
    let ds = scenario(8_000, 42);
    let part = partition_dataset(
        &OpportunityMap::build(ds.clone(), EngineConfig::default())
            .unwrap()
            .dataset()
            .clone(),
        1,
    )
    .unwrap()
    .remove(0);
    let wal_root = std::env::temp_dir().join(format!("om-cluster-rejoin-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);

    let start_replica = |name: &str, addr: Option<String>| {
        let om = Arc::new(OpportunityMap::build(part.clone(), EngineConfig::default()).unwrap());
        let handle = om
            .start_ingest(&IngestConfig {
                sync_writes: false,
                ..IngestConfig::new(wal_root.join(name))
            })
            .unwrap();
        let config = ServerConfig {
            addr: addr.unwrap_or_else(|| "127.0.0.1:0".to_owned()),
            ..server_config()
        };
        let server =
            Server::start_with_ingest(Arc::clone(&om), config, Some(handle.clone())).unwrap();
        (server, handle)
    };
    let (server_a, handle_a) = start_replica("a", None);
    let (server_b, handle_b) = start_replica("b", None);
    let addr_b = server_b.local_addr().to_string();

    let coordinator = Arc::new(
        Coordinator::connect(ClusterConfig {
            shard_addrs: vec![server_a.local_addr().to_string(), addr_b.clone()],
            replicas: 2,
            ingest: true,
            shard_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(10),
            breaker_open: Duration::from_millis(100),
            ..ClusterConfig::default()
        })
        .unwrap(),
    );
    let coord = Server::start_custom(Arc::clone(&coordinator) as _, server_config()).unwrap();
    let cc = client(&coord);

    // Rows both replicas can parse: verbatim labels of real records.
    let om = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
    let prepared = om.dataset();
    let schema = prepared.schema();
    let rows: Vec<Vec<String>> = (0..80)
        .map(|r| {
            (0..schema.n_attributes())
                .map(|a| {
                    let id = prepared.categorical(a).unwrap()[r];
                    schema.attribute(a).domain().label(id).unwrap().to_owned()
                })
                .collect()
        })
        .collect();

    // Batch 1 lands on both replicas.
    let batch1 = om_api::IngestRequest {
        rows: rows[..40].to_vec(),
    }
    .encode();
    let (status, body) = cc.post("/v1/ingest", &batch1).unwrap();
    assert_eq!(status, 200, "{body}");

    // B dies; batch 2 is acked by A alone and queued for B.
    server_b.shutdown();
    handle_b.shutdown();
    let batch2 = om_api::IngestRequest {
        rows: rows[40..].to_vec(),
    }
    .encode();
    let (status, body) = cc.post("/v1/ingest", &batch2).unwrap();
    assert_eq!(status, 200, "one live replica must be enough to ack: {body}");
    assert!(
        coordinator.degraded_addrs().contains(&addr_b),
        "B is degraded while down"
    );

    // B rejoins on its original address (std listeners set SO_REUSEADDR
    // on Unix), replaying batch 1 from its own WAL; the coordinator's
    // replay supplies the missed batch 2.
    let (server_b2, handle_b2) = start_replica("b", Some(addr_b.clone()));
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    loop {
        // Empty ingest batches are pure stats writes that reach every
        // replica: they half-open the breaker and trigger replay.
        let (status, _) = cc
            .post("/v1/ingest", &om_api::IngestRequest { rows: Vec::new() }.encode())
            .unwrap();
        assert_eq!(status, 200);
        if coordinator.degraded_addrs().is_empty() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "B never caught up; still degraded: {:?}",
            coordinator.degraded_addrs()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let (_, metrics) = cc.get("/metrics").unwrap();
    assert_eq!(
        metric_value(&metrics, "om_cluster_catchup_rows_total"),
        40,
        "exactly the missed batch is replayed"
    );

    // A dies. B — caught up — must now hold the whole partition, and
    // its answer must reflect every ingested row.
    server_a.shutdown();
    handle_a.shutdown();
    handle_b2.flush().unwrap();
    let (status, via_b) = cc.post("/v1/compare", &compare_body()).unwrap();
    assert_eq!(status, 200, "B alone must carry the partition: {via_b}");

    // Ground truth: a fresh single node over the same base + all 80 rows.
    let (reference, ref_handle) = start_replica("reference", None);
    let rc = client(&reference);
    rc.post("/v1/ingest", &batch1).unwrap();
    rc.post("/v1/ingest", &batch2).unwrap();
    ref_handle.flush().unwrap();
    let (status, want) = rc.post("/v1/compare", &compare_body()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(via_b, want, "catch-up replay must restore byte-identity");

    coord.shutdown();
    server_b2.shutdown();
    handle_b2.shutdown();
    reference.shutdown();
    ref_handle.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

#[test]
fn hedged_fetch_never_strands_a_half_open_probe() {
    // Regression: the hedged fetch used to admit every replica's
    // breaker up front, so a half-open probe admitted for a candidate
    // the race never launched (the preferred replica answered before
    // the hedge timer) was never reported — wedging the breaker at
    // Deny and keeping the replica out of the cluster forever. With
    // lazy admission the probe is only granted when a worker actually
    // launches, and workers report their own outcomes; a rejoined
    // replica must therefore always settle back to healthy.
    let ds = scenario(6_000, 42);
    let part = partition_dataset(
        &OpportunityMap::build(ds, EngineConfig::default())
            .unwrap()
            .dataset()
            .clone(),
        1,
    )
    .unwrap()
    .remove(0);
    let wal_root = std::env::temp_dir().join(format!("om-cluster-hedge-wedge-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_root);
    let start_replica = |name: &str, addr: Option<String>| {
        let om = Arc::new(OpportunityMap::build(part.clone(), EngineConfig::default()).unwrap());
        let handle = om
            .start_ingest(&IngestConfig {
                sync_writes: false,
                ..IngestConfig::new(wal_root.join(name))
            })
            .unwrap();
        let config = ServerConfig {
            addr: addr.unwrap_or_else(|| "127.0.0.1:0".to_owned()),
            ..server_config()
        };
        let server =
            Server::start_with_ingest(Arc::clone(&om), config, Some(handle.clone())).unwrap();
        (server, handle)
    };
    let (server_a, handle_a) = start_replica("a", None);
    let (server_b, handle_b) = start_replica("b", None);
    let addr_b = server_b.local_addr().to_string();

    let coordinator = Arc::new(
        Coordinator::connect(ClusterConfig {
            shard_addrs: vec![server_a.local_addr().to_string(), addr_b.clone()],
            replicas: 2,
            ingest: true,
            shard_timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(10),
            breaker_open: Duration::from_millis(100),
            // A hedge threshold the fast, healthy replica A never
            // trips: replica B's half-open breaker becomes a candidate
            // the race considers but never launches.
            hedge_after: Some(Duration::from_secs(5)),
            ..ClusterConfig::default()
        })
        .unwrap(),
    );
    let coord = Server::start_custom(Arc::clone(&coordinator) as _, server_config()).unwrap();
    let cc = client(&coord);

    // B dies; empty ingest batches (pure stats writes that fan out to
    // every replica) push its breaker past the threshold.
    server_b.shutdown();
    handle_b.shutdown();
    let empty = om_api::IngestRequest { rows: Vec::new() }.encode();
    for _ in 0..3 {
        let (status, body) = cc.post("/v1/ingest", &empty).unwrap();
        assert_eq!(status, 200, "{body}");
    }
    assert!(
        coordinator.degraded_addrs().contains(&addr_b),
        "B's breaker must be open"
    );

    // Let the breaker's open window elapse, then run hedged reads: B
    // is now probe-eligible, but A answers long before the 5s hedge
    // threshold, so B is never actually fetched from.
    std::thread::sleep(Duration::from_millis(150));
    for _ in 0..3 {
        let (status, body) = cc.post("/v1/compare", &compare_body()).unwrap();
        assert_eq!(status, 200, "{body}");
    }

    // B rejoins on its original address. The next ingest probes must
    // re-admit it promptly — with the probe-leak bug its breaker stays
    // wedged at Deny until (at best) the health layer's probe-timeout
    // backstop, several seconds out; the tight deadline catches the
    // leak even with that backstop in place.
    let (server_b2, handle_b2) = start_replica("b", Some(addr_b));
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    loop {
        let (status, _) = cc.post("/v1/ingest", &empty).unwrap();
        assert_eq!(status, 200);
        if coordinator.degraded_addrs().is_empty() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "B never recovered; the half-open probe was stranded: {:?}",
            coordinator.degraded_addrs()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    coord.shutdown();
    server_a.shutdown();
    handle_a.shutdown();
    server_b2.shutdown();
    handle_b2.shutdown();
    let _ = std::fs::remove_dir_all(&wal_root);
}

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use om_fault::fail::{self, Action};
    use parking_lot::Mutex;

    /// Failpoint state is process-global; these tests must not overlap.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn small_fixture(
        replicas: usize,
        tune: impl FnOnce(&mut ClusterConfig),
    ) -> (Arc<Coordinator>, Server, Vec<Server>) {
        let ds = scenario(4_000, 11);
        let om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
        let part = partition_dataset(om.dataset(), 1).unwrap().remove(0);
        let shard_om = Arc::new(OpportunityMap::build(part, EngineConfig::default()).unwrap());
        let shards: Vec<Server> = (0..replicas)
            .map(|_| Server::start(Arc::clone(&shard_om), server_config()).unwrap())
            .collect();
        let mut config = ClusterConfig {
            shard_addrs: shards.iter().map(|s| s.local_addr().to_string()).collect(),
            replicas,
            ..ClusterConfig::default()
        };
        tune(&mut config);
        let coordinator = Arc::new(Coordinator::connect(config).unwrap());
        let coord = Server::start_custom(Arc::clone(&coordinator) as _, server_config()).unwrap();
        (coordinator, coord, shards)
    }

    #[test]
    fn slow_store_fetch_triggers_a_hedge_that_wins() {
        let _serial = SERIAL.lock();
        // Both replicas answer the store fetch 80ms late; with a 20ms
        // hedge threshold the coordinator races the second replica
        // instead of waiting, and the request still answers 200.
        let (_, coord, shards) = small_fixture(2, |c| {
            c.hedge_after = Some(Duration::from_millis(20));
        });
        let cc = client(&coord);
        fail::configure(
            "server.internal-store",
            Action::Delay(Duration::from_millis(80)),
        );
        let (status, body) = cc.post("/v1/compare", &compare_body()).unwrap();
        fail::remove("server.internal-store");
        assert_eq!(status, 200, "{body}");
        let (_, metrics) = cc.get("/metrics").unwrap();
        assert!(
            metric_value(&metrics, "om_cluster_hedges_total") >= 1,
            "a hedge must have fired: {metrics}"
        );
        coord.shutdown();
        for s in shards {
            s.shutdown();
        }
    }

    #[test]
    fn explore_truncation_is_byte_identical_through_the_coordinator() {
        let _serial = SERIAL.lock();
        // `explore.step` fires at the end of every greedy iteration, and
        // both the coordinator (merged store, in process) and the
        // single-node twin run that loop in this test process — one
        // arming truncates both after their first pick, and the partial
        // envelopes must still agree byte for byte.
        with_cluster(2, false, |coord, single, _, _| {
            fail::configure("explore.step", Action::Error("injected stall".into()));
            let body = om_api::ExploreRequest {
                slice: Vec::new(),
                k: 8,
                max_conditions: None,
                budget_ms: None,
                compare: None,
            }
            .encode();
            let (status, answer) = assert_identical(coord, single, "/v1/explore", &body);
            fail::remove("explore.step");
            assert_eq!(status, 200, "{answer}");
            let parsed = om_api::ExploreResponse::parse(&answer).unwrap();
            assert!(parsed.truncated, "partial answer must be marked: {answer}");
            assert_eq!(parsed.summaries.len(), 1, "{answer}");
        });
    }

    #[test]
    fn whole_request_deadline_bounds_a_stalled_shard() {
        let _serial = SERIAL.lock();
        // The shard stalls 3s inside the store handler; the client's
        // whole-request deadline (300ms) must cut the request off and
        // surface a typed 503 long before the stall ends.
        let (_, coord, shards) = small_fixture(1, |c| {
            c.shard_timeout = Duration::from_millis(300);
            c.fetch_retries = 0;
        });
        let cc = client(&coord);
        fail::configure(
            "server.internal-store",
            Action::Delay(Duration::from_secs(3)),
        );
        let started = std::time::Instant::now();
        let (status, body) = cc.post("/v1/compare", &compare_body()).unwrap();
        let elapsed = started.elapsed();
        fail::remove("server.internal-store");
        assert_eq!(status, 503, "{body}");
        assert!(
            elapsed < Duration::from_secs(2),
            "deadline must bound the stall: took {elapsed:?}"
        );
        coord.shutdown();
        for s in shards {
            s.shutdown();
        }
    }
}

#[test]
fn ephemeral_port_contract() {
    // Satellite: port 0 binding reports the chosen port — the contract
    // the multi-process harness scrapes.
    let ds = scenario(2_000, 3);
    let om = Arc::new(OpportunityMap::build(ds, EngineConfig::default()).unwrap());
    let server = Server::start(om, server_config()).unwrap();
    let addr = server.local_addr();
    assert_ne!(addr.port(), 0, "ephemeral bind must resolve to a real port");
    let (status, body) = client(&server).get("/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    server.shutdown();
}
