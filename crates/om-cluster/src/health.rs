//! Per-address replica health: a consecutive-failure circuit breaker
//! with half-open probes, plus capped exponential backoff with jitter.
//!
//! The coordinator tracks one breaker per shard *address*. The breaker
//! is the standard three-state machine:
//!
//! ```text
//!            threshold consecutive failures
//!   Closed ────────────────────────────────▶ Open (for `open_for`)
//!     ▲                                        │ open period elapses
//!     │ probe succeeds                         ▼
//!     └──────────────────────────────────── HalfOpen (one probe)
//!                      probe fails ──▶ back to Open
//! ```
//!
//! * **Closed** — the address is believed healthy; requests flow.
//! * **Open** — the address failed `threshold` times in a row; the
//!   coordinator skips it outright (no connect attempts, no latency
//!   tax) until the open period elapses. The remaining open time is
//!   what `retry_after_ms` hints derive from, so clients back off in
//!   sync with the coordinator's own recovery probes.
//! * **HalfOpen** — exactly one caller is admitted as a *probe*; its
//!   outcome closes the breaker or re-opens it. Concurrent callers are
//!   denied while the probe is in flight (no thundering herd on a
//!   recovering process). A probe whose outcome is never reported (a
//!   crashed worker, a dropped result channel) must not deny the
//!   address forever: after `probe_timeout` the breaker re-admits a
//!   fresh probe.
//!
//! The module is deliberately free of request semantics: callers decide
//! what a probe does (the coordinator replays missed ingest rows before
//! letting a recovered replica serve reads again).

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning, shared by every address.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive failures that open the breaker.
    pub threshold: u32,
    /// How long an open breaker rejects before half-opening a probe.
    pub open_for: Duration,
    /// How long a half-open probe may stay unreported before the
    /// breaker grants a fresh probe instead of denying forever. Must
    /// comfortably exceed the longest legitimate probe (whole-request
    /// timeout plus catch-up replay); a duplicate probe admitted past
    /// the deadline is harmless — both outcomes are absorbed by the
    /// state machine.
    pub probe_timeout: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            threshold: 3,
            open_for: Duration::from_secs(2),
            probe_timeout: Duration::from_secs(90),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed,
    Open { until: Instant },
    HalfOpen { since: Instant },
}

#[derive(Debug)]
struct AddrState {
    consecutive_failures: u32,
    state: State,
}

/// What the breaker says about using an address right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Believed healthy: use it normally.
    Allow,
    /// The breaker just half-opened for *this caller*: it may send one
    /// probe and **must** report the outcome via `record_success` /
    /// `record_failure`.
    Probe,
    /// Open (or a probe is already in flight): skip the address.
    Deny,
}

/// One breaker per shard address, indexed by global shard index.
#[derive(Debug)]
pub struct Health {
    states: Vec<Mutex<AddrState>>,
    config: HealthConfig,
}

impl Health {
    #[must_use]
    pub fn new(n_addrs: usize, config: HealthConfig) -> Self {
        Self {
            states: (0..n_addrs)
                .map(|_| {
                    Mutex::new(AddrState {
                        consecutive_failures: 0,
                        state: State::Closed,
                    })
                })
                .collect(),
            config,
        }
    }

    /// May the caller use this address? A `Probe` admission transitions
    /// the breaker to half-open and is granted to exactly one caller.
    pub fn admit(&self, idx: usize) -> Admission {
        let Some(slot) = self.states.get(idx) else {
            return Admission::Allow;
        };
        let mut s = slot.lock();
        let now = Instant::now();
        match s.state {
            State::Closed => Admission::Allow,
            State::HalfOpen { since } => {
                // The in-flight probe's outcome was lost (or it is
                // pathologically slow): grant a replacement rather
                // than wedging the address at Deny.
                if now.saturating_duration_since(since) >= self.config.probe_timeout {
                    s.state = State::HalfOpen { since: now };
                    Admission::Probe
                } else {
                    Admission::Deny
                }
            }
            State::Open { until } => {
                if now >= until {
                    s.state = State::HalfOpen { since: now };
                    Admission::Probe
                } else {
                    Admission::Deny
                }
            }
        }
    }

    /// Report a successful request (or probe): closes the breaker.
    pub fn record_success(&self, idx: usize) {
        if let Some(slot) = self.states.get(idx) {
            let mut s = slot.lock();
            s.consecutive_failures = 0;
            s.state = State::Closed;
        }
    }

    /// Report a failed request (or probe). Returns `true` when this
    /// failure transitioned the breaker into `Open` (for the
    /// `om_cluster_breaker_opens_total` counter).
    pub fn record_failure(&self, idx: usize) -> bool {
        let Some(slot) = self.states.get(idx) else {
            return false;
        };
        let mut s = slot.lock();
        s.consecutive_failures = s.consecutive_failures.saturating_add(1);
        let open_now = match s.state {
            // A failed half-open probe re-opens immediately.
            State::HalfOpen { .. } => true,
            State::Closed => s.consecutive_failures >= self.config.threshold,
            // Already open (a request admitted before the trip reports
            // late): re-arm the window, but it is not a new open.
            State::Open { .. } => {
                s.state = State::Open {
                    until: Instant::now() + self.config.open_for,
                };
                return false;
            }
        };
        if open_now {
            s.state = State::Open {
                until: Instant::now() + self.config.open_for,
            };
        }
        open_now
    }

    /// Remaining open time for this address, if its breaker is open.
    /// A half-open breaker reports the full open period (the probe in
    /// flight may fail and re-arm it).
    #[must_use]
    pub fn retry_after(&self, idx: usize) -> Option<Duration> {
        let s = self.states.get(idx)?.lock();
        match s.state {
            State::Closed => None,
            State::HalfOpen { .. } => Some(self.config.open_for),
            State::Open { until } => Some(until.saturating_duration_since(Instant::now())),
        }
    }

    /// The soonest any of `idxs` could recover: the minimum remaining
    /// open time across their breakers. `None` when none is open (the
    /// caller falls back to its static hint).
    #[must_use]
    pub fn min_retry_after(&self, idxs: impl IntoIterator<Item = usize>) -> Option<Duration> {
        idxs.into_iter()
            .filter_map(|i| self.retry_after(i))
            .min()
    }

    /// How many breakers are currently not closed (the
    /// `om_cluster_breaker_open` gauge).
    #[must_use]
    pub fn open_count(&self) -> u64 {
        self.states
            .iter()
            .filter(|s| !matches!(s.lock().state, State::Closed))
            .count() as u64
    }

    /// Is this address currently believed healthy?
    #[must_use]
    pub fn is_closed(&self, idx: usize) -> bool {
        self.states
            .get(idx)
            .is_none_or(|s| matches!(s.lock().state, State::Closed))
    }
}

/// Capped exponential backoff with deterministic jitter: attempt `k`
/// sleeps `min(cap, base * 2^k)`, scaled into `[1/2, 1)` by a hash of
/// `salt` so concurrent retries against a struggling shard decorrelate
/// instead of stampeding in lockstep.
#[must_use]
pub fn backoff_delay(base: Duration, cap: Duration, attempt: u32, salt: u64) -> Duration {
    let full = base
        .checked_mul(1u32 << attempt.min(16))
        .unwrap_or(cap)
        .min(cap);
    // splitmix64-style finalizer: cheap, stateless, well-mixed.
    let mut z = salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Jitter factor in [0.5, 1.0): half the nominal delay at minimum.
    let frac = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
    full.mul_f64(frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HealthConfig {
        HealthConfig {
            threshold: 2,
            open_for: Duration::from_millis(40),
            probe_timeout: Duration::from_secs(90),
        }
    }

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let h = Health::new(1, quick());
        assert_eq!(h.admit(0), Admission::Allow);
        assert!(!h.record_failure(0), "first failure must not open");
        assert_eq!(h.admit(0), Admission::Allow);
        assert!(h.record_failure(0), "threshold failure opens");
        assert_eq!(h.admit(0), Admission::Deny);
        assert!(!h.is_closed(0));
        assert_eq!(h.open_count(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let h = Health::new(1, quick());
        h.record_failure(0);
        h.record_success(0);
        assert!(!h.record_failure(0), "streak was reset; one failure is below threshold");
        assert_eq!(h.admit(0), Admission::Allow);
    }

    #[test]
    fn open_breaker_half_opens_one_probe_then_closes_on_success() {
        let h = Health::new(1, quick());
        h.record_failure(0);
        h.record_failure(0);
        assert_eq!(h.admit(0), Admission::Deny);
        std::thread::sleep(Duration::from_millis(50));
        // Exactly one caller gets the probe; the next is denied.
        assert_eq!(h.admit(0), Admission::Probe);
        assert_eq!(h.admit(0), Admission::Deny);
        h.record_success(0);
        assert_eq!(h.admit(0), Admission::Allow);
        assert_eq!(h.open_count(), 0);
    }

    #[test]
    fn failed_probe_reopens() {
        let h = Health::new(1, quick());
        h.record_failure(0);
        h.record_failure(0);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(h.admit(0), Admission::Probe);
        assert!(h.record_failure(0), "failed probe re-opens");
        assert_eq!(h.admit(0), Admission::Deny);
    }

    #[test]
    fn unreported_probe_expires_and_readmits() {
        let h = Health::new(1, HealthConfig {
            threshold: 1,
            open_for: Duration::from_millis(10),
            probe_timeout: Duration::from_millis(40),
        });
        h.record_failure(0);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(h.admit(0), Admission::Probe);
        // The probe's outcome is lost. Before the deadline the address
        // stays denied…
        assert_eq!(h.admit(0), Admission::Deny);
        std::thread::sleep(Duration::from_millis(50));
        // …and after it a replacement probe is granted instead of
        // wedging the address at Deny forever.
        assert_eq!(h.admit(0), Admission::Probe);
        h.record_success(0);
        assert_eq!(h.admit(0), Admission::Allow);
    }

    #[test]
    fn retry_after_tracks_the_open_window() {
        let h = Health::new(2, HealthConfig {
            threshold: 1,
            open_for: Duration::from_secs(7),
            probe_timeout: Duration::from_secs(90),
        });
        assert_eq!(h.min_retry_after(0..2), None);
        h.record_failure(1);
        let hint = h.retry_after(1).expect("open breaker must hint");
        assert!(hint <= Duration::from_secs(7));
        assert!(hint > Duration::from_secs(6), "hint {hint:?} far below the window");
        let min = h.min_retry_after(0..2).expect("one breaker is open");
        assert!(min <= hint, "min_retry_after must not exceed a member hint");
    }

    #[test]
    fn backoff_grows_is_capped_and_jittered() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_millis(400);
        let d0 = backoff_delay(base, cap, 0, 1);
        let d3 = backoff_delay(base, cap, 3, 1);
        let d9 = backoff_delay(base, cap, 9, 1);
        assert!(d0 >= base / 2 && d0 < base, "{d0:?}");
        assert!(d3 >= base * 4 && d3 < base * 8, "{d3:?}");
        assert!(d9 >= cap / 2 && d9 <= cap, "{d9:?}");
        // Different salts give different (but bounded) delays.
        assert_ne!(backoff_delay(base, cap, 2, 1), backoff_delay(base, cap, 2, 2));
    }
}
