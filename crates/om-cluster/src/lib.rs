//! Sharded scale-out for the Opportunity Map engine.
//!
//! A cluster is N om-server **shards**, each owning a hash-routed
//! partition of the record set, plus one **coordinator** that serves
//! the existing typed `/v1/*` API unchanged. The coordinator answers a
//! request by fanning out to the shards over HTTP, merging the partial
//! cube stores with the merge algebra (`cube(A) ⊕ cube(B) ==
//! cube(A ∪ B)`), and running the *same* single-node engine code over
//! the merged store — which is what makes a coordinator response
//! byte-identical to a single node holding the union of the partitions.
//!
//! The deterministic pieces, in module order:
//!
//! * [`router`] — the stable row hash that assigns every record to
//!   exactly one partition (and each partition to an ordered replica
//!   set), identical across processes and restarts;
//! * [`client`] — a small blocking HTTP/1.1 client whose per-shard
//!   timeout bounds the whole request (a lagging shard becomes a typed
//!   partial-failure envelope, never a hang);
//! * [`health`] — per-replica circuit breakers plus the jittered
//!   backoff schedule that pace retries against suspect shards;
//! * [`coordinator`] — the [`coordinator::Coordinator`], an
//!   `om_server::ops::EngineOps` implementation that epoch-pins one
//!   store generation per partition before merging, fails over between
//!   replicas, and refuses mixed-generation merges;
//! * [`metrics`] — the `om_cluster_*` counters rendered into the
//!   coordinator's `/metrics`.
//!
//! With `replicas >= 2` every partition is served by R shards: ingest
//! writes to all live replicas (recovered replicas are caught up from
//! the coordinator's replay queue), reads fail over between them, and a
//! partition is only unavailable when *all* of its replicas are down —
//! at which point an `allow_partial` request still gets a typed partial
//! answer carrying a coverage envelope.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod coordinator;
pub mod health;
pub mod metrics;
pub mod partition;
pub mod router;

pub use client::ShardClient;
pub use coordinator::{ClusterConfig, Coordinator};
pub use health::{backoff_delay, Admission, Health, HealthConfig};
pub use metrics::ClusterMetrics;
pub use partition::{partition_dataset, partition_rows};
pub use router::{replica_set, route_fields, row_hash};
