//! Stable shard routing: which shard owns a row.
//!
//! Every row is assigned to exactly one shard by hashing its verbatim
//! field strings with FNV-1a 64 and reducing modulo the shard count.
//! The hash is defined here, byte for byte, rather than borrowed from
//! the standard library precisely because routing must agree across
//! *processes*: the partitioning tool, the coordinator's live-ingest
//! router and any future re-partitioner all have to send the same row
//! to the same shard, on any platform, on any build. (`std`'s hasher
//! is explicitly unstable across releases and processes.)
//!
//! Fields are separated by a `0x1f` (ASCII unit separator) byte so the
//! encoding is injective: `["ab", "c"]` and `["a", "bc"]` hash
//! differently even though their concatenations agree.

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The stable FNV-1a 64 hash of a row's verbatim fields.
#[must_use]
pub fn row_hash(fields: &[impl AsRef<str>]) -> u64 {
    let mut h = FNV_OFFSET;
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            h ^= 0x1f;
            h = h.wrapping_mul(FNV_PRIME);
        }
        for &b in field.as_ref().as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// The shard that owns a row, in `0..n_shards`.
///
/// # Panics
/// `n_shards` must be non-zero.
#[must_use]
pub fn route_fields(fields: &[impl AsRef<str>], n_shards: usize) -> usize {
    assert!(n_shards > 0, "cluster must have at least one shard");
    (row_hash(fields) % n_shards as u64) as usize
}

/// The ordered replica set serving one partition: `replicas` distinct
/// global shard indices drawn from the partition's contiguous block of
/// the flat shard-address list (`[p·R, (p+1)·R)` for partition `p` at
/// replication factor `R`).
///
/// The *order* is the coordinator's preference order for reads: the
/// first entry is contacted first, the rest are failover / hedge
/// targets. The preferred slot rotates with the partition index so a
/// healthy cluster spreads read load across replica slots instead of
/// hammering slot 0 of every partition.
///
/// Like [`route_fields`], this is a pure function of its arguments —
/// every process (provisioning tool, coordinator, re-partitioner)
/// derives the same topology from the same flat address list.
///
/// # Panics
/// `replicas` must be non-zero and `partition` must be in
/// `0..n_partitions`.
#[must_use]
pub fn replica_set(partition: usize, n_partitions: usize, replicas: usize) -> Vec<usize> {
    assert!(replicas > 0, "replication factor must be at least 1");
    assert!(
        partition < n_partitions,
        "partition {partition} out of range for {n_partitions} partition(s)"
    );
    (0..replicas)
        .map(|k| partition * replicas + (partition + k) % replicas)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors_are_stable() {
        // Pinned values: a routing change is a data-resharding event
        // and must never happen silently.
        assert_eq!(row_hash(&[""]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(row_hash(&["a"]), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(row_hash(&["morning", "highway", "ph2"]), row_hash(&["morning", "highway", "ph2"]));
    }

    #[test]
    fn separator_keeps_field_boundaries() {
        assert_ne!(row_hash(&["ab", "c"]), row_hash(&["a", "bc"]));
        assert_ne!(row_hash(&["ab"]), row_hash(&["a", "b"]));
    }

    /// Render numeric raw material as row fields (the vendored
    /// proptest has no string strategies).
    fn as_fields(raw: &[u64]) -> Vec<String> {
        raw.iter().map(|v| format!("v{v:x}")).collect()
    }

    proptest! {
        /// Routing is a pure function of the fields: recomputing (as a
        /// restarted process would) gives the same shard.
        #[test]
        fn routing_is_deterministic(
            raw in proptest::collection::vec(0u64..1_000_000, 1..8),
            n in 1usize..16,
        ) {
            let fields = as_fields(&raw);
            let copy = as_fields(&raw);
            prop_assert_eq!(route_fields(&fields, n), route_fields(&copy, n));
        }

        /// Every row lands on a valid shard.
        #[test]
        fn routing_is_in_range(
            raw in proptest::collection::vec(0u64..1_000_000, 1..8),
            n in 1usize..16,
        ) {
            prop_assert!(route_fields(&as_fields(&raw), n) < n);
        }

        /// Replica sets are a pure function of the topology: a second
        /// process (a restarted coordinator) derives the same ordered
        /// set for every partition.
        #[test]
        fn replica_sets_are_deterministic(p in 0usize..32, extra in 0usize..32, r in 1usize..5) {
            let n = p + extra + 1;
            prop_assert_eq!(replica_set(p, n, r), replica_set(p, n, r));
        }

        /// A replica set holds exactly `R` *distinct* shards, all drawn
        /// from the partition's own contiguous block.
        #[test]
        fn replica_sets_hold_r_distinct_shards(p in 0usize..32, extra in 0usize..32, r in 1usize..5) {
            let n = p + extra + 1;
            let set = replica_set(p, n, r);
            prop_assert_eq!(set.len(), r);
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), r, "replica set {:?} repeats a shard", set);
            for &g in &set {
                prop_assert!(g >= p * r && g < (p + 1) * r,
                    "replica {} escapes partition {}'s block at R={}", g, p, r);
            }
        }

        /// Killing any single replica leaves full coverage at `R >= 2`:
        /// no partition is left with zero live replicas, because one
        /// global shard index belongs to exactly one partition's set.
        #[test]
        fn single_replica_loss_keeps_full_coverage(n in 1usize..16, r in 2usize..5, kill_seed in 0usize..1024) {
            let killed = kill_seed % (n * r);
            for p in 0..n {
                let live: Vec<usize> = replica_set(p, n, r)
                    .into_iter()
                    .filter(|&g| g != killed)
                    .collect();
                prop_assert!(
                    !live.is_empty(),
                    "killing shard {} left partition {} of {} uncovered at R={}",
                    killed, p, n, r
                );
            }
        }

        /// Distinct rows spread within 2x of uniform: over `k` random
        /// distinct rows, no shard owns more than `2 * k / n + slack`
        /// (slack absorbs small-sample noise — the bound the partition
        /// balance relies on is the 2x factor at scale).
        #[test]
        fn routing_is_balanced(seed in 0u64..1000, n in 2usize..9) {
            let k = 4000usize;
            let mut counts = vec![0usize; n];
            for i in 0..k {
                // Distinct synthetic rows; seed varies the population.
                let fields = [format!("r{seed}"), format!("f{i}"), format!("v{}", i % 7)];
                counts[route_fields(&fields, n)] += 1;
            }
            let cap = 2 * k / n;
            for (shard, &c) in counts.iter().enumerate() {
                prop_assert!(
                    c <= cap,
                    "shard {} owns {} of {} rows (cap {} for {} shards)",
                    shard, c, k, cap, n
                );
            }
        }
    }
}
