//! Partitioning a dataset across shards by the stable row hash.
//!
//! A cluster is provisioned by splitting one centrally-prepared
//! (discretized, all-categorical) dataset into per-shard partitions.
//! The split hashes each row's *verbatim field labels* — the same
//! strings live ingestion routes on — so a row ingested later lands on
//! the same shard that would have owned it at provisioning time.

use om_data::{DataError, Dataset};

use crate::router::route_fields;

/// The row indices each shard owns, in original row order.
///
/// # Errors
/// The dataset must be all-categorical (partition after
/// discretization, not before).
pub fn partition_rows(ds: &Dataset, n_shards: usize) -> Result<Vec<Vec<usize>>, DataError> {
    assert!(n_shards > 0, "cluster must have at least one shard");
    let schema = ds.schema();
    let mut columns = Vec::with_capacity(schema.n_attributes());
    for a in 0..schema.n_attributes() {
        columns.push((ds.categorical(a)?, schema.attribute(a).domain()));
    }
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
    for r in 0..ds.n_rows() {
        let fields: Vec<&str> = columns
            .iter()
            .map(|(ids, domain)| {
                ids.get(r)
                    .and_then(|&id| domain.label(id))
                    .unwrap_or_default()
            })
            .collect();
        if let Some(part) = parts.get_mut(route_fields(&fields, n_shards)) {
            part.push(r);
        }
    }
    Ok(parts)
}

/// Split a dataset into `n_shards` hash-routed partitions (same schema,
/// disjoint rows, union equal to the input).
///
/// # Errors
/// See [`partition_rows`].
pub fn partition_dataset(ds: &Dataset, n_shards: usize) -> Result<Vec<Dataset>, DataError> {
    partition_rows(ds, n_shards)?
        .iter()
        .map(|rows| ds.take_rows(rows))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use om_engine::{EngineConfig, OpportunityMap};
    use om_synth::{generate_call_log, CallLogConfig, Effect};

    fn sample() -> Dataset {
        let ds = generate_call_log(&CallLogConfig {
            n_records: 4000,
            seed: 11,
            effects: vec![Effect::interaction(
                "PhoneModel",
                "ph2",
                "TimeOfCall",
                "morning",
                "dropped",
                1.3,
            )],
            ..CallLogConfig::default()
        });
        // Partitioning operates on the engine's prepared dataset.
        let om = OpportunityMap::build(ds, EngineConfig::default()).unwrap();
        om.dataset().clone()
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let ds = sample();
        let parts = partition_rows(&ds, 4).unwrap();
        let mut seen = vec![false; ds.n_rows()];
        for part in &parts {
            for &r in part {
                assert!(!seen[r], "row {r} assigned twice");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some row unassigned");
    }

    #[test]
    fn partitions_are_balanced_within_2x() {
        let ds = sample();
        let n = 4;
        let parts = partition_rows(&ds, n).unwrap();
        let cap = 2 * ds.n_rows() / n;
        for (i, part) in parts.iter().enumerate() {
            assert!(
                part.len() <= cap,
                "shard {i} owns {} of {} rows (2x-uniform cap {cap})",
                part.len(),
                ds.n_rows()
            );
        }
    }

    #[test]
    fn partition_is_stable_across_recomputation() {
        let ds = sample();
        assert_eq!(
            partition_rows(&ds, 3).unwrap(),
            partition_rows(&ds, 3).unwrap()
        );
    }
}
